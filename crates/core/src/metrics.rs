//! Logical cost counters collected by every CTUP algorithm.
//!
//! Wall-clock numbers depend on hardware; these counters capture the
//! algorithmic quantities the paper argues about — how often cells are
//! accessed, how many lower bounds move, how much state is maintained.

use serde::{Deserialize, Serialize};

/// Counters of the resilience layer: how much of the inbound feed was
/// rejected or dropped at the ingest front-door, how the liveness leases
/// moved, and what the supervised pipeline had to do to survive worker
/// panics. All cumulative.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Reports rejected because a coordinate was NaN or infinite.
    pub rejected_non_finite: u64,
    /// Reports rejected because the position lies outside the monitored
    /// space.
    pub rejected_out_of_space: u64,
    /// Reports rejected because the unit id is not in `0..|U|`.
    pub rejected_unknown_unit: u64,
    /// Reports dropped because a newer report of the same unit was already
    /// accepted (reordered or delayed delivery).
    pub stale_dropped: u64,
    /// Reports dropped because the exact same sequence number of that unit
    /// was already accepted (duplicated delivery).
    pub duplicates_dropped: u64,
    /// Liveness leases that expired (unit silent past the TTL; its
    /// protection was retracted).
    pub lease_expiries: u64,
    /// Expired units reinstated by a later valid report.
    pub lease_reinstates: u64,
    /// Worker panics caught by the supervisor.
    pub worker_panics: u64,
    /// Successful worker restarts from the latest checkpoint.
    pub worker_restarts: u64,
    /// Updates replayed from the in-flight tail after a restart.
    pub updates_replayed: u64,
    /// Periodic checkpoints taken by the supervisor.
    pub checkpoints_taken: u64,
    /// Monitor events recomputed during replay but suppressed because they
    /// had already been delivered before the crash.
    pub events_suppressed: u64,
    /// Storage errors (exhausted retries, detected corruption) surfaced by
    /// the worker and contained by the supervisor like a panic.
    pub storage_errors: u64,
}

impl ResilienceStats {
    /// Total reports rejected by validation (excluding stale/duplicate
    /// drops, which are counted separately).
    pub fn rejected_total(&self) -> u64 {
        self.rejected_non_finite + self.rejected_out_of_space + self.rejected_unknown_unit
    }

    /// Component-wise difference since `earlier`; saturates at zero, so a
    /// snapshot taken after a recovery reset never underflows (plain `-`
    /// would panic in debug builds).
    pub fn since(&self, earlier: &ResilienceStats) -> ResilienceStats {
        ResilienceStats {
            rejected_non_finite: self
                .rejected_non_finite
                .saturating_sub(earlier.rejected_non_finite),
            rejected_out_of_space: self
                .rejected_out_of_space
                .saturating_sub(earlier.rejected_out_of_space),
            rejected_unknown_unit: self
                .rejected_unknown_unit
                .saturating_sub(earlier.rejected_unknown_unit),
            stale_dropped: self.stale_dropped.saturating_sub(earlier.stale_dropped),
            duplicates_dropped: self
                .duplicates_dropped
                .saturating_sub(earlier.duplicates_dropped),
            lease_expiries: self.lease_expiries.saturating_sub(earlier.lease_expiries),
            lease_reinstates: self
                .lease_reinstates
                .saturating_sub(earlier.lease_reinstates),
            worker_panics: self.worker_panics.saturating_sub(earlier.worker_panics),
            worker_restarts: self.worker_restarts.saturating_sub(earlier.worker_restarts),
            updates_replayed: self
                .updates_replayed
                .saturating_sub(earlier.updates_replayed),
            checkpoints_taken: self
                .checkpoints_taken
                .saturating_sub(earlier.checkpoints_taken),
            events_suppressed: self
                .events_suppressed
                .saturating_sub(earlier.events_suppressed),
            storage_errors: self.storage_errors.saturating_sub(earlier.storage_errors),
        }
    }
}

/// Cumulative counters; cheap enough to update on every operation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Location updates processed since construction.
    pub updates_processed: u64,
    /// Cells illuminated/accessed (lower-level reads triggered by the
    /// algorithm, excluding initialization).
    pub cells_accessed: u64,
    /// Place records loaded by those accesses.
    pub places_loaded: u64,
    /// Lower-bound increments applied.
    pub lb_increments: u64,
    /// Lower-bound decrements applied.
    pub lb_decrements: u64,
    /// Decrements suppressed by the Decrease-Once Optimization.
    pub lb_decrements_suppressed: u64,
    /// Cells darkened / maintained places evicted back under a lower bound.
    pub cells_darkened: u64,
    /// Number of places currently maintained at the higher level.
    pub maintained_now: u64,
    /// Peak of `maintained_now`.
    pub maintained_peak: u64,
    /// Current number of `(unit, cell)` pairs in DecHash (OptCTUP only).
    pub dechash_len: u64,
    /// Nanoseconds spent updating maintained information (steps 1–2 of the
    /// update algorithms: maintained safeties + lower bounds).
    pub maintain_nanos: u64,
    /// Nanoseconds spent accessing cells (step 3: loading places,
    /// recomputing safeties, filtering).
    pub access_nanos: u64,
    /// Updates after which the reported result changed.
    pub result_changes: u64,
    /// Resilience-layer counters (zero unless the algorithm runs behind an
    /// ingest gate / supervised pipeline).
    pub resilience: ResilienceStats,
}

impl Metrics {
    /// Records the current maintained-place count, tracking the peak.
    pub fn set_maintained(&mut self, now: u64) {
        self.maintained_now = now;
        if now > self.maintained_peak {
            self.maintained_peak = now;
        }
    }

    /// Component-wise difference since `earlier` for the cumulative fields;
    /// gauge fields (`maintained_now`, `dechash_len`) keep their current
    /// values. Saturates at zero so an `earlier` snapshot from after a
    /// recovery reset never underflows.
    pub fn since(&self, earlier: &Metrics) -> Metrics {
        Metrics {
            updates_processed: self
                .updates_processed
                .saturating_sub(earlier.updates_processed),
            cells_accessed: self.cells_accessed.saturating_sub(earlier.cells_accessed),
            places_loaded: self.places_loaded.saturating_sub(earlier.places_loaded),
            lb_increments: self.lb_increments.saturating_sub(earlier.lb_increments),
            lb_decrements: self.lb_decrements.saturating_sub(earlier.lb_decrements),
            lb_decrements_suppressed: self
                .lb_decrements_suppressed
                .saturating_sub(earlier.lb_decrements_suppressed),
            cells_darkened: self.cells_darkened.saturating_sub(earlier.cells_darkened),
            maintained_now: self.maintained_now,
            maintained_peak: self.maintained_peak,
            dechash_len: self.dechash_len,
            maintain_nanos: self.maintain_nanos.saturating_sub(earlier.maintain_nanos),
            access_nanos: self.access_nanos.saturating_sub(earlier.access_nanos),
            result_changes: self.result_changes.saturating_sub(earlier.result_changes),
            resilience: self.resilience.since(&earlier.resilience),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_maximum() {
        let mut m = Metrics::default();
        m.set_maintained(10);
        m.set_maintained(3);
        m.set_maintained(7);
        assert_eq!(m.maintained_now, 7);
        assert_eq!(m.maintained_peak, 10);
    }

    #[test]
    fn since_subtracts_counters_but_keeps_gauges() {
        let a = Metrics {
            updates_processed: 10,
            cells_accessed: 4,
            maintained_now: 5,
            ..Metrics::default()
        };
        let mut b = a.clone();
        b.updates_processed = 25;
        b.cells_accessed = 6;
        b.maintained_now = 9;
        let d = b.since(&a);
        assert_eq!(d.updates_processed, 15);
        assert_eq!(d.cells_accessed, 2);
        assert_eq!(d.maintained_now, 9);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        // Regression: after a recovery reset, the "earlier" snapshot can be
        // ahead of the current counters; plain subtraction panicked in
        // debug builds. The delta must saturate at zero instead.
        let fresh = Metrics {
            updates_processed: 3,
            cells_accessed: 1,
            ..Metrics::default()
        };
        let before_reset = Metrics {
            updates_processed: 100,
            cells_accessed: 50,
            maintain_nanos: 1_000,
            access_nanos: 2_000,
            resilience: ResilienceStats {
                stale_dropped: 9,
                worker_panics: 2,
                ..ResilienceStats::default()
            },
            ..Metrics::default()
        };
        let d = fresh.since(&before_reset);
        assert_eq!(d.updates_processed, 0);
        assert_eq!(d.cells_accessed, 0);
        assert_eq!(d.maintain_nanos, 0);
        assert_eq!(d.resilience.stale_dropped, 0);
        assert_eq!(d.resilience.worker_panics, 0);

        let r = ResilienceStats::default().since(&ResilienceStats {
            lease_expiries: 7,
            ..ResilienceStats::default()
        });
        assert_eq!(r.lease_expiries, 0);
    }

    #[test]
    fn resilience_since_and_totals() {
        let a = ResilienceStats {
            rejected_non_finite: 1,
            rejected_out_of_space: 2,
            rejected_unknown_unit: 3,
            stale_dropped: 4,
            ..ResilienceStats::default()
        };
        assert_eq!(a.rejected_total(), 6);
        let mut b = a.clone();
        b.rejected_unknown_unit = 10;
        b.worker_restarts = 2;
        b.storage_errors = 3;
        let d = b.since(&a);
        assert_eq!(d.rejected_unknown_unit, 7);
        assert_eq!(d.worker_restarts, 2);
        assert_eq!(d.stale_dropped, 0);
        assert_eq!(d.storage_errors, 3);

        let m = Metrics {
            resilience: b.clone(),
            ..Metrics::default()
        };
        let d = m.since(&Metrics {
            resilience: a,
            ..Metrics::default()
        });
        assert_eq!(d.resilience.rejected_unknown_unit, 7);
    }
}
