//! The zero-dependency feed client: sessioned submission with exponential
//! backoff, bounded retry, and reconnect-and-replay.
//!
//! The client owns two queues. **unsent** holds reports that have never
//! been written on the current connection; **unacked** holds reports that
//! were written but whose sequence numbers the server has not yet covered
//! with an `Ack`. On reconnect, everything unacked moves back to the front
//! of the unsent queue — the server's session registry suppresses any
//! replays of sequence numbers it already handled, so replaying the tail
//! is always safe and never double-applies.
//!
//! Terminal accounting: a sequence number becomes terminal when the
//! server's `handled_up_to` line passes it. If a `Shed` frame for it
//! arrived first (the server writes sheds before the covering ack), it
//! counts as shed with its typed reason; otherwise it counts as accepted.
//! A shed sequence number is never retried — overload must not amplify
//! itself through retry storms.
//!
//! Reconnection uses exponential backoff with deterministic, seeded
//! jitter (`delay/2 + uniform(0, delay/2)`) and a bounded number of
//! *consecutive* failed attempts; any successful handshake resets the
//! budget. With the seed fixed, a chaos test replays the exact same
//! reconnect schedule every run.

use super::stats::ShedReason;
use super::wire::{ByeReason, FrameDecoder, FrameWriter, Message};
use crate::ingest::StampedUpdate;
use ctup_obs::{now_nanos, sample_trace, SpanSink, Stage};
use std::collections::{HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A bidirectional byte stream the client can speak the wire protocol
/// over. Implementations must have short read/write timeouts configured
/// so the client's polling loop stays responsive.
pub trait Conn: Read + Write + Send {}

impl<T: Read + Write + Send> Conn for T {}

/// Produces connections; the client redials through this on every
/// reconnect, so a test dialer can inject faults per attempt.
pub trait Dialer: Send {
    /// Opens a fresh connection to the server.
    fn dial(&mut self) -> std::io::Result<Box<dyn Conn>>;
}

/// Dials a TCP address with a connect timeout and short I/O timeouts.
#[derive(Debug, Clone)]
pub struct TcpDialer {
    /// Server address.
    pub addr: SocketAddr,
    /// Bound on each connect attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout installed on the socket.
    pub io_tick: Duration,
}

impl TcpDialer {
    /// A dialer for `addr` with library-default timeouts.
    pub fn new(addr: SocketAddr) -> Self {
        TcpDialer {
            addr,
            connect_timeout: Duration::from_secs(2),
            io_tick: Duration::from_millis(25),
        }
    }
}

impl Dialer for TcpDialer {
    fn dial(&mut self) -> std::io::Result<Box<dyn Conn>> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)?;
        stream.set_read_timeout(Some(self.io_tick))?;
        stream.set_write_timeout(Some(self.io_tick))?;
        let _ = stream.set_nodelay(true);
        Ok(Box::new(stream))
    }
}

/// Rotates through a failover address list, one address per dial attempt.
///
/// The feed client redials through its [`Dialer`] with seeded-jitter
/// backoff on every reconnect; handing it this dialer makes each attempt
/// target the next address in the list, so when the primary dies and a
/// standby promotes itself, the client walks onto the promoted server
/// within one backoff cycle — the session resume in its `Hello` opens a
/// fresh session there (the promoted registry mints epoch-fenced ids) and
/// the unacked tail is replayed, deduplicated by the standby's gate.
#[derive(Debug, Clone)]
pub struct FailoverDialer {
    /// Addresses tried in round-robin order (primary first).
    pub addrs: Vec<SocketAddr>,
    /// Bound on each connect attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout installed on the socket.
    pub io_tick: Duration,
    next: usize,
}

impl FailoverDialer {
    /// A dialer rotating over `addrs` with library-default timeouts.
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        FailoverDialer {
            addrs,
            connect_timeout: Duration::from_millis(500),
            io_tick: Duration::from_millis(25),
            next: 0,
        }
    }
}

impl Dialer for FailoverDialer {
    fn dial(&mut self) -> std::io::Result<Box<dyn Conn>> {
        if self.addrs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "failover dialer has no addresses",
            ));
        }
        let addr = self.addrs[self.next % self.addrs.len()];
        self.next = (self.next + 1) % self.addrs.len();
        let stream = TcpStream::connect_timeout(&addr, self.connect_timeout)?;
        stream.set_read_timeout(Some(self.io_tick))?;
        stream.set_write_timeout(Some(self.io_tick))?;
        let _ = stream.set_nodelay(true);
        Ok(Box::new(stream))
    }
}

/// Exponential backoff with seeded jitter and a bounded attempt budget.
#[derive(Debug, Clone)]
pub struct BackoffConfig {
    /// Delay before the first retry.
    pub base: Duration,
    /// Ceiling on the (pre-jitter) delay.
    pub max: Duration,
    /// Consecutive failed attempts tolerated before giving up; any
    /// successful handshake resets the count.
    pub max_attempts: u32,
    /// Seed for the jitter generator; fixed seed, fixed schedule.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(10),
            max: Duration::from_millis(500),
            max_attempts: 8,
            seed: 0x5eed_f00d,
        }
    }
}

/// Client-side knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Reconnect policy.
    pub backoff: BackoffConfig,
    /// Handshake must complete (Hello out, Ack back) within this.
    pub handshake_deadline: Duration,
    /// Cap on reports written ahead of the server's ack line; bounds the
    /// replay tail after a reconnect. Keep it below the server's
    /// per-session quota (`SessionConfig::session_quota`, 256 by default)
    /// or a reconnect burst can replay faster than the pump drains and
    /// shed its own tail with `SessionQuota`.
    pub max_in_flight: usize,
    /// Where client-send spans land; `None` disables client-side tracing
    /// entirely (reports go out untraced and the server may still sample
    /// them at admission).
    pub spans: Option<Arc<SpanSink>>,
    /// Head-based sampling rate: mint a trace id for one in every N
    /// enqueued reports (0 = never, 1 = every report). Only consulted
    /// when `spans` is set.
    pub trace_sample_every: u64,
    /// Seed mixed into minted trace ids; fix it to make a feed run's
    /// trace ids reproducible.
    pub trace_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            backoff: BackoffConfig::default(),
            handshake_deadline: Duration::from_secs(2),
            max_in_flight: 128,
            spans: None,
            trace_sample_every: 0,
            trace_seed: 0,
        }
    }
}

/// One shed decision the server reported, as the client saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedRecord {
    /// Wire sequence number of the shed report.
    pub seq: u64,
    /// Why the server refused it.
    pub reason: ShedReason,
}

/// What happened to everything the client submitted.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Reports handed to [`FeedClient::enqueue`].
    pub enqueued: u64,
    /// Report frames written (including replays after reconnects).
    pub frames_sent: u64,
    /// Sequence numbers that became terminal as accepted.
    pub acked: u64,
    /// Sheds, in the order their frames arrived.
    pub sheds: Vec<ShedRecord>,
    /// Successful handshakes after the first (i.e. reconnects).
    pub reconnects: u64,
    /// Snapshot pushes received.
    pub snapshots_received: u64,
}

impl ClientStats {
    /// Total sequence numbers shed.
    pub fn shed_total(&self) -> u64 {
        u64::try_from(self.sheds.len()).unwrap_or(u64::MAX)
    }
}

/// Why [`FeedClient::drive`] stopped before everything became terminal.
#[derive(Debug)]
pub enum ClientError {
    /// The consecutive-attempt budget ran out.
    RetriesExhausted,
    /// The caller's overall deadline expired.
    DeadlineExpired,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::RetriesExhausted => f.write_str("reconnect attempts exhausted"),
            ClientError::DeadlineExpired => f.write_str("drive deadline expired"),
        }
    }
}

impl std::error::Error for ClientError {}

struct Connection {
    conn: Box<dyn Conn>,
    decoder: FrameDecoder,
    writer: FrameWriter,
}

/// The sessioned feed client.
pub struct FeedClient {
    dialer: Box<dyn Dialer>,
    config: ClientConfig,
    session: u64,
    next_seq: u64,
    handled_up_to: u64,
    unsent: VecDeque<(u64, StampedUpdate, u64)>,
    unacked: VecDeque<(u64, StampedUpdate, u64)>,
    shed_seqs: HashSet<u64>,
    stats: ClientStats,
    conn: Option<Connection>,
    attempts: u32,
    rng: u64,
    handshakes: u64,
    last_snapshot: Option<(bool, Vec<(u32, i64)>)>,
}

impl std::fmt::Debug for FeedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedClient")
            .field("session", &self.session)
            .field("next_seq", &self.next_seq)
            .field("unsent", &self.unsent.len())
            .field("unacked", &self.unacked.len())
            .finish_non_exhaustive()
    }
}

impl FeedClient {
    /// A client that will (re)connect through `dialer`.
    pub fn new(dialer: Box<dyn Dialer>, config: ClientConfig) -> Self {
        let seed = config.backoff.seed | 1;
        FeedClient {
            dialer,
            config,
            session: 0,
            next_seq: 0,
            handled_up_to: 0,
            unsent: VecDeque::new(),
            unacked: VecDeque::new(),
            shed_seqs: HashSet::new(),
            stats: ClientStats::default(),
            conn: None,
            attempts: 0,
            rng: seed,
            handshakes: 0,
            last_snapshot: None,
        }
    }

    /// The server-assigned session id (0 before the first handshake).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// What happened so far.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// The most recent snapshot push, with its degraded flag.
    pub fn last_snapshot(&self) -> Option<&(bool, Vec<(u32, i64)>)> {
        self.last_snapshot.as_ref()
    }

    /// Sequence numbers not yet terminal.
    pub fn outstanding(&self) -> usize {
        self.unsent.len() + self.unacked.len()
    }

    /// Queues one report for submission; assigns the next wire sequence
    /// number (starting at 1) and, when tracing is enabled, mints the
    /// report's causal trace id at the sampling rate. The id sticks to
    /// the report through reconnect replay, so every retransmit of the
    /// same sequence number carries the same trace.
    pub fn enqueue(&mut self, report: StampedUpdate) {
        self.next_seq += 1;
        self.stats.enqueued += 1;
        let trace = match &self.config.spans {
            Some(sink) => {
                let trace = sample_trace(
                    self.config.trace_seed,
                    self.next_seq,
                    self.config.trace_sample_every,
                );
                if trace != 0 {
                    sink.note_trace_sampled();
                }
                trace
            }
            None => 0,
        };
        self.unsent.push_back((self.next_seq, report, trace));
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn backoff_delay(&mut self) -> Duration {
        let cfg = &self.config.backoff;
        let base_ms = u64::try_from(cfg.base.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let max_ms = u64::try_from(cfg.max.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let shift = self.attempts.min(16);
        let raw = base_ms.saturating_mul(1_u64 << shift).min(max_ms);
        let half = raw / 2;
        let jitter = if half == 0 {
            0
        } else {
            self.xorshift() % (half + 1)
        };
        Duration::from_millis(half + jitter)
    }

    /// Dials and completes the Hello/Ack handshake, replaying the unacked
    /// tail into the unsent queue.
    fn connect(&mut self, overall_deadline: Instant) -> Result<(), ClientError> {
        loop {
            if Instant::now() >= overall_deadline {
                return Err(ClientError::DeadlineExpired);
            }
            if self.attempts >= self.config.backoff.max_attempts {
                return Err(ClientError::RetriesExhausted);
            }
            if self.attempts > 0 || self.handshakes > 0 {
                std::thread::sleep(self.backoff_delay());
            }
            self.attempts += 1;
            let Ok(conn) = self.dialer.dial() else {
                continue;
            };
            let mut connection = Connection {
                conn,
                decoder: FrameDecoder::new(),
                writer: FrameWriter::new(),
            };
            connection.writer.push(&Message::Hello {
                resume_session: self.session,
            });
            if self.complete_handshake(&mut connection).is_ok() {
                // Anything written before the drop but past the server's
                // handled line must be resent on this connection.
                while let Some(entry) = self.unacked.pop_back() {
                    self.unsent.push_front(entry);
                }
                self.trim_terminal();
                self.conn = Some(connection);
                self.attempts = 0;
                self.handshakes += 1;
                if self.handshakes > 1 {
                    self.stats.reconnects += 1;
                }
                return Ok(());
            }
        }
    }

    fn complete_handshake(&mut self, connection: &mut Connection) -> Result<(), ()> {
        let deadline = Instant::now() + self.config.handshake_deadline;
        loop {
            if Instant::now() > deadline {
                return Err(());
            }
            if connection.writer.pending() > 0
                && connection.writer.flush_into(&mut connection.conn).is_err()
            {
                return Err(());
            }
            match connection.decoder.read_from(&mut connection.conn) {
                Ok(Message::Ack {
                    session,
                    handled_up_to,
                }) => {
                    self.session = session;
                    self.handled_up_to = self.handled_up_to.max(handled_up_to);
                    return Ok(());
                }
                // Sheds and snapshots may legitimately precede the
                // handshake ack if the server queued them; absorb them.
                Ok(Message::Shed { seq, reason }) => self.record_shed(seq, reason),
                Ok(Message::SnapshotPush { degraded, entries }) => {
                    self.stats.snapshots_received += 1;
                    self.last_snapshot = Some((degraded, entries));
                }
                Ok(Message::Bye { .. }) => return Err(()),
                Ok(_) => return Err(()),
                Err(e) if e.is_timeout() => continue,
                Err(_) => return Err(()),
            }
        }
    }

    fn record_shed(&mut self, seq: u64, reason: ShedReason) {
        if self.shed_seqs.insert(seq) {
            self.stats.sheds.push(ShedRecord { seq, reason });
        }
    }

    /// Drops terminal sequence numbers (covered by `handled_up_to`) from
    /// both queues, crediting `acked` for those never reported shed.
    fn trim_terminal(&mut self) {
        let line = self.handled_up_to;
        while self.unacked.front().is_some_and(|&(seq, ..)| seq <= line) {
            if let Some((seq, ..)) = self.unacked.pop_front() {
                if !self.shed_seqs.contains(&seq) {
                    self.stats.acked += 1;
                }
            }
        }
        while self.unsent.front().is_some_and(|&(seq, ..)| seq <= line) {
            if let Some((seq, ..)) = self.unsent.pop_front() {
                if !self.shed_seqs.contains(&seq) {
                    self.stats.acked += 1;
                }
            }
        }
    }

    /// One round of protocol I/O on the live connection. Returns false if
    /// the connection died.
    fn pump_io(&mut self) -> bool {
        let Some(mut connection) = self.conn.take() else {
            return false;
        };
        // Write as many fresh reports as the in-flight window allows.
        // Traced reports remember when they were pushed so the client-send
        // span can close once the flush actually puts the bytes on the
        // wire. A replay re-records the same deterministic span id its
        // first transmission produced — the tree never forks.
        let mut traced_pushes: Vec<(u64, u64)> = Vec::new();
        while self.unacked.len() < self.config.max_in_flight {
            let Some((seq, report, trace)) = self.unsent.pop_front() else {
                break;
            };
            if trace != 0 {
                traced_pushes.push((trace, now_nanos()));
            }
            connection.writer.push(&Message::Report {
                seq,
                unit_seq: report.seq,
                ts: report.ts,
                unit: report.update.unit.0,
                x: report.update.new.x,
                y: report.update.new.y,
                trace,
            });
            self.stats.frames_sent += 1;
            self.unacked.push_back((seq, report, trace));
        }
        let flush_ok = connection.writer.pending() == 0
            || connection.writer.flush_into(&mut connection.conn).is_ok();
        // Record the spans even when the flush dies mid-frame: the frame
        // may still have reached the server (the resume handshake would
        // then ack it without a re-push, and the span would be lost for
        // good). If the report IS replayed, the deterministic span id
        // makes the re-record collapse into this one.
        if let Some(sink) = &self.config.spans {
            let flushed = now_nanos();
            for (trace, pushed) in traced_pushes {
                sink.record_stage(trace, Stage::ClientSend, 0, pushed, flushed, true);
            }
        }
        if !flush_ok {
            return false;
        }
        // Read whatever the server has for us (one frame per call keeps
        // the loop responsive; timeouts are the idle path).
        match connection.decoder.read_from(&mut connection.conn) {
            Ok(Message::Ack { handled_up_to, .. }) => {
                self.handled_up_to = self.handled_up_to.max(handled_up_to);
                self.trim_terminal();
            }
            Ok(Message::Shed { seq, reason }) => self.record_shed(seq, reason),
            Ok(Message::SnapshotPush { degraded, entries }) => {
                self.stats.snapshots_received += 1;
                self.last_snapshot = Some((degraded, entries));
            }
            Ok(Message::Bye { .. }) => return false,
            Ok(_) => return false,
            Err(e) if e.is_timeout() => {}
            Err(_) => return false,
        }
        self.conn = Some(connection);
        true
    }

    /// One connect-if-needed plus one I/O round. Paced feeders use this
    /// to interleave enqueues with protocol work instead of blocking in
    /// [`FeedClient::drive`].
    pub fn step(&mut self, connect_budget: Duration) -> Result<(), ClientError> {
        self.trim_terminal();
        if self.conn.is_none() {
            self.connect(Instant::now() + connect_budget)?;
        }
        if !self.pump_io() {
            self.conn = None;
        }
        Ok(())
    }

    /// Drives submission until every enqueued report is terminal (acked
    /// or shed), reconnecting with backoff as needed.
    pub fn drive(&mut self, overall: Duration) -> Result<(), ClientError> {
        let deadline = Instant::now() + overall;
        loop {
            self.trim_terminal();
            if self.outstanding() == 0 {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(ClientError::DeadlineExpired);
            }
            if self.conn.is_none() {
                self.connect(deadline)?;
            }
            if !self.pump_io() {
                self.conn = None;
            }
        }
    }

    /// Keeps the connection alive for `duration`, absorbing snapshot
    /// pushes and acks. Returns snapshots received during the window.
    pub fn listen(&mut self, duration: Duration) -> Result<u64, ClientError> {
        let deadline = Instant::now() + duration;
        let before = self.stats.snapshots_received;
        while Instant::now() < deadline {
            if self.conn.is_none() {
                self.connect(deadline)?;
            }
            if !self.pump_io() {
                self.conn = None;
            }
        }
        Ok(self.stats.snapshots_received - before)
    }

    /// Polite goodbye; returns the final accounting.
    pub fn finish(mut self) -> ClientStats {
        if let Some(mut connection) = self.conn.take() {
            connection.writer.push(&Message::Bye {
                reason: ByeReason::Done,
            });
            let _ = connection.writer.flush_into(&mut connection.conn);
        }
        self.stats
    }
}
