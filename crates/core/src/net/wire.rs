//! Length-prefixed binary wire protocol of the ingest front door.
//!
//! Every frame is `[u32 payload_len LE][u8 version][u8 msg_type][payload]`.
//! The payload length counts the payload only (not the 6-byte header) and
//! is capped at [`MAX_FRAME_LEN`], so a decoder never allocates more than
//! 64 KiB per frame no matter what a peer sends. The codec is hand-rolled
//! over little-endian fixed-width fields: no varints, no reflection, no
//! dependencies — a frame is decodable with a hex dump and this file.
//!
//! Message flow:
//!
//! ```text
//! client                             server
//!   | -- Hello{resume_session} ------> |   open or resume a session
//!   | <------ Ack{session, handled} -- |   handshake: ids + replay line
//!   | -- Report{seq, ...} ----------> |   sequenced unit positions
//!   | <------ Ack{session, handled} -- |   cumulative: all <= handled done
//!   | <-------- Shed{seq, reason} --- |   terminal refusal, typed reason
//!   | <-- SnapshotPush{degraded,topk}- |   last-good result, pushed
//!   | -- Bye{reason} ---------------> |   orderly close (either side)
//! ```
//!
//! [`FrameDecoder`] and [`FrameWriter`] keep per-connection partial state
//! so short reads and short writes (timeouts, slow peers) never desync a
//! stream: a connection can deliver a frame one byte at a time and the
//! decoder picks up exactly where it stopped.
//!
//! Replication flow (primary ⇄ warm standby, PR 8):
//!
//! ```text
//! standby                            primary
//!   | -- CheckpointOffer{0,0,0} ----> |   zeroed offer = subscribe
//!   | <-- CheckpointOffer{e,seq,len}- |   here is my durable checkpoint
//!   | <-- CheckpointChunk{e,off,..} - |   checkpoint body, chunked
//!   | <-- WalAppend{e, report...} --- |   live tail, admission order
//!   | -- PromoteQuery{e'} ----------> |   fencing probe (any connection)
//!   | <-- PromoteQuery{e} ----------- |   echo: "alive, serving epoch e"
//! ```
//!
//! Every replication frame carries the sender's fencing **epoch**: a
//! promoted standby serves at `epoch + 1` and rejects any `WalAppend`
//! still arriving from the partitioned old primary at the stale epoch.

use super::stats::ShedReason;
use std::io::{Read, Write};

/// Protocol version carried in every frame header. Version 2 added a
/// trailing 64-bit causal trace id to [`Message::Report`] and
/// [`Message::WalAppend`]; version-1 frames are still decoded (their
/// trace id is 0, "untraced").
pub const PROTOCOL_VERSION: u8 = 2;
/// Oldest protocol version this build still decodes.
pub const MIN_PROTOCOL_VERSION: u8 = 1;
/// Size of the fixed frame header: payload length, version, message type.
pub const HEADER_LEN: usize = 6;
/// Hard cap on a frame's payload length; larger headers are a protocol
/// error and the connection is closed without allocating the claimed size.
pub const MAX_FRAME_LEN: usize = 64 * 1024;
/// Hard cap on entries in a [`Message::SnapshotPush`]; encoding truncates
/// to this, decoding rejects counts beyond it.
pub const MAX_TOPK_ENTRIES: usize = 4096;
/// Hard cap on the data carried by one [`Message::CheckpointChunk`].
/// Senders chunk checkpoint bodies at this size; decoding rejects larger
/// claims before allocating them. Chosen so a chunk frame sits well under
/// [`MAX_FRAME_LEN`] with room for its fixed fields.
pub const MAX_CHUNK_DATA: usize = 32 * 1024;
/// Read iterations [`FrameDecoder::read_from`] consumes per call before
/// yielding with a `WouldBlock`, so callers can run their frame-deadline
/// checks even against a peer that trickles bytes fast enough to never
/// hit the socket read timeout.
pub const READS_PER_CALL: usize = 8;

/// Message type tags (the `msg_type` header byte).
mod tag {
    pub const HELLO: u8 = 1;
    pub const REPORT: u8 = 2;
    pub const ACK: u8 = 3;
    pub const SHED: u8 = 4;
    pub const SNAPSHOT_PUSH: u8 = 5;
    pub const BYE: u8 = 6;
    pub const CHECKPOINT_OFFER: u8 = 7;
    pub const CHECKPOINT_CHUNK: u8 = 8;
    pub const WAL_APPEND: u8 = 9;
    pub const PROMOTE_QUERY: u8 = 10;
}

/// Why a connection is being closed, carried by [`Message::Bye`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByeReason {
    /// The client finished its feed and is closing cleanly.
    Done,
    /// The server is shutting down.
    Shutdown,
    /// The server evicted the connection (slow reads or writes).
    Evicted,
    /// The peer violated the protocol (malformed frame, bad handshake).
    ProtocolError,
    /// The session registry is full; try again later.
    ServerFull,
}

impl ByeReason {
    /// Wire encoding of the reason.
    pub fn code(self) -> u8 {
        match self {
            ByeReason::Done => 0,
            ByeReason::Shutdown => 1,
            ByeReason::Evicted => 2,
            ByeReason::ProtocolError => 3,
            ByeReason::ServerFull => 4,
        }
    }

    /// Decodes a wire code; `None` for codes this version does not know.
    pub fn from_code(code: u8) -> Option<ByeReason> {
        match code {
            0 => Some(ByeReason::Done),
            1 => Some(ByeReason::Shutdown),
            2 => Some(ByeReason::Evicted),
            3 => Some(ByeReason::ProtocolError),
            4 => Some(ByeReason::ServerFull),
            _ => None,
        }
    }

    /// Stable label for logs and client reports.
    pub fn label(self) -> &'static str {
        match self {
            ByeReason::Done => "done",
            ByeReason::Shutdown => "shutdown",
            ByeReason::Evicted => "evicted",
            ByeReason::ProtocolError => "protocol-error",
            ByeReason::ServerFull => "server-full",
        }
    }
}

/// One protocol message, the unit of framing.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client handshake. `resume_session = 0` requests a fresh session;
    /// a nonzero id asks to resume that session's sequence space.
    Hello {
        /// Session id to resume, or 0 for a new session.
        resume_session: u64,
    },
    /// One sequenced unit position report.
    Report {
        /// Per-session wire sequence number, starting at 1, gapless.
        seq: u64,
        /// Per-unit ingest sequence number (the gate's dedup key).
        unit_seq: u64,
        /// Client timestamp (gate liveness clock).
        ts: u64,
        /// Reporting unit id.
        unit: u32,
        /// New x coordinate.
        x: f64,
        /// New y coordinate.
        y: f64,
        /// Causal trace id threaded through the pipeline (0 = untraced).
        /// Absent on the wire before protocol version 2.
        trace: u64,
    },
    /// Cumulative progress: every wire seq `<= handled_up_to` is terminal
    /// (accepted or shed) and must not be retransmitted. The handshake
    /// `Ack` also tells the client its session id.
    Ack {
        /// Session id the ack belongs to.
        session: u64,
        /// Highest wire sequence number with all predecessors terminal.
        handled_up_to: u64,
    },
    /// Terminal refusal of one report, with a typed reason.
    Shed {
        /// Wire sequence number of the refused report.
        seq: u64,
        /// Why the report was refused.
        reason: ShedReason,
    },
    /// Server-pushed top-k snapshot (the last-good result in degraded
    /// mode), entries as `(place_id, safety)` in result order.
    SnapshotPush {
        /// Whether the server is currently degraded.
        degraded: bool,
        /// Top-k entries, capped at [`MAX_TOPK_ENTRIES`].
        entries: Vec<(u32, i64)>,
    },
    /// Orderly close notification.
    Bye {
        /// Why the connection is closing.
        reason: ByeReason,
    },
    /// Replication: describes a durable checkpoint about to be chunked
    /// over. A standby subscribes by sending an all-zero offer (it has
    /// nothing to offer; it asks the primary to offer instead); the
    /// primary replies with its epoch, checkpoint sequence, and body size.
    CheckpointOffer {
        /// Fencing epoch of the sender (0 in the subscribe request).
        epoch: u64,
        /// Sequence number of the offered checkpoint slot.
        slot_seq: u64,
        /// Total byte length of the checkpoint body that follows.
        total_len: u64,
    },
    /// Replication: one contiguous piece of the offered checkpoint body,
    /// at most [`MAX_CHUNK_DATA`] bytes, sent in ascending offset order.
    CheckpointChunk {
        /// Fencing epoch of the sender.
        epoch: u64,
        /// Byte offset of this chunk within the checkpoint body.
        offset: u64,
        /// Chunk bytes.
        data: Vec<u8>,
    },
    /// Replication: one report the primary accepted into its engine,
    /// shipped in admission order so the standby can stay hot. A standby
    /// that promoted itself rejects appends at a stale (lower) epoch.
    WalAppend {
        /// Fencing epoch of the sending primary.
        epoch: u64,
        /// Per-unit ingest sequence number (the gate's dedup key).
        unit_seq: u64,
        /// Client timestamp (gate liveness clock).
        ts: u64,
        /// Reporting unit id.
        unit: u32,
        /// New x coordinate.
        x: f64,
        /// New y coordinate.
        y: f64,
        /// Causal trace id of the originating report (0 = untraced).
        /// Absent on the wire before protocol version 2.
        trace: u64,
    },
    /// Fencing probe: "which epoch is serving here?". Sent by a standby
    /// before promoting; a live primary echoes back its own epoch, which
    /// aborts the promotion. Silence means the primary is dark.
    PromoteQuery {
        /// Sender's epoch (the candidate epoch when sent by a standby,
        /// the serving epoch when echoed by a primary).
        epoch: u64,
    },
}

/// A codec violation. Every variant closes the connection; none of them
/// can be caused by a short read (partial frames are handled by the
/// decoder's state machine, not by erroring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Header claimed a payload longer than [`MAX_FRAME_LEN`].
    FrameTooLong {
        /// The claimed payload length.
        claimed: u64,
    },
    /// Header carried a protocol version this build does not speak.
    UnsupportedVersion(u8),
    /// Header carried an unknown message type tag.
    UnknownType(u8),
    /// Payload ended before the message's fixed fields.
    Truncated,
    /// Payload continued past the message's fields.
    TrailingBytes,
    /// A reason code (shed or bye) was not recognized.
    UnknownReason(u8),
    /// A `SnapshotPush` claimed more than [`MAX_TOPK_ENTRIES`] entries.
    TooManyEntries(u64),
    /// A `CheckpointChunk` claimed more than [`MAX_CHUNK_DATA`] bytes.
    ChunkTooLong(u64),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLong { claimed } => {
                write!(
                    f,
                    "frame payload of {claimed} bytes exceeds {MAX_FRAME_LEN}"
                )
            }
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} \
                     (speak {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                )
            }
            WireError::UnknownType(t) => write!(f, "unknown message type {t}"),
            WireError::Truncated => f.write_str("payload shorter than the message's fields"),
            WireError::TrailingBytes => f.write_str("payload longer than the message's fields"),
            WireError::UnknownReason(c) => write!(f, "unknown reason code {c}"),
            WireError::TooManyEntries(n) => {
                write!(f, "snapshot claims {n} entries, cap is {MAX_TOPK_ENTRIES}")
            }
            WireError::ChunkTooLong(n) => {
                write!(f, "chunk claims {n} bytes, cap is {MAX_CHUNK_DATA}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian payload reader with bounds-checked fixed-width fields.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(arr))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| WireError::Truncated)?;
        Ok(i64::from_le_bytes(arr))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl Message {
    /// The header tag byte of this message.
    fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => tag::HELLO,
            Message::Report { .. } => tag::REPORT,
            Message::Ack { .. } => tag::ACK,
            Message::Shed { .. } => tag::SHED,
            Message::SnapshotPush { .. } => tag::SNAPSHOT_PUSH,
            Message::Bye { .. } => tag::BYE,
            Message::CheckpointOffer { .. } => tag::CHECKPOINT_OFFER,
            Message::CheckpointChunk { .. } => tag::CHECKPOINT_CHUNK,
            Message::WalAppend { .. } => tag::WAL_APPEND,
            Message::PromoteQuery { .. } => tag::PROMOTE_QUERY,
        }
    }

    /// Appends one complete frame (header + payload) to `out`.
    /// `SnapshotPush` entries are truncated to [`MAX_TOPK_ENTRIES`], so
    /// every encoded frame respects [`MAX_FRAME_LEN`] by construction.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut payload: Vec<u8> = Vec::with_capacity(64);
        match self {
            Message::Hello { resume_session } => put_u64(&mut payload, *resume_session),
            Message::Report {
                seq,
                unit_seq,
                ts,
                unit,
                x,
                y,
                trace,
            } => {
                put_u64(&mut payload, *seq);
                put_u64(&mut payload, *unit_seq);
                put_u64(&mut payload, *ts);
                put_u32(&mut payload, *unit);
                put_u64(&mut payload, x.to_bits());
                put_u64(&mut payload, y.to_bits());
                put_u64(&mut payload, *trace);
            }
            Message::Ack {
                session,
                handled_up_to,
            } => {
                put_u64(&mut payload, *session);
                put_u64(&mut payload, *handled_up_to);
            }
            Message::Shed { seq, reason } => {
                put_u64(&mut payload, *seq);
                payload.push(reason.code());
            }
            Message::SnapshotPush { degraded, entries } => {
                payload.push(u8::from(*degraded));
                let n = entries.len().min(MAX_TOPK_ENTRIES);
                put_u32(&mut payload, ctup_spatial::convert::id32(n));
                for (place, safety) in entries.iter().take(n) {
                    put_u32(&mut payload, *place);
                    put_i64(&mut payload, *safety);
                }
            }
            Message::Bye { reason } => payload.push(reason.code()),
            Message::CheckpointOffer {
                epoch,
                slot_seq,
                total_len,
            } => {
                put_u64(&mut payload, *epoch);
                put_u64(&mut payload, *slot_seq);
                put_u64(&mut payload, *total_len);
            }
            Message::CheckpointChunk {
                epoch,
                offset,
                data,
            } => {
                put_u64(&mut payload, *epoch);
                put_u64(&mut payload, *offset);
                let n = data.len().min(MAX_CHUNK_DATA);
                put_u32(&mut payload, ctup_spatial::convert::id32(n));
                payload.extend_from_slice(&data[..n]);
            }
            Message::WalAppend {
                epoch,
                unit_seq,
                ts,
                unit,
                x,
                y,
                trace,
            } => {
                put_u64(&mut payload, *epoch);
                put_u64(&mut payload, *unit_seq);
                put_u64(&mut payload, *ts);
                put_u32(&mut payload, *unit);
                put_u64(&mut payload, x.to_bits());
                put_u64(&mut payload, y.to_bits());
                put_u64(&mut payload, *trace);
            }
            Message::PromoteQuery { epoch } => put_u64(&mut payload, *epoch),
        }
        // Payloads are bounded by construction: the largest is a capped
        // SnapshotPush at 5 + 12 * MAX_TOPK_ENTRIES < MAX_FRAME_LEN.
        let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
        put_u32(out, len);
        out.push(PROTOCOL_VERSION);
        out.push(self.tag());
        out.extend_from_slice(&payload);
    }

    /// Decodes a payload given its validated header fields. Accepts any
    /// version in `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION`: version-1
    /// `Report`/`WalAppend` payloads lack the trailing trace id and
    /// decode with `trace = 0` (untraced).
    pub fn decode(version: u8, msg_type: u8, payload: &[u8]) -> Result<Message, WireError> {
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
            return Err(WireError::UnsupportedVersion(version));
        }
        let mut cur = Cursor::new(payload);
        let msg = match msg_type {
            tag::HELLO => Message::Hello {
                resume_session: cur.u64()?,
            },
            tag::REPORT => Message::Report {
                seq: cur.u64()?,
                unit_seq: cur.u64()?,
                ts: cur.u64()?,
                unit: cur.u32()?,
                x: cur.f64()?,
                y: cur.f64()?,
                trace: if version >= 2 { cur.u64()? } else { 0 },
            },
            tag::ACK => Message::Ack {
                session: cur.u64()?,
                handled_up_to: cur.u64()?,
            },
            tag::SHED => Message::Shed {
                seq: cur.u64()?,
                reason: {
                    let code = cur.u8()?;
                    ShedReason::from_code(code).ok_or(WireError::UnknownReason(code))?
                },
            },
            tag::SNAPSHOT_PUSH => {
                let degraded = cur.u8()? != 0;
                let count = cur.u32()?;
                let count_usize = usize::try_from(count)
                    .map_err(|_| WireError::TooManyEntries(u64::from(count)))?;
                if count_usize > MAX_TOPK_ENTRIES {
                    return Err(WireError::TooManyEntries(u64::from(count)));
                }
                // Allocation is capped: count was validated against both the
                // entry cap and (implicitly) the frame length via `finish`.
                let mut entries = Vec::with_capacity(count_usize);
                for _ in 0..count_usize {
                    let place = cur.u32()?;
                    let safety = cur.i64()?;
                    entries.push((place, safety));
                }
                Message::SnapshotPush { degraded, entries }
            }
            tag::BYE => Message::Bye {
                reason: {
                    let code = cur.u8()?;
                    ByeReason::from_code(code).ok_or(WireError::UnknownReason(code))?
                },
            },
            tag::CHECKPOINT_OFFER => Message::CheckpointOffer {
                epoch: cur.u64()?,
                slot_seq: cur.u64()?,
                total_len: cur.u64()?,
            },
            tag::CHECKPOINT_CHUNK => {
                let epoch = cur.u64()?;
                let offset = cur.u64()?;
                let len = cur.u32()?;
                let len_usize =
                    usize::try_from(len).map_err(|_| WireError::ChunkTooLong(u64::from(len)))?;
                if len_usize > MAX_CHUNK_DATA {
                    return Err(WireError::ChunkTooLong(u64::from(len)));
                }
                // Allocation is capped by the MAX_CHUNK_DATA check above;
                // a short payload fails in `take` before allocating.
                let data = cur.take(len_usize)?.to_vec();
                Message::CheckpointChunk {
                    epoch,
                    offset,
                    data,
                }
            }
            tag::WAL_APPEND => Message::WalAppend {
                epoch: cur.u64()?,
                unit_seq: cur.u64()?,
                ts: cur.u64()?,
                unit: cur.u32()?,
                x: cur.f64()?,
                y: cur.f64()?,
                trace: if version >= 2 { cur.u64()? } else { 0 },
            },
            tag::PROMOTE_QUERY => Message::PromoteQuery { epoch: cur.u64()? },
            other => return Err(WireError::UnknownType(other)),
        };
        cur.finish()?;
        Ok(msg)
    }
}

/// Errors surfaced by [`FrameDecoder::read_from`].
#[derive(Debug)]
pub enum DecodeError {
    /// The underlying read failed. Timeouts (`WouldBlock` / `TimedOut`)
    /// are reported here too; the decoder's partial state stays valid and
    /// the caller may retry.
    Io(std::io::Error),
    /// The peer sent a malformed frame; the stream is no longer trusted.
    Wire(WireError),
    /// The peer closed the stream. `mid_frame` is true when the close tore
    /// a partially delivered frame.
    Closed {
        /// Whether the stream died with a frame in flight.
        mid_frame: bool,
    },
}

impl DecodeError {
    /// Whether this error is a read timeout (partial state stays valid).
    pub fn is_timeout(&self) -> bool {
        match self {
            DecodeError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "read failed: {e}"),
            DecodeError::Wire(e) => write!(f, "malformed frame: {e}"),
            DecodeError::Closed { mid_frame: true } => f.write_str("peer closed mid-frame"),
            DecodeError::Closed { mid_frame: false } => f.write_str("peer closed"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Incremental frame decoder: survives short reads and read timeouts
/// without losing its place in the stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    header: [u8; HEADER_LEN],
    header_fill: usize,
    payload: Vec<u8>,
    payload_fill: usize,
    in_payload: bool,
}

impl FrameDecoder {
    /// A decoder at a frame boundary.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Whether a frame is partially buffered (used to classify an EOF or
    /// an idle timeout as a torn frame vs. a quiet connection).
    pub fn mid_frame(&self) -> bool {
        self.in_payload || self.header_fill > 0
    }

    /// Reads from `r` until one full frame decodes, the read would block,
    /// or the stream ends. Partial progress is kept across calls, so a
    /// timeout simply means "call again later".
    ///
    /// At most [`READS_PER_CALL`] successful reads are consumed per call;
    /// if the frame is still incomplete after that the call returns a
    /// `WouldBlock` timeout. Without the cap, a peer trickling one byte
    /// per read-timeout window would keep this loop "making progress"
    /// forever and starve the caller's frame-deadline check — the exact
    /// slowloris the deadline exists to evict. Bulk senders are unaffected:
    /// a kernel-buffered frame completes in one or two reads.
    pub fn read_from(&mut self, r: &mut impl Read) -> Result<Message, DecodeError> {
        let mut reads = 0usize;
        loop {
            if reads >= READS_PER_CALL {
                return Err(DecodeError::Io(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "frame incomplete after read budget",
                )));
            }
            reads += 1;
            if !self.in_payload {
                // Accumulate the fixed header.
                let n = r
                    .read(&mut self.header[self.header_fill..])
                    .map_err(DecodeError::Io)?;
                if n == 0 {
                    return Err(DecodeError::Closed {
                        mid_frame: self.header_fill > 0,
                    });
                }
                self.header_fill += n;
                if self.header_fill < HEADER_LEN {
                    continue;
                }
                let len_bytes: [u8; 4] = self.header[..4]
                    .try_into()
                    .map_err(|_| DecodeError::Wire(WireError::Truncated))?;
                let claimed = u32::from_le_bytes(len_bytes);
                let len = usize::try_from(claimed).unwrap_or(usize::MAX);
                if len > MAX_FRAME_LEN {
                    return Err(DecodeError::Wire(WireError::FrameTooLong {
                        claimed: u64::from(claimed),
                    }));
                }
                // The allocation is capped by the MAX_FRAME_LEN check above.
                self.payload.clear();
                self.payload.resize(len, 0);
                self.payload_fill = 0;
                self.in_payload = true;
            }
            if self.payload_fill < self.payload.len() {
                let n = r
                    .read(&mut self.payload[self.payload_fill..])
                    .map_err(DecodeError::Io)?;
                if n == 0 {
                    return Err(DecodeError::Closed { mid_frame: true });
                }
                self.payload_fill += n;
                if self.payload_fill < self.payload.len() {
                    continue;
                }
            }
            // Full frame buffered: decode and reset to the boundary.
            let version = self.header[4];
            let msg_type = self.header[5];
            let msg = Message::decode(version, msg_type, &self.payload);
            self.header_fill = 0;
            self.payload_fill = 0;
            self.in_payload = false;
            self.payload.clear();
            return msg.map_err(DecodeError::Wire);
        }
    }
}

/// Buffered frame writer: survives short writes and write timeouts, and
/// exposes its backlog so the server can evict peers that stop draining.
#[derive(Debug, Default)]
pub struct FrameWriter {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameWriter {
    /// An empty writer.
    pub fn new() -> Self {
        FrameWriter::default()
    }

    /// Queues one message for transmission.
    pub fn push(&mut self, msg: &Message) {
        msg.encode(&mut self.buf);
    }

    /// Bytes queued but not yet written.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Writes as much of the backlog as the peer accepts. Returns `true`
    /// when the backlog fully drained; `false` on a write timeout (retry
    /// later). Hard I/O errors propagate.
    pub fn flush_into(&mut self, w: &mut impl Write) -> std::io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer accepts no bytes",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let mut bytes = Vec::new();
        msg.encode(&mut bytes);
        assert!(bytes.len() >= HEADER_LEN);
        let mut decoder = FrameDecoder::new();
        let mut cursor = std::io::Cursor::new(bytes.clone());
        let got = decoder.read_from(&mut cursor).expect("decode");
        assert_eq!(got, msg);
        assert!(!decoder.mid_frame());
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello { resume_session: 0 },
            Message::Hello {
                resume_session: u64::MAX,
            },
            Message::Report {
                seq: 1,
                unit_seq: 42,
                ts: 7,
                unit: 3,
                x: 0.25,
                y: -1.5,
                trace: 0,
            },
            Message::Report {
                seq: u64::MAX,
                unit_seq: 0,
                ts: u64::MAX,
                unit: u32::MAX,
                x: f64::NAN,
                y: f64::INFINITY,
                trace: u64::MAX,
            },
            Message::Ack {
                session: 9,
                handled_up_to: 1_000_000,
            },
            Message::Shed {
                seq: 77,
                reason: ShedReason::QueueFull,
            },
            Message::Shed {
                seq: 78,
                reason: ShedReason::EngineDegraded,
            },
            Message::SnapshotPush {
                degraded: true,
                entries: vec![(1, -3), (2, 0), (u32::MAX, i64::MIN)],
            },
            Message::SnapshotPush {
                degraded: false,
                entries: Vec::new(),
            },
            Message::Bye {
                reason: ByeReason::Done,
            },
            Message::Bye {
                reason: ByeReason::ServerFull,
            },
            Message::CheckpointOffer {
                epoch: 0,
                slot_seq: 0,
                total_len: 0,
            },
            Message::CheckpointOffer {
                epoch: 3,
                slot_seq: 512,
                total_len: u64::MAX,
            },
            Message::CheckpointChunk {
                epoch: 3,
                offset: 0,
                data: Vec::new(),
            },
            Message::CheckpointChunk {
                epoch: 3,
                offset: 1 << 40,
                data: vec![0xAB; MAX_CHUNK_DATA],
            },
            Message::WalAppend {
                epoch: 4,
                unit_seq: 99,
                ts: 12,
                unit: u32::MAX,
                x: -0.125,
                y: 1e300,
                trace: 0xDEAD_BEEF_CAFE_F00D,
            },
            Message::PromoteQuery { epoch: 0 },
            Message::PromoteQuery { epoch: u64::MAX },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            // NaN != NaN would fail the equality; encode NaN-free samples
            // except the explicit bit-pattern check below.
            if let Message::Report { x, .. } = msg {
                if x.is_nan() {
                    continue;
                }
            }
            roundtrip(msg);
        }
    }

    #[test]
    fn nan_coordinates_survive_bit_exact() {
        let msg = Message::Report {
            seq: 1,
            unit_seq: 1,
            ts: 1,
            unit: 0,
            x: f64::NAN,
            y: f64::NEG_INFINITY,
            trace: 7,
        };
        let mut bytes = Vec::new();
        msg.encode(&mut bytes);
        let mut decoder = FrameDecoder::new();
        let got = decoder
            .read_from(&mut std::io::Cursor::new(bytes))
            .expect("decode");
        match got {
            Message::Report { x, y, .. } => {
                assert!(x.is_nan(), "the codec must not launder NaN");
                assert!(y.is_infinite() && y < 0.0);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn decoding_survives_one_byte_at_a_time() {
        let mut bytes = Vec::new();
        for msg in sample_messages() {
            if let Message::Report { x, .. } = msg {
                if x.is_nan() {
                    continue;
                }
            }
            msg.encode(&mut bytes);
        }
        struct OneByte<'a> {
            data: &'a [u8],
            pos: usize,
        }
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos >= self.data.len() || buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut reader = OneByte {
            data: &bytes,
            pos: 0,
        };
        let mut decoder = FrameDecoder::new();
        let mut decoded = 0usize;
        loop {
            match decoder.read_from(&mut reader) {
                Ok(_) => decoded += 1,
                // The per-call read budget yields mid-frame; call again,
                // exactly as a connection handler's poll loop does.
                Err(e) if e.is_timeout() => continue,
                Err(DecodeError::Closed { mid_frame }) => {
                    assert!(!mid_frame, "stream ends at a frame boundary");
                    break;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        let expected = sample_messages()
            .iter()
            .filter(|m| !matches!(m, Message::Report { x, .. } if x.is_nan()))
            .count();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn oversized_header_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, u32::MAX);
        bytes.push(PROTOCOL_VERSION);
        bytes.push(tag::HELLO);
        let mut decoder = FrameDecoder::new();
        match decoder.read_from(&mut std::io::Cursor::new(bytes)) {
            Err(DecodeError::Wire(WireError::FrameTooLong { claimed })) => {
                assert_eq!(claimed, u64::from(u32::MAX));
            }
            other => panic!("expected FrameTooLong, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_and_unknown_tag_are_rejected() {
        let mut bytes = Vec::new();
        Message::Hello { resume_session: 1 }.encode(&mut bytes);
        bytes[4] = 99; // version
        let mut decoder = FrameDecoder::new();
        assert!(matches!(
            decoder.read_from(&mut std::io::Cursor::new(bytes.clone())),
            Err(DecodeError::Wire(WireError::UnsupportedVersion(99)))
        ));
        bytes[4] = PROTOCOL_VERSION;
        bytes[5] = 200; // tag
        let mut decoder = FrameDecoder::new();
        assert!(matches!(
            decoder.read_from(&mut std::io::Cursor::new(bytes)),
            Err(DecodeError::Wire(WireError::UnknownType(200)))
        ));
    }

    #[test]
    fn v1_report_and_wal_append_decode_untraced() {
        // Hand-build version-1 frames (no trailing trace id): they must
        // still decode, with trace = 0.
        let mut payload = Vec::new();
        put_u64(&mut payload, 3); // seq
        put_u64(&mut payload, 44); // unit_seq
        put_u64(&mut payload, 9); // ts
        put_u32(&mut payload, 6); // unit
        put_u64(&mut payload, 0.25f64.to_bits());
        put_u64(&mut payload, (-1.5f64).to_bits());
        let mut bytes = Vec::new();
        put_u32(&mut bytes, ctup_spatial::convert::id32(payload.len()));
        bytes.push(MIN_PROTOCOL_VERSION);
        bytes.push(tag::REPORT);
        bytes.extend_from_slice(&payload);
        let mut decoder = FrameDecoder::new();
        let got = decoder
            .read_from(&mut std::io::Cursor::new(bytes))
            .expect("v1 report decodes");
        assert_eq!(
            got,
            Message::Report {
                seq: 3,
                unit_seq: 44,
                ts: 9,
                unit: 6,
                x: 0.25,
                y: -1.5,
                trace: 0,
            }
        );

        let mut payload = Vec::new();
        put_u64(&mut payload, 2); // epoch
        put_u64(&mut payload, 44); // unit_seq
        put_u64(&mut payload, 9); // ts
        put_u32(&mut payload, 6); // unit
        put_u64(&mut payload, 0.25f64.to_bits());
        put_u64(&mut payload, (-1.5f64).to_bits());
        let mut bytes = Vec::new();
        put_u32(&mut bytes, ctup_spatial::convert::id32(payload.len()));
        bytes.push(MIN_PROTOCOL_VERSION);
        bytes.push(tag::WAL_APPEND);
        bytes.extend_from_slice(&payload);
        let mut decoder = FrameDecoder::new();
        match decoder
            .read_from(&mut std::io::Cursor::new(bytes))
            .expect("v1 wal append decodes")
        {
            Message::WalAppend { epoch, trace, .. } => {
                assert_eq!(epoch, 2);
                assert_eq!(trace, 0);
            }
            other => panic!("wrong message: {other:?}"),
        }

        // A v1 frame that *does* carry the trace id is over-long for v1.
        let mut payload = Vec::new();
        put_u64(&mut payload, 3);
        put_u64(&mut payload, 44);
        put_u64(&mut payload, 9);
        put_u32(&mut payload, 6);
        put_u64(&mut payload, 0.25f64.to_bits());
        put_u64(&mut payload, (-1.5f64).to_bits());
        put_u64(&mut payload, 77); // trace, illegal in v1
        let mut bytes = Vec::new();
        put_u32(&mut bytes, ctup_spatial::convert::id32(payload.len()));
        bytes.push(MIN_PROTOCOL_VERSION);
        bytes.push(tag::REPORT);
        bytes.extend_from_slice(&payload);
        let mut decoder = FrameDecoder::new();
        assert!(matches!(
            decoder.read_from(&mut std::io::Cursor::new(bytes)),
            Err(DecodeError::Wire(WireError::TrailingBytes))
        ));
    }

    #[test]
    fn truncated_and_padded_payloads_are_rejected() {
        // Claim an 7-byte Hello payload (needs 8).
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 7);
        bytes.push(PROTOCOL_VERSION);
        bytes.push(tag::HELLO);
        bytes.extend_from_slice(&[0u8; 7]);
        let mut decoder = FrameDecoder::new();
        assert!(matches!(
            decoder.read_from(&mut std::io::Cursor::new(bytes)),
            Err(DecodeError::Wire(WireError::Truncated))
        ));
        // Claim a 9-byte Hello payload (one trailing byte).
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 9);
        bytes.push(PROTOCOL_VERSION);
        bytes.push(tag::HELLO);
        bytes.extend_from_slice(&[0u8; 9]);
        let mut decoder = FrameDecoder::new();
        assert!(matches!(
            decoder.read_from(&mut std::io::Cursor::new(bytes)),
            Err(DecodeError::Wire(WireError::TrailingBytes))
        ));
    }

    #[test]
    fn snapshot_push_entry_count_is_capped_both_ways() {
        // Decoding a count over the cap fails before allocating it.
        let mut payload = Vec::new();
        payload.push(0u8);
        put_u32(&mut payload, 1_000_000);
        let mut bytes = Vec::new();
        put_u32(&mut bytes, ctup_spatial::convert::id32(payload.len()));
        bytes.push(PROTOCOL_VERSION);
        bytes.push(tag::SNAPSHOT_PUSH);
        bytes.extend_from_slice(&payload);
        let mut decoder = FrameDecoder::new();
        assert!(matches!(
            decoder.read_from(&mut std::io::Cursor::new(bytes)),
            Err(DecodeError::Wire(WireError::TooManyEntries(1_000_000)))
        ));
        // Encoding truncates to the cap and still round-trips.
        let big = Message::SnapshotPush {
            degraded: false,
            entries: (0..2 * MAX_TOPK_ENTRIES)
                .map(|i| (ctup_spatial::convert::id32(i), 0i64))
                .collect(),
        };
        let mut bytes = Vec::new();
        big.encode(&mut bytes);
        assert!(bytes.len() <= HEADER_LEN + MAX_FRAME_LEN);
        let mut decoder = FrameDecoder::new();
        match decoder
            .read_from(&mut std::io::Cursor::new(bytes))
            .expect("decode")
        {
            Message::SnapshotPush { entries, .. } => assert_eq!(entries.len(), MAX_TOPK_ENTRIES),
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn unknown_reason_codes_are_rejected() {
        let mut bytes = Vec::new();
        Message::Shed {
            seq: 1,
            reason: ShedReason::QueueFull,
        }
        .encode(&mut bytes);
        let last = bytes.len() - 1;
        bytes[last] = 42;
        let mut decoder = FrameDecoder::new();
        assert!(matches!(
            decoder.read_from(&mut std::io::Cursor::new(bytes)),
            Err(DecodeError::Wire(WireError::UnknownReason(42)))
        ));
    }

    #[test]
    fn chunk_data_is_capped_both_ways() {
        // Decoding a length claim over the cap fails before allocating it.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // epoch
        put_u64(&mut payload, 0); // offset
        put_u32(&mut payload, 1_000_000); // claimed data length
        let mut bytes = Vec::new();
        put_u32(&mut bytes, ctup_spatial::convert::id32(payload.len()));
        bytes.push(PROTOCOL_VERSION);
        bytes.push(tag::CHECKPOINT_CHUNK);
        bytes.extend_from_slice(&payload);
        let mut decoder = FrameDecoder::new();
        assert!(matches!(
            decoder.read_from(&mut std::io::Cursor::new(bytes)),
            Err(DecodeError::Wire(WireError::ChunkTooLong(1_000_000)))
        ));
        // Encoding truncates to the cap, keeps the frame under the frame
        // cap, and still round-trips.
        let big = Message::CheckpointChunk {
            epoch: 1,
            offset: 0,
            data: vec![7u8; 2 * MAX_CHUNK_DATA],
        };
        let mut bytes = Vec::new();
        big.encode(&mut bytes);
        assert!(bytes.len() <= HEADER_LEN + MAX_FRAME_LEN);
        let mut decoder = FrameDecoder::new();
        match decoder
            .read_from(&mut std::io::Cursor::new(bytes))
            .expect("decode")
        {
            Message::CheckpointChunk { data, .. } => assert_eq!(data.len(), MAX_CHUNK_DATA),
            other => panic!("wrong message: {other:?}"),
        }
        // A claim that exceeds the remaining payload is a truncation, not
        // an allocation.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 64); // claims 64 bytes, delivers 3
        payload.extend_from_slice(&[1, 2, 3]);
        let mut bytes = Vec::new();
        put_u32(&mut bytes, ctup_spatial::convert::id32(payload.len()));
        bytes.push(PROTOCOL_VERSION);
        bytes.push(tag::CHECKPOINT_CHUNK);
        bytes.extend_from_slice(&payload);
        let mut decoder = FrameDecoder::new();
        assert!(matches!(
            decoder.read_from(&mut std::io::Cursor::new(bytes)),
            Err(DecodeError::Wire(WireError::Truncated))
        ));
    }

    #[test]
    fn replication_frames_reject_truncation_padding_and_cross_version() {
        let samples = [
            Message::CheckpointOffer {
                epoch: 2,
                slot_seq: 5,
                total_len: 1024,
            },
            Message::CheckpointChunk {
                epoch: 2,
                offset: 64,
                data: vec![9u8; 16],
            },
            Message::WalAppend {
                epoch: 2,
                unit_seq: 7,
                ts: 3,
                unit: 1,
                x: 0.5,
                y: -0.5,
                trace: 9,
            },
            Message::PromoteQuery { epoch: 2 },
        ];
        for msg in samples {
            let mut bytes = Vec::new();
            msg.encode(&mut bytes);
            // Every one-byte-shorter payload claim is a typed truncation.
            let mut cut = bytes.clone();
            let shorter = u32::try_from(cut.len() - HEADER_LEN - 1).expect("fits");
            cut[..4].copy_from_slice(&shorter.to_le_bytes());
            cut.pop();
            let mut decoder = FrameDecoder::new();
            assert!(
                matches!(
                    decoder.read_from(&mut std::io::Cursor::new(cut)),
                    Err(DecodeError::Wire(WireError::Truncated))
                ),
                "truncated {msg:?} must be rejected"
            );
            // One trailing byte is typed padding.
            let mut padded = bytes.clone();
            let longer = u32::try_from(padded.len() - HEADER_LEN + 1).expect("fits");
            padded[..4].copy_from_slice(&longer.to_le_bytes());
            padded.push(0);
            let mut decoder = FrameDecoder::new();
            assert!(
                matches!(
                    decoder.read_from(&mut std::io::Cursor::new(padded)),
                    Err(DecodeError::Wire(WireError::TrailingBytes))
                ),
                "padded {msg:?} must be rejected"
            );
            // A future protocol version is refused before the payload is
            // interpreted, so replication peers never mix versions.
            let mut versioned = bytes.clone();
            versioned[4] = PROTOCOL_VERSION + 1;
            let mut decoder = FrameDecoder::new();
            assert!(
                matches!(
                    decoder.read_from(&mut std::io::Cursor::new(versioned)),
                    Err(DecodeError::Wire(WireError::UnsupportedVersion(v)))
                        if v == PROTOCOL_VERSION + 1
                ),
                "cross-version {msg:?} must be rejected"
            );
        }
    }

    #[test]
    fn replication_epochs_roundtrip_across_random_values() {
        // Deterministic pseudo-fuzz over the epoch-bearing fields: fencing
        // only works if epochs survive the codec bit-exactly.
        let mut state = 0xD1B54A32D192ED03u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let epoch = next();
            let msgs = [
                Message::CheckpointOffer {
                    epoch,
                    slot_seq: next(),
                    total_len: next(),
                },
                Message::WalAppend {
                    epoch,
                    unit_seq: next(),
                    ts: next(),
                    unit: 11,
                    x: 0.25,
                    y: 0.75,
                    trace: next(),
                },
                Message::PromoteQuery { epoch },
            ];
            for msg in msgs {
                let mut bytes = Vec::new();
                msg.encode(&mut bytes);
                let mut decoder = FrameDecoder::new();
                let got = decoder
                    .read_from(&mut std::io::Cursor::new(bytes))
                    .expect("decode");
                assert_eq!(got, msg);
                let got_epoch = match got {
                    Message::CheckpointOffer { epoch, .. }
                    | Message::CheckpointChunk { epoch, .. }
                    | Message::WalAppend { epoch, .. }
                    | Message::PromoteQuery { epoch } => epoch,
                    other => panic!("wrong message: {other:?}"),
                };
                assert_eq!(got_epoch, epoch);
            }
        }
    }

    #[test]
    fn garbage_streams_error_but_never_panic() {
        // Deterministic pseudo-fuzz: feed the decoder random byte soup and
        // random mutations of valid frames; it must either decode or
        // return a typed error, never panic or over-allocate.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let len = usize::try_from(next() % 512).unwrap_or(0);
            let mut bytes: Vec<u8> = Vec::with_capacity(len);
            for _ in 0..len {
                bytes.push(u8::try_from(next() % 256).unwrap_or(0));
            }
            let mut decoder = FrameDecoder::new();
            let mut cursor = std::io::Cursor::new(bytes);
            for _ in 0..64 {
                match decoder.read_from(&mut cursor) {
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
        }
        // Mutated valid frames.
        for _ in 0..200 {
            let mut bytes = Vec::new();
            Message::Report {
                seq: next(),
                unit_seq: next(),
                ts: next(),
                unit: 5,
                x: 0.5,
                y: 0.5,
                trace: next(),
            }
            .encode(&mut bytes);
            let idx = usize::try_from(next()).unwrap_or(0) % bytes.len();
            bytes[idx] ^= u8::try_from(next() % 255).unwrap_or(1).max(1);
            let mut decoder = FrameDecoder::new();
            let _ = decoder.read_from(&mut std::io::Cursor::new(bytes));
        }
    }

    #[test]
    fn frame_writer_survives_short_writes() {
        struct Dribble {
            out: Vec<u8>,
            budget: usize,
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.budget == 0 {
                    return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "later"));
                }
                let n = buf.len().min(3).min(self.budget);
                self.out.extend_from_slice(&buf[..n]);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut writer = FrameWriter::new();
        let msg = Message::Ack {
            session: 3,
            handled_up_to: 10,
        };
        writer.push(&msg);
        let total = writer.pending();
        let mut sink = Dribble {
            out: Vec::new(),
            budget: 5,
        };
        assert!(!writer.flush_into(&mut sink).expect("partial flush"));
        assert_eq!(writer.pending(), total - 5);
        sink.budget = usize::MAX;
        assert!(writer.flush_into(&mut sink).expect("final flush"));
        assert_eq!(writer.pending(), 0);
        let mut decoder = FrameDecoder::new();
        let got = decoder
            .read_from(&mut std::io::Cursor::new(sink.out))
            .expect("decode");
        assert_eq!(got, msg);
    }
}
