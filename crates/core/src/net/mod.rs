//! The networked ingest front door (PR6).
//!
//! Remote units feed location reports over a sessioned, length-prefixed
//! binary protocol ([`wire`]); the server admits them through a bounded,
//! watermarked queue ([`admission`]), suppresses reconnect replays
//! per-session ([`session`]), drains them into the supervised pipeline
//! exactly once ([`server`]), and degrades gracefully under overload —
//! shedding with typed [`ShedReason`]s while the last-good top-k keeps
//! being served. The matching client lives in [`client`]; the calibrated
//! overload sweep behind BENCH_PR6.json in [`overload`].
//!
//! The invariant every piece preserves, and the chaos suite checks:
//! every accepted report is applied exactly once, and every report that
//! is not applied is accounted for as a replay or a typed shed.

pub mod admission;
pub mod client;
pub mod overload;
pub mod server;
pub mod session;
pub mod stats;
pub mod wire;

pub use admission::{AdmissionConfig, AdmissionQueue, QueuedReport};
pub use client::{
    BackoffConfig, ClientConfig, ClientError, ClientStats, Conn, Dialer, FeedClient, ShedRecord,
    TcpDialer,
};
pub use overload::{
    run_sweep, CalibratedSink, CountingSink, LoadPoint, OverloadConfig, SweepReport,
};
pub use server::{EngineSink, IngestServer, NetServerConfig, PipelineSink, SinkError};
pub use session::{SessionConfig, SessionRegistry};
pub use stats::{NetStats, NetStatsSnapshot, ShedReason};
pub use wire::{ByeReason, FrameDecoder, FrameWriter, Message, WireError, MAX_FRAME_LEN};
