//! The networked ingest front door (PR6).
//!
//! Remote units feed location reports over a sessioned, length-prefixed
//! binary protocol ([`wire`]); the server admits them through a bounded,
//! watermarked queue ([`admission`]), suppresses reconnect replays
//! per-session ([`session`]), drains them into the supervised pipeline
//! exactly once ([`server`]), and degrades gracefully under overload —
//! shedding with typed [`ShedReason`]s while the last-good top-k keeps
//! being served. The matching client lives in [`client`]; the calibrated
//! overload sweep behind BENCH_PR6.json in [`overload`].
//!
//! The invariant every piece preserves, and the chaos suite checks:
//! every accepted report is applied exactly once, and every report that
//! is not applied is accounted for as a replay or a typed shed.
//!
//! PR8 adds the two-level recovery subsystem: [`recovery`] (circuit-broken
//! in-process engine revival behind the pump) and [`standby`] (a warm
//! standby that bootstraps from a shipped checkpoint over [`wire`]'s
//! replication frames, tails the WAL stream, and promotes itself behind an
//! epoch fence when the primary goes dark). The MTTR bench behind
//! BENCH_PR8.json — outage duration for both recovery levels — lives in
//! [`mttr`].

pub mod admission;
pub mod client;
pub mod mttr;
pub mod overload;
pub mod recovery;
pub mod server;
pub mod session;
pub mod standby;
pub mod stats;
pub mod wire;

pub use admission::{AdmissionConfig, AdmissionQueue, QueuedReport};
pub use client::{
    BackoffConfig, ClientConfig, ClientError, ClientStats, Conn, Dialer, FailoverDialer,
    FeedClient, ShedRecord, TcpDialer,
};
pub use mttr::{run_mttr_bench, MttrConfig, MttrReport, PromotionTrial, SelfHealTrial};
pub use overload::{
    run_sweep, CalibratedSink, CountingSink, LoadPoint, OverloadConfig, SweepReport,
};
pub use recovery::{CircuitBreaker, EngineReviver, RecoveryConfig, RecoveryPlan};
pub use server::{EngineSink, IngestServer, NetServerConfig, PipelineSink, SinkError};
pub use session::{SessionConfig, SessionRegistry};
pub use standby::{StandbyConfig, StandbyPhase, StandbyServer, StandbyStatus};
pub use stats::{NetStats, NetStatsSnapshot, ShedReason};
pub use wire::{
    ByeReason, FrameDecoder, FrameWriter, Message, WireError, MAX_CHUNK_DATA, MAX_FRAME_LEN,
};
