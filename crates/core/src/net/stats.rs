//! The front door's shed taxonomy and counters.
//!
//! Every report a client submits is either *accepted* (forwarded to the
//! engine exactly once), *suppressed as a replay* (the session already
//! handled that sequence number), or *shed* with a typed [`ShedReason`].
//! The counters here make that accounting auditable: for any run,
//!
//! ```text
//! reports_accepted + replays_suppressed + shed_total() == reports received
//! ```
//!
//! This module is on the lint L008 counters allowlist: the counters are
//! monotone (`fetch_add`) and the gauges (`queue_depth`,
//! `sessions_active`, `degraded_since_ms`, `epoch`, `degraded`) are
//! advisory snapshots, so `Relaxed` is sufficient — nothing reads a
//! counter to decide control flow, and no other memory is published
//! through them. (Recovery control flow keys off `Shared`'s dedicated
//! flags, not these counters; `epoch` here mirrors the fencing epoch for
//! exposition only — the authoritative copy rides in every replication
//! frame.) The shed-accounting identity above holds at quiescence
//! (after joins), which is when the differential suites check it.
//!
//! [`NetStats`] is the live, atomically updated form shared between the
//! accept loop, the connection handlers, the drain pump and the watchdog;
//! [`NetStatsSnapshot`] is the plain-value copy embedded in the unified
//! report [`Snapshot`](crate::report::Snapshot), where lint rule L004
//! guarantees every field below reaches all three exposition formats.

use ctup_obs::{AtomicHistogram, LogHistogram};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// One exemplar: the trace id of a report whose ingest wait landed in a
/// given `net_ingest_wait_nanos` histogram bucket. The JSON report
/// attaches these to the histogram so an operator can jump from a slow
/// bucket straight to `ctup trace <trace>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitExemplar {
    /// Histogram bucket index ([`ctup_obs::hist::bucket_index`]) the
    /// wait fell into.
    pub bucket: u32,
    /// The recorded wait, in nanoseconds.
    pub wait_nanos: u64,
    /// Trace id of the report that recorded it (never 0).
    pub trace: u64,
}

/// Bounded store of ingest-wait exemplars: at most one per histogram
/// bucket (the slowest wait seen wins), so the worst buckets always keep
/// a representative trace id and the store cannot grow past the bucket
/// count of the histogram.
#[derive(Debug, Default)]
pub struct ExemplarStore {
    inner: Mutex<Vec<WaitExemplar>>,
}

impl ExemplarStore {
    fn lock(&self) -> MutexGuard<'_, Vec<WaitExemplar>> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records a traced wait; keeps the slowest exemplar per bucket.
    /// Returns the number of exemplars currently stored.
    pub fn record(&self, wait_nanos: u64, trace: u64) -> u64 {
        let bucket = u32::try_from(ctup_obs::hist::bucket_index(wait_nanos)).unwrap_or(u32::MAX);
        let mut inner = self.lock();
        match inner.iter_mut().find(|e| e.bucket == bucket) {
            Some(existing) => {
                if wait_nanos >= existing.wait_nanos {
                    existing.wait_nanos = wait_nanos;
                    existing.trace = trace;
                }
            }
            None => inner.push(WaitExemplar {
                bucket,
                wait_nanos,
                trace,
            }),
        }
        ctup_spatial::convert::count64(inner.len())
    }

    /// The stored exemplars, slowest bucket first.
    pub fn snapshot(&self) -> Vec<WaitExemplar> {
        let mut out = self.lock().clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.bucket));
        out
    }
}

/// Why the front door refused to forward a report to the engine.
///
/// Sheds are *terminal*: the server counts the sequence number as handled
/// and the client must not retry it. This keeps overload from amplifying
/// itself — a shed report costs one frame each way and never comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The global admission queue was above its high watermark (and had
    /// not yet drained below the low watermark — shedding is hysteretic).
    QueueFull,
    /// The report waited in the admission queue longer than the ingest
    /// deadline; delivering it now would feed the engine stale positions.
    DeadlineExceeded,
    /// The submitting session exceeded its per-session quota of queued
    /// reports; one chatty client cannot monopolize the global queue.
    SessionQuota,
    /// The watchdog has tripped degraded mode (engine dead or drain
    /// stalled); ingest sheds while the last-good top-k keeps serving.
    EngineDegraded,
}

impl ShedReason {
    /// All reasons, in wire-code order.
    pub const ALL: [ShedReason; 4] = [
        ShedReason::QueueFull,
        ShedReason::DeadlineExceeded,
        ShedReason::SessionQuota,
        ShedReason::EngineDegraded,
    ];

    /// Stable label used in logs and client reports.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::DeadlineExceeded => "deadline-exceeded",
            ShedReason::SessionQuota => "session-quota",
            ShedReason::EngineDegraded => "engine-degraded",
        }
    }

    /// Wire encoding of the reason.
    pub fn code(self) -> u8 {
        match self {
            ShedReason::QueueFull => 0,
            ShedReason::DeadlineExceeded => 1,
            ShedReason::SessionQuota => 2,
            ShedReason::EngineDegraded => 3,
        }
    }

    /// Decodes a wire code; `None` for codes this version does not know.
    pub fn from_code(code: u8) -> Option<ShedReason> {
        match code {
            0 => Some(ShedReason::QueueFull),
            1 => Some(ShedReason::DeadlineExceeded),
            2 => Some(ShedReason::SessionQuota),
            3 => Some(ShedReason::EngineDegraded),
            _ => None,
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Live counters of the ingest front door, updated with relaxed atomics
/// from every server thread. Shared as an `Arc<NetStats>`.
#[derive(Debug, Default)]
pub struct NetStats {
    /// TCP connections the accept loop handed to a handler thread.
    pub connections_accepted: AtomicU64,
    /// TCP connections refused before a handler ran (connection cap).
    pub connections_rejected: AtomicU64,
    /// Sessions created by a `Hello` with no resumable predecessor.
    pub sessions_opened: AtomicU64,
    /// Sessions resumed by a `Hello` naming a known session id.
    pub sessions_resumed: AtomicU64,
    /// Connections evicted by the server (slow reads, slow writes,
    /// handshake timeouts, protocol errors).
    pub sessions_evicted: AtomicU64,
    /// Well-formed frames decoded across all connections.
    pub frames_received: AtomicU64,
    /// Frames rejected by the codec (bad version, unknown type, length
    /// violations); the connection is closed after the first one.
    pub frames_malformed: AtomicU64,
    /// Connections that died mid-frame (a disconnect tore a frame).
    pub partial_disconnects: AtomicU64,
    /// Reports drained from the admission queue into the engine.
    pub reports_accepted: AtomicU64,
    /// Reports suppressed because their session had already handled that
    /// sequence number (reconnect replays, retransmits).
    pub replays_suppressed: AtomicU64,
    /// Reports shed with [`ShedReason::QueueFull`].
    pub shed_queue_full: AtomicU64,
    /// Reports shed with [`ShedReason::DeadlineExceeded`].
    pub shed_deadline_exceeded: AtomicU64,
    /// Reports shed with [`ShedReason::SessionQuota`].
    pub shed_session_quota: AtomicU64,
    /// Reports shed with [`ShedReason::EngineDegraded`].
    pub shed_engine_degraded: AtomicU64,
    /// Times the watchdog tripped the server into degraded mode.
    pub degraded_entries: AtomicU64,
    /// `SnapshotPush` frames sent to subscribed sessions.
    pub snapshots_pushed: AtomicU64,
    /// Times the level-1 recovery path rebuilt a dead engine in process
    /// (durable slot + WAL replay) and resumed draining.
    pub engine_restarts: AtomicU64,
    /// Times this server took over as primary (a standby promotion
    /// crowned it; the epoch gauge records the fencing epoch it serves).
    pub failovers: AtomicU64,
    /// Gauge: reports currently waiting in the admission queue.
    pub queue_depth: AtomicU64,
    /// Gauge: sessions currently known to the registry.
    pub sessions_active: AtomicU64,
    /// Gauge: milliseconds spent in the current degraded episode, 0 when
    /// healthy. Refreshed by the watchdog tick, so it lags by one tick.
    pub degraded_since_ms: AtomicU64,
    /// Gauge: the fencing epoch this server serves at. Replication frames
    /// carry it; a promoted standby serves at the old primary's epoch + 1.
    pub epoch: AtomicU64,
    /// Gauge: whether the server is currently in degraded mode.
    pub degraded: AtomicBool,
    /// Spans overwritten in the causal span sink before a snapshot could
    /// read them (synced from the sink by the watchdog; 0 with tracing
    /// off).
    pub spans_dropped: AtomicU64,
    /// Trace ids minted in this process — head-sampled admits plus the
    /// always-sampled sheds (synced from the sink by the watchdog).
    pub traces_sampled: AtomicU64,
    /// Gauge: exemplar trace ids currently attached to ingest-wait
    /// histogram buckets.
    pub exemplars: AtomicU64,
    /// Wait from admission-queue entry to successful engine hand-off.
    pub ingest_wait_nanos: AtomicHistogram,
    /// Per-bucket exemplar trace ids for `ingest_wait_nanos`.
    pub ingest_wait_exemplars: ExemplarStore,
}

impl NetStats {
    /// Bumps the counter for one shed decision.
    pub fn record_shed(&self, reason: ShedReason) {
        let counter = match reason {
            ShedReason::QueueFull => &self.shed_queue_full,
            ShedReason::DeadlineExceeded => &self.shed_deadline_exceeded,
            ShedReason::SessionQuota => &self.shed_session_quota,
            ShedReason::EngineDegraded => &self.shed_engine_degraded,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Materializes a plain-value copy for reporting. Advisory: concurrent
    /// updates may straddle the scan, which is fine for exposition.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        NetStatsSnapshot {
            connections_accepted: load(&self.connections_accepted),
            connections_rejected: load(&self.connections_rejected),
            sessions_opened: load(&self.sessions_opened),
            sessions_resumed: load(&self.sessions_resumed),
            sessions_evicted: load(&self.sessions_evicted),
            frames_received: load(&self.frames_received),
            frames_malformed: load(&self.frames_malformed),
            partial_disconnects: load(&self.partial_disconnects),
            reports_accepted: load(&self.reports_accepted),
            replays_suppressed: load(&self.replays_suppressed),
            shed_queue_full: load(&self.shed_queue_full),
            shed_deadline_exceeded: load(&self.shed_deadline_exceeded),
            shed_session_quota: load(&self.shed_session_quota),
            shed_engine_degraded: load(&self.shed_engine_degraded),
            degraded_entries: load(&self.degraded_entries),
            snapshots_pushed: load(&self.snapshots_pushed),
            engine_restarts: load(&self.engine_restarts),
            failovers: load(&self.failovers),
            queue_depth: load(&self.queue_depth),
            sessions_active: load(&self.sessions_active),
            degraded_since_ms: load(&self.degraded_since_ms),
            epoch: load(&self.epoch),
            degraded: self.degraded.load(Ordering::Relaxed),
            spans_dropped: load(&self.spans_dropped),
            traces_sampled: load(&self.traces_sampled),
            exemplars: load(&self.exemplars),
            ingest_wait_nanos: self.ingest_wait_nanos.snapshot(),
            ingest_wait_exemplars: self.ingest_wait_exemplars.snapshot(),
        }
    }

    /// Records a traced ingest wait as an exemplar and refreshes the
    /// `exemplars` gauge. No-op for untraced reports (`trace == 0`).
    pub fn record_exemplar(&self, wait_nanos: u64, trace: u64) {
        if trace == 0 {
            return;
        }
        let count = self.ingest_wait_exemplars.record(wait_nanos, trace);
        self.exemplars.store(count, Ordering::Relaxed);
    }
}

/// Plain-value copy of [`NetStats`], embedded in the unified report
/// [`Snapshot`](crate::report::Snapshot). Field meanings match the live
/// struct one-for-one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStatsSnapshot {
    /// TCP connections the accept loop handed to a handler thread.
    pub connections_accepted: u64,
    /// TCP connections refused before a handler ran (connection cap).
    pub connections_rejected: u64,
    /// Sessions created by a `Hello` with no resumable predecessor.
    pub sessions_opened: u64,
    /// Sessions resumed by a `Hello` naming a known session id.
    pub sessions_resumed: u64,
    /// Connections evicted by the server.
    pub sessions_evicted: u64,
    /// Well-formed frames decoded across all connections.
    pub frames_received: u64,
    /// Frames rejected by the codec.
    pub frames_malformed: u64,
    /// Connections that died mid-frame.
    pub partial_disconnects: u64,
    /// Reports drained from the admission queue into the engine.
    pub reports_accepted: u64,
    /// Reports suppressed as session replays.
    pub replays_suppressed: u64,
    /// Reports shed with [`ShedReason::QueueFull`].
    pub shed_queue_full: u64,
    /// Reports shed with [`ShedReason::DeadlineExceeded`].
    pub shed_deadline_exceeded: u64,
    /// Reports shed with [`ShedReason::SessionQuota`].
    pub shed_session_quota: u64,
    /// Reports shed with [`ShedReason::EngineDegraded`].
    pub shed_engine_degraded: u64,
    /// Times the watchdog tripped degraded mode.
    pub degraded_entries: u64,
    /// `SnapshotPush` frames sent.
    pub snapshots_pushed: u64,
    /// Times the level-1 recovery path rebuilt a dead engine in process.
    pub engine_restarts: u64,
    /// Times this server took over as primary via standby promotion.
    pub failovers: u64,
    /// Gauge: reports waiting in the admission queue at snapshot time.
    pub queue_depth: u64,
    /// Gauge: sessions known to the registry at snapshot time.
    pub sessions_active: u64,
    /// Gauge: milliseconds in the current degraded episode, 0 if healthy.
    pub degraded_since_ms: u64,
    /// Gauge: the fencing epoch this server serves at.
    pub epoch: u64,
    /// Gauge: whether degraded mode was active at snapshot time.
    pub degraded: bool,
    /// Spans overwritten in the causal span sink before being read.
    pub spans_dropped: u64,
    /// Trace ids minted in this process (sampled admits + forced sheds).
    pub traces_sampled: u64,
    /// Gauge: exemplar trace ids attached to ingest-wait buckets.
    pub exemplars: u64,
    /// Wait from admission-queue entry to successful engine hand-off.
    pub ingest_wait_nanos: LogHistogram,
    /// Per-bucket exemplar trace ids for `ingest_wait_nanos`, slowest
    /// bucket first.
    pub ingest_wait_exemplars: Vec<WaitExemplar>,
}

impl NetStatsSnapshot {
    /// Total reports shed, across all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full
            + self.shed_deadline_exceeded
            + self.shed_session_quota
            + self.shed_engine_degraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_reason_codes_round_trip() {
        for reason in ShedReason::ALL {
            assert_eq!(ShedReason::from_code(reason.code()), Some(reason));
        }
        assert_eq!(ShedReason::from_code(4), None);
        assert_eq!(ShedReason::from_code(255), None);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = ShedReason::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn record_shed_routes_to_the_right_counter() {
        let stats = NetStats::default();
        stats.record_shed(ShedReason::QueueFull);
        stats.record_shed(ShedReason::QueueFull);
        stats.record_shed(ShedReason::EngineDegraded);
        let snap = stats.snapshot();
        assert_eq!(snap.shed_queue_full, 2);
        assert_eq!(snap.shed_engine_degraded, 1);
        assert_eq!(snap.shed_deadline_exceeded, 0);
        assert_eq!(snap.shed_session_quota, 0);
        assert_eq!(snap.shed_total(), 3);
    }

    #[test]
    fn exemplars_keep_the_slowest_per_bucket() {
        let stats = NetStats::default();
        // Untraced waits never become exemplars.
        stats.record_exemplar(1_000, 0);
        assert_eq!(stats.snapshot().exemplars, 0);
        // 1_000 and 1_010 share a bucket: the slower wait wins it.
        stats.record_exemplar(1_010, 0xB);
        stats.record_exemplar(1_000, 0xA);
        stats.record_exemplar(1_000_000, 0xC);
        let snap = stats.snapshot();
        assert_eq!(snap.exemplars, 2);
        assert_eq!(snap.ingest_wait_exemplars.len(), 2);
        // Slowest bucket first, and the shared bucket kept trace 0xB.
        assert_eq!(snap.ingest_wait_exemplars[0].trace, 0xC);
        assert_eq!(snap.ingest_wait_exemplars[1].trace, 0xB);
        assert_eq!(snap.ingest_wait_exemplars[1].wait_nanos, 1_010);
    }

    #[test]
    fn snapshot_copies_gauges_and_histogram() {
        let stats = NetStats::default();
        stats.queue_depth.store(7, Ordering::Relaxed);
        stats.degraded.store(true, Ordering::Relaxed);
        stats.ingest_wait_nanos.record(1_500);
        let snap = stats.snapshot();
        assert_eq!(snap.queue_depth, 7);
        assert!(snap.degraded);
        assert_eq!(snap.ingest_wait_nanos.count(), 1);
    }
}
