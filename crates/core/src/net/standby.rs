//! Level-2 recovery: the warm standby.
//!
//! A [`StandbyServer`] is a second process kept hot behind a primary
//! `ctup serve`. It bootstraps by subscribing to the primary's
//! replication stream (an all-zero `CheckpointOffer` as its first frame),
//! restores the shipped checkpoint into a live monitor, then **follows**:
//! every `WalAppend` the primary's pump hands its engine is applied
//! through the standby's own ingest gate (whose replayed dedup state
//! makes the journal-tail/live-stream overlap exactly-once), so the
//! standby's top-k trails the primary by one network hop.
//!
//! **Promotion.** The standby probes the primary's liveness on a timer
//! (a `PromoteQuery` dial — the probe exercises the real serve loop, not
//! a sidecar). After [`StandbyConfig::probe_failures`] consecutive silent
//! probes it runs one final *fencing* probe; only silence there lets it
//! promote. Promotion bumps the fencing epoch to `primary_epoch + 1`,
//! resumes a supervised pipeline from the live monitor state, and spawns
//! a full [`IngestServer`] on [`StandbyConfig::serve_addr`] — serving at
//! the new epoch, with session ids minted from an epoch-fenced base so
//! they can never collide with ids the old primary handed out. A
//! partitioned old primary that comes back finds its stale (lower-epoch)
//! WAL appends rejected and counted in
//! [`StandbyStatus::stale_rejected`] — there is never a moment with two
//! primaries at the same epoch.

use super::server::{EngineSink, IngestServer, NetServerConfig, PipelineSink};
use super::wire::{ByeReason, FrameDecoder, FrameWriter, Message};
use crate::checkpoint::{Checkpoint, Checkpointable};
use crate::ingest::{IngestConfig, IngestGate, StampedUpdate};
use crate::metrics::ResilienceStats;
use crate::supervisor::{ResilienceConfig, SupervisedPipeline};
use crate::types::{LocationUpdate, TopKEntry, UnitId};
use ctup_obs::{now_nanos, SpanSink, Stage};
use ctup_spatial::Point;
use ctup_storage::PlaceStore;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything a standby needs to follow one primary and take over.
#[derive(Debug, Clone)]
pub struct StandbyConfig {
    /// The primary's ingest address (replication rides the same port).
    pub primary_ingest: SocketAddr,
    /// Address the promoted server binds (e.g. `127.0.0.1:0`).
    pub serve_addr: String,
    /// Front-door configuration of the promoted server; its `epoch`,
    /// `session.first_session_id` and `state_dir` are overwritten at
    /// promotion time.
    pub net: NetServerConfig,
    /// Supervision of the promoted engine; point its `state_dir` at the
    /// standby's own durable directory.
    pub resilience: ResilienceConfig,
    /// Channel capacity of the promoted pipeline.
    pub capacity: usize,
    /// Socket connect timeout for every dial.
    pub connect_timeout: Duration,
    /// Read/write tick on the replication connection.
    pub io_tick: Duration,
    /// How long a full checkpoint sync may take before it is retried.
    pub sync_deadline: Duration,
    /// Cadence of primary liveness probes while following.
    pub probe_interval: Duration,
    /// Consecutive silent probes before promotion is attempted.
    pub probe_failures: u32,
    /// Pause between failed sync attempts.
    pub resync_delay: Duration,
}

impl Default for StandbyConfig {
    fn default() -> Self {
        StandbyConfig {
            primary_ingest: SocketAddr::from(([127, 0, 0, 1], 0)),
            serve_addr: "127.0.0.1:0".to_string(),
            net: NetServerConfig::default(),
            resilience: ResilienceConfig::default(),
            capacity: 1024,
            connect_timeout: Duration::from_millis(500),
            io_tick: Duration::from_millis(25),
            sync_deadline: Duration::from_secs(10),
            probe_interval: Duration::from_millis(250),
            probe_failures: 3,
            resync_delay: Duration::from_millis(100),
        }
    }
}

/// Where the standby is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StandbyPhase {
    /// Dialing the primary / receiving the checkpoint.
    Syncing,
    /// Checkpoint restored; applying the live WAL stream.
    Following,
    /// Probes went dark; running the fencing protocol.
    Promoting,
    /// This standby is now the primary (serving at a bumped epoch).
    Promoted,
    /// Unrecoverable local failure (restore error, storage error).
    Failed(String),
}

/// A point-in-time view of the standby.
#[derive(Debug, Clone)]
pub struct StandbyStatus {
    /// Current lifecycle phase.
    pub phase: StandbyPhase,
    /// The fencing epoch: the primary's while following, the bumped one
    /// once promoted.
    pub epoch: u64,
    /// WAL appends applied through the standby's gate.
    pub wal_applied: u64,
    /// Replication frames rejected for carrying a stale epoch.
    pub stale_rejected: u64,
}

struct StandbyShared {
    stop: AtomicBool,
    status: Mutex<StandbyStatus>,
    topk: Mutex<Vec<TopKEntry>>,
    promoted: Mutex<Option<IngestServer>>,
}

impl StandbyShared {
    fn lock_status(&self) -> std::sync::MutexGuard<'_, StandbyStatus> {
        match self.status.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn set_phase(&self, phase: StandbyPhase) {
        self.lock_status().phase = phase;
    }

    fn set_topk(&self, entries: Vec<TopKEntry>) {
        let mut guard = match self.topk.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = entries;
    }
}

/// A running warm standby. Dropping it (or calling
/// [`StandbyServer::shutdown`]) stops the follower thread and, if
/// promotion happened, the promoted front door.
pub struct StandbyServer {
    shared: Arc<StandbyShared>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for StandbyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StandbyServer").finish_non_exhaustive()
    }
}

impl StandbyServer {
    /// Starts following the primary in `config`. `store` is the local
    /// lower level the restored monitor (and, after promotion, the
    /// promoted engine) runs over.
    pub fn spawn<A>(config: StandbyConfig, store: Arc<dyn PlaceStore>) -> StandbyServer
    where
        A: Checkpointable + Send + 'static,
    {
        let shared = Arc::new(StandbyShared {
            stop: AtomicBool::new(false),
            status: Mutex::new(StandbyStatus {
                phase: StandbyPhase::Syncing,
                epoch: 0,
                wal_applied: 0,
                stale_rejected: 0,
            }),
            topk: Mutex::new(Vec::new()),
            promoted: Mutex::new(None),
        });
        let for_thread = Arc::clone(&shared);
        // The handle is joined in `stop_thread` (shutdown / Drop).
        let thread = std::thread::Builder::new()
            .name("ctup-standby".to_string())
            .spawn(move || standby_loop::<A>(&config, &store, &for_thread))
            .ok();
        StandbyServer { shared, thread }
    }

    /// The standby's current status.
    pub fn status(&self) -> StandbyStatus {
        self.shared.lock_status().clone()
    }

    /// The read-only top-k the standby is tracking (or, once promoted,
    /// last published before promotion; query the promoted server after).
    pub fn topk(&self) -> Vec<TopKEntry> {
        match self.shared.topk.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// The promoted front door's address, once promotion happened.
    pub fn promoted_addr(&self) -> Option<SocketAddr> {
        let guard = match self.shared.promoted.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.as_ref().map(|s| s.local_addr())
    }

    /// The promoted front door's `/healthz` body, once promoted.
    pub fn promoted_health(&self) -> Option<String> {
        let guard = match self.shared.promoted.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.as_ref().map(|s| s.health_body())
    }

    /// A snapshot of the promoted front door's counters, once promoted
    /// (for publishing the promoted server's metrics from the standby
    /// process).
    pub fn promoted_net_snapshot(&self) -> Option<super::stats::NetStatsSnapshot> {
        let guard = match self.shared.promoted.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.as_ref().map(|s| s.stats().snapshot())
    }

    /// The promoted front door's last-good top-k, once promoted.
    pub fn promoted_topk(&self) -> Option<Vec<TopKEntry>> {
        let guard = match self.shared.promoted.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.as_ref().map(|s| s.last_good_topk())
    }

    /// Stops the follower thread and the promoted server (if any).
    pub fn shutdown(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
        let promoted = {
            let mut guard = match self.shared.promoted.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.take()
        };
        drop(promoted); // IngestServer::drop joins its threads
    }
}

impl Drop for StandbyServer {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

/// Outcome of one sync-and-follow pass.
enum FollowEnd {
    /// Stop flag observed.
    Stopping,
    /// The connection died or the sync failed; retry after the delay.
    Retry,
    /// Probes (and the fencing probe) went dark; we promoted.
    Promoted,
    /// Local unrecoverable failure.
    Failed(String),
}

fn standby_loop<A>(config: &StandbyConfig, store: &Arc<dyn PlaceStore>, shared: &StandbyShared)
where
    A: Checkpointable + Send + 'static,
{
    while !shared.stop.load(Ordering::SeqCst) {
        shared.set_phase(StandbyPhase::Syncing);
        match sync_and_follow::<A>(config, store, shared) {
            FollowEnd::Stopping | FollowEnd::Promoted => return,
            FollowEnd::Failed(why) => {
                shared.set_phase(StandbyPhase::Failed(why));
                return;
            }
            FollowEnd::Retry => {
                std::thread::sleep(config.resync_delay);
            }
        }
    }
}

fn sync_and_follow<A>(
    config: &StandbyConfig,
    store: &Arc<dyn PlaceStore>,
    shared: &StandbyShared,
) -> FollowEnd
where
    A: Checkpointable + Send + 'static,
{
    // --- Sync: subscribe, receive the checkpoint, restore. ---
    let Ok(mut stream) = dial(config.primary_ingest, config) else {
        // Could not even dial for sync; without a restored monitor there
        // is nothing to promote, so all we can do is retry.
        return FollowEnd::Retry;
    };
    let mut decoder = FrameDecoder::new();
    let mut writer = FrameWriter::new();
    writer.push(&Message::CheckpointOffer {
        epoch: 0,
        slot_seq: 0,
        total_len: 0,
    });
    if !flush_all(&mut writer, &mut stream, config.sync_deadline) {
        return FollowEnd::Retry;
    }
    let sync_deadline = Instant::now() + config.sync_deadline;
    let mut primary_epoch: u64 = 0;
    let mut total_len: Option<u64> = None;
    let mut body: Vec<u8> = Vec::new();
    let checkpoint = loop {
        if shared.stop.load(Ordering::SeqCst) {
            return FollowEnd::Stopping;
        }
        if Instant::now() > sync_deadline {
            return FollowEnd::Retry;
        }
        match decoder.read_from(&mut stream) {
            Ok(Message::CheckpointOffer {
                epoch,
                total_len: n,
                ..
            }) => {
                primary_epoch = epoch;
                total_len = Some(n);
                body = Vec::with_capacity(usize::try_from(n).unwrap_or(0));
                if n == 0 {
                    break Checkpoint::read(body.as_slice());
                }
            }
            Ok(Message::CheckpointChunk { offset, data, .. }) => {
                let Some(expect) = total_len else {
                    return FollowEnd::Retry; // chunk before offer
                };
                if offset != u64::try_from(body.len()).unwrap_or(u64::MAX) {
                    return FollowEnd::Retry; // hole in the stream
                }
                body.extend_from_slice(&data);
                if u64::try_from(body.len()).unwrap_or(u64::MAX) >= expect {
                    break Checkpoint::read(body.as_slice());
                }
            }
            Ok(Message::WalAppend { .. }) => {
                // Journal tail before the checkpoint finished: impossible
                // in a well-formed stream (the server ships the chunks
                // first), treat as a resync condition.
                return FollowEnd::Retry;
            }
            Ok(Message::Bye { .. }) => return FollowEnd::Retry,
            Ok(_) => return FollowEnd::Retry,
            Err(e) if e.is_timeout() => continue,
            Err(_) => return FollowEnd::Retry,
        }
    };
    let checkpoint = match checkpoint {
        Ok(cp) => cp,
        Err(e) => return FollowEnd::Failed(format!("shipped checkpoint unreadable: {e:?}")),
    };
    let gate_config = IngestConfig {
        space: *store.grid().space(),
        num_units: checkpoint.unit_positions.len(),
        lease_ttl: config.resilience.lease_ttl,
    };
    let mut gate = match checkpoint.gate.clone() {
        Some(state) if state.units.len() == gate_config.num_units => {
            IngestGate::from_state(gate_config, state)
        }
        _ => IngestGate::new(gate_config),
    };
    let mut alg = match A::restore(checkpoint, Arc::clone(store)) {
        Ok(alg) => alg,
        Err(e) => return FollowEnd::Failed(format!("checkpoint restore failed: {e:?}")),
    };
    {
        let mut status = shared.lock_status();
        status.phase = StandbyPhase::Following;
        status.epoch = primary_epoch;
    }
    shared.set_topk(alg.result());
    let mut rstats = ResilienceStats::default();

    // --- Follow: apply the WAL stream, probe the primary on a timer. ---
    let mut last_probe = Instant::now();
    let mut silent_probes: u32 = 0;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            let _ = send_bye(&mut stream, ByeReason::Shutdown);
            return FollowEnd::Stopping;
        }
        match decoder.read_from(&mut stream) {
            Ok(msg @ Message::WalAppend { .. }) => {
                if let Err(why) = apply_wal(
                    &msg,
                    primary_epoch,
                    &mut gate,
                    &mut alg,
                    &mut rstats,
                    shared,
                    config.resilience.spans.as_deref(),
                ) {
                    return FollowEnd::Failed(why);
                }
                shared.set_topk(alg.result());
            }
            Ok(Message::Bye { .. }) => {
                // The primary said goodbye (shutdown or eviction): decide
                // between resync and promotion by probing.
                return follow_lost::<A>(config, shared, primary_epoch, gate, alg);
            }
            Ok(_) => {
                // Nothing else belongs on a replication stream.
                return FollowEnd::Retry;
            }
            Err(e) if e.is_timeout() => {}
            Err(_) => {
                return follow_lost::<A>(config, shared, primary_epoch, gate, alg);
            }
        }
        if last_probe.elapsed() >= config.probe_interval {
            last_probe = Instant::now();
            if probe_primary(config) {
                silent_probes = 0;
            } else {
                silent_probes += 1;
                if silent_probes >= config.probe_failures.max(1) {
                    return promote::<A>(config, shared, primary_epoch, gate, alg);
                }
            }
        }
    }
}

/// The replication connection died. One probe decides: a live primary
/// means resync, a silent one starts the promotion ladder immediately
/// (connection loss already counts as evidence).
fn follow_lost<A>(
    config: &StandbyConfig,
    shared: &StandbyShared,
    primary_epoch: u64,
    gate: IngestGate,
    alg: A,
) -> FollowEnd
where
    A: Checkpointable + Send + 'static,
{
    let mut silent = 0;
    for _ in 0..config.probe_failures.max(1) {
        if shared.stop.load(Ordering::SeqCst) {
            return FollowEnd::Stopping;
        }
        if probe_primary(config) {
            return FollowEnd::Retry;
        }
        silent += 1;
        std::thread::sleep(config.probe_interval);
    }
    if silent >= config.probe_failures.max(1) {
        return promote::<A>(config, shared, primary_epoch, gate, alg);
    }
    FollowEnd::Retry
}

/// Applies one WAL frame through the standby's gate. Stale-epoch frames
/// are rejected and counted; gate rejections (duplicates from the
/// journal-tail overlap) are silently dropped — that is the dedup
/// working.
fn apply_wal<A>(
    msg: &Message,
    expected_epoch: u64,
    gate: &mut IngestGate,
    alg: &mut A,
    rstats: &mut ResilienceStats,
    shared: &StandbyShared,
    spans: Option<&SpanSink>,
) -> Result<(), String>
where
    A: Checkpointable,
{
    let Message::WalAppend {
        epoch,
        unit_seq,
        ts,
        unit,
        x,
        y,
        trace,
    } = msg
    else {
        return Ok(());
    };
    if *epoch != expected_epoch {
        let mut status = shared.lock_status();
        status.stale_rejected += 1;
        return Ok(());
    }
    let stamped = StampedUpdate {
        seq: *unit_seq,
        ts: *ts,
        update: LocationUpdate {
            unit: UnitId(*unit),
            new: Point::new(*x, *y),
        },
    };
    let apply_start = if *trace != 0 { now_nanos() } else { 0 };
    match gate.admit(stamped, rstats) {
        Ok(effective) => {
            for update in effective {
                if let Err(e) = alg.handle_update(update) {
                    return Err(format!("storage error while following: {e:?}"));
                }
            }
            let mut status = shared.lock_status();
            status.wal_applied += 1;
            drop(status);
            // The standby-apply span parents onto the wal-append span the
            // primary recorded for this report — in a single dump that
            // stitches the replication hop into the causal chain; across
            // two processes each dump holds its half of the trace.
            if let Some(sink) = spans {
                sink.record_stage(
                    *trace,
                    Stage::StandbyApply,
                    0,
                    apply_start,
                    now_nanos(),
                    true,
                );
            }
        }
        Err(_) => {
            // Duplicate/stale per the gate: the journal-tail overlap or a
            // primary retransmit. Exactly-once is preserved by dropping.
        }
    }
    Ok(())
}

/// The promotion ladder: one final fencing probe, then epoch bump, engine
/// resume, and front-door spawn. The fencing probe is what makes
/// promotion single-writer: a primary that answers it is alive, so the
/// standby aborts and resyncs instead of forking the world.
fn promote<A>(
    config: &StandbyConfig,
    shared: &StandbyShared,
    primary_epoch: u64,
    gate: IngestGate,
    alg: A,
) -> FollowEnd
where
    A: Checkpointable + Send + 'static,
{
    shared.set_phase(StandbyPhase::Promoting);
    if probe_primary(config) {
        // Fencing probe answered: the primary lives. Never promote.
        return FollowEnd::Retry;
    }
    let new_epoch = primary_epoch.saturating_add(1);
    let mut checkpoint = alg.checkpoint();
    checkpoint.gate = Some(gate.state());
    let store = alg.store();
    let topk = alg.result();
    drop(alg);
    let pipeline = match SupervisedPipeline::resume::<A>(
        checkpoint,
        store,
        config.resilience.clone(),
        config.capacity,
    ) {
        Ok(p) => p,
        Err(e) => return FollowEnd::Failed(format!("promotion resume failed: {e:?}")),
    };
    let sink: Arc<dyn EngineSink> = Arc::new(PipelineSink::new(pipeline, topk));
    let mut net = config.net.clone();
    net.epoch = new_epoch;
    // Fence fresh session ids far above anything the old primary minted,
    // so a client resuming an old session can never capture a new one.
    net.session.first_session_id = (new_epoch << 32) | 1;
    net.state_dir = config.resilience.state_dir.clone();
    // A failover is exactly when operators need traces: if tracing is
    // wired at all, the promoted front door samples every report until a
    // human dials it back.
    if net.spans.is_some() {
        net.trace_sample_every = 1;
    }
    let server = match IngestServer::spawn(&config.serve_addr, net, sink) {
        Ok(s) => s,
        Err(e) => return FollowEnd::Failed(format!("promoted bind failed: {e}")),
    };
    server.stats().failovers.fetch_add(1, Ordering::Relaxed);
    {
        let mut guard = match shared.promoted.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = Some(server);
    }
    {
        let mut status = shared.lock_status();
        status.phase = StandbyPhase::Promoted;
        status.epoch = new_epoch;
    }
    FollowEnd::Promoted
}

fn dial(addr: SocketAddr, config: &StandbyConfig) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
    stream.set_read_timeout(Some(config.io_tick))?;
    stream.set_write_timeout(Some(config.io_tick))?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// One liveness probe: dial, send `PromoteQuery`, wait briefly for the
/// epoch echo. `true` means the primary answered (it is alive).
fn probe_primary(config: &StandbyConfig) -> bool {
    let Ok(mut stream) = dial(config.primary_ingest, config) else {
        return false;
    };
    let mut writer = FrameWriter::new();
    writer.push(&Message::PromoteQuery { epoch: 0 });
    if !flush_all(&mut writer, &mut stream, config.probe_interval) {
        return false;
    }
    let mut decoder = FrameDecoder::new();
    let deadline = Instant::now() + config.probe_interval.max(Duration::from_millis(50));
    loop {
        if Instant::now() > deadline {
            return false;
        }
        match decoder.read_from(&mut stream) {
            Ok(Message::PromoteQuery { .. }) => return true,
            Ok(_) => return true, // it spoke; it lives
            Err(e) if e.is_timeout() => continue,
            Err(_) => return false,
        }
    }
}

fn flush_all(writer: &mut FrameWriter, stream: &mut TcpStream, budget: Duration) -> bool {
    let deadline = Instant::now() + budget;
    while writer.pending() > 0 {
        if Instant::now() > deadline {
            return false;
        }
        match writer.flush_into(stream) {
            Ok(true) => return true,
            Ok(false) => std::thread::sleep(Duration::from_millis(1)),
            Err(_) => return false,
        }
    }
    true
}

fn send_bye(stream: &mut TcpStream, reason: ByeReason) -> bool {
    let mut writer = FrameWriter::new();
    writer.push(&Message::Bye { reason });
    flush_all(&mut writer, stream, Duration::from_millis(100))
}
