//! Level-1 recovery: circuit-broken in-process engine revival.
//!
//! When the drain pump observes [`SinkError::Dead`](super::server::SinkError),
//! it no longer has to park the server in sticky degraded mode: a
//! [`RecoveryPlan`] gives it a way to rebuild the engine in process — the
//! [`EngineReviver`] runs the durable restart path
//! ([`SupervisedPipeline::recover_from_dir`](crate::supervisor::SupervisedPipeline::recover_from_dir)
//! behind a fresh [`PipelineSink`](super::server::PipelineSink)) and the pump
//! swaps the new sink in, re-feeds its unacked in-flight tail (the ingest
//! gate's replayed dedup state keeps that exactly-once), and exits degraded
//! mode on its own.
//!
//! Revival is bounded by a [`CircuitBreaker`]: at most
//! [`RecoveryConfig::max_restarts`] attempts per sliding
//! [`RecoveryConfig::window`], each preceded by an exponentially growing,
//! deterministically jittered backoff. A crash storm that exhausts the
//! budget trips the breaker permanently and the server degrades exactly the
//! way it did before this module existed — shedding with
//! `EngineDegraded` while the last-good top-k keeps being served — so the
//! worst case of self-healing is the old behavior, never a restart loop
//! that burns the host.

use super::server::EngineSink;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounds and pacing of in-process engine revival.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Revival attempts allowed per sliding [`window`](Self::window);
    /// exceeding it trips the breaker permanently (sticky degraded mode).
    pub max_restarts: u32,
    /// Width of the sliding attempt window.
    pub window: Duration,
    /// Backoff before the first attempt of an episode; doubles per attempt.
    pub backoff_base: Duration,
    /// Ceiling on the (pre-jitter) backoff.
    pub backoff_max: Duration,
    /// Seed of the jitter generator; a fixed seed fixes the schedule, so
    /// chaos tests replay the exact same revival timeline every run.
    pub seed: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_restarts: 3,
            window: Duration::from_secs(60),
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            seed: 0xc1c1_b0b0,
        }
    }
}

/// Rebuilds a dead engine. The pump calls this from its own thread, so a
/// revival may take as long as a durable recovery takes — the front door
/// keeps shedding honestly (degraded mode is already set) while it runs.
pub trait EngineReviver: Send + Sync {
    /// Produces a fresh, live sink, typically by
    /// [`recover_from_dir`](crate::supervisor::SupervisedPipeline::recover_from_dir)
    /// from the durable slot + journal the dead engine left behind.
    /// The error string is diagnostic only; the breaker decides retries.
    fn revive(&self) -> Result<Arc<dyn EngineSink>, String>;
}

impl std::fmt::Debug for dyn EngineReviver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EngineReviver")
    }
}

/// Everything the pump needs to self-heal: the reviver plus its bounds.
#[derive(Clone)]
pub struct RecoveryPlan {
    /// Rebuilds the engine after a death.
    pub reviver: Arc<dyn EngineReviver>,
    /// Attempt budget and backoff pacing.
    pub config: RecoveryConfig,
}

impl std::fmt::Debug for RecoveryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryPlan")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Sliding-window circuit breaker with jittered exponential backoff.
///
/// Usage per revival attempt: [`before_attempt`](Self::before_attempt)
/// returns the backoff to sleep (or `None` once tripped), then
/// [`record_attempt`](Self::record_attempt) charges the attempt to the
/// window. The breaker never un-trips: a storm that exhausts the budget is
/// an operator problem, and flapping in and out of revival would only hide
/// it.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: RecoveryConfig,
    attempts: VecDeque<Instant>,
    tripped: bool,
    rng: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the full budget available.
    pub fn new(config: RecoveryConfig) -> Self {
        let rng = config.seed | 1;
        CircuitBreaker {
            config,
            attempts: VecDeque::new(),
            tripped: false,
            rng,
        }
    }

    /// Whether the breaker has tripped (revival is over for good).
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Revival attempts currently charged to the sliding window.
    pub fn attempts_in_window(&self, now: Instant) -> usize {
        let window = self.config.window;
        self.attempts
            .iter()
            .filter(|&&at| now.saturating_duration_since(at) < window)
            .count()
    }

    /// Gate for the next attempt: `Some(backoff)` to proceed after that
    /// sleep, `None` if the budget is exhausted (trips the breaker).
    pub fn before_attempt(&mut self, now: Instant) -> Option<Duration> {
        if self.tripped {
            return None;
        }
        let window = self.config.window;
        while self
            .attempts
            .front()
            .is_some_and(|&at| now.saturating_duration_since(at) >= window)
        {
            self.attempts.pop_front();
        }
        let used = u32::try_from(self.attempts.len()).unwrap_or(u32::MAX);
        if used >= self.config.max_restarts {
            self.tripped = true;
            return None;
        }
        Some(self.backoff(used))
    }

    /// Charges one attempt to the window (call when the attempt starts).
    pub fn record_attempt(&mut self, now: Instant) {
        self.attempts.push_back(now);
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// `base * 2^used` capped at `backoff_max`, then jittered into
    /// `[delay/2, delay]` — the same seeded half-jitter the feed client
    /// uses, so two revivers with different seeds never thundering-herd a
    /// shared disk.
    fn backoff(&mut self, used: u32) -> Duration {
        let base_ms = u64::try_from(self.config.backoff_base.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let max_ms = u64::try_from(self.config.backoff_max.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let raw = base_ms.saturating_mul(1_u64 << used.min(16)).min(max_ms);
        let half = raw / 2;
        let jitter = if half == 0 {
            0
        } else {
            self.xorshift() % (half + 1)
        };
        Duration::from_millis(half + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(max_restarts: u32, window_ms: u64) -> RecoveryConfig {
        RecoveryConfig {
            max_restarts,
            window: Duration::from_millis(window_ms),
            backoff_base: Duration::from_millis(8),
            backoff_max: Duration::from_millis(64),
            seed: 7,
        }
    }

    #[test]
    fn breaker_trips_after_budget_and_stays_tripped() {
        let mut b = CircuitBreaker::new(config(3, 60_000));
        let now = Instant::now();
        for _ in 0..3 {
            assert!(b.before_attempt(now).is_some());
            b.record_attempt(now);
        }
        assert!(b.before_attempt(now).is_none());
        assert!(b.tripped());
        // Even a would-be-fresh window cannot un-trip it.
        assert!(b.before_attempt(now + Duration::from_secs(120)).is_none());
    }

    #[test]
    fn window_expiry_refunds_attempts_before_tripping() {
        let mut b = CircuitBreaker::new(config(2, 50));
        let t0 = Instant::now();
        b.record_attempt(t0);
        b.record_attempt(t0);
        // Budget spent right now…
        assert_eq!(b.attempts_in_window(t0), 2);
        // …but once the window slides past them the budget is back.
        let later = t0 + Duration::from_millis(60);
        assert!(b.before_attempt(later).is_some());
        assert!(!b.tripped());
    }

    #[test]
    fn backoff_grows_and_respects_the_cap() {
        let mut b = CircuitBreaker::new(config(8, 60_000));
        let now = Instant::now();
        let mut delays = Vec::new();
        for _ in 0..6 {
            let d = b.before_attempt(now).map(|d| d.as_millis()).unwrap_or(0);
            delays.push(d);
            b.record_attempt(now);
        }
        // Jitter keeps each delay in [raw/2, raw]; raw doubles 8,16,32,
        // then caps at 64.
        assert!(delays[0] >= 4 && delays[0] <= 8, "got {delays:?}");
        assert!(delays[2] >= 16 && delays[2] <= 32, "got {delays:?}");
        assert!(delays[4] >= 32 && delays[4] <= 64, "got {delays:?}");
        assert!(delays[5] >= 32 && delays[5] <= 64, "got {delays:?}");
    }

    #[test]
    fn fixed_seed_fixes_the_jitter_schedule() {
        let run = || {
            let mut b = CircuitBreaker::new(config(5, 60_000));
            let now = Instant::now();
            let mut out = Vec::new();
            for _ in 0..5 {
                out.push(b.before_attempt(now));
                b.record_attempt(now);
            }
            out
        };
        assert_eq!(run(), run());
    }
}
