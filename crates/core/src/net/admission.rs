//! The bounded admission queue between the network and the engine.
//!
//! Connection handlers enqueue validated, deduplicated reports; a single
//! drain pump pops them and feeds the supervised pipeline. The queue is
//! the only elastic buffer in the front door, and it is deliberately
//! *small and honest*: when the engine cannot keep up, reports are shed
//! with a typed reason instead of queueing without bound.
//!
//! Shedding is hysteretic. Crossing the **high watermark** trips the
//! queue into shed state; it stays shedding until depth falls back to the
//! **low watermark**. Without the hysteresis band an overloaded server
//! would oscillate at the boundary, alternately accepting and refusing
//! neighbouring reports from the same batch — the band converts that
//! flapping into one clean shed interval per overload episode.
//!
//! Every queued report carries its arrival instant; the pump sheds
//! reports older than the ingest deadline (`DeadlineExceeded`) rather
//! than feeding the engine positions so stale the next genuine report
//! would immediately overwrite them.

use super::stats::{NetStats, ShedReason};
use crate::ingest::StampedUpdate;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Sizing and policy of the admission queue.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Hard bound on queued reports; enqueue beyond it always sheds.
    pub queue_capacity: usize,
    /// Depth at which the queue trips into shed state.
    pub high_watermark: usize,
    /// Depth at which a shedding queue resumes accepting.
    pub low_watermark: usize,
    /// Maximum time a report may wait before the pump sheds it.
    pub ingest_deadline: Duration,
    /// How long the watchdog tolerates a backlogged queue making no drain
    /// progress before tripping degraded mode.
    pub stall_grace: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 4096,
            high_watermark: 3072,
            low_watermark: 1024,
            ingest_deadline: Duration::from_secs(2),
            stall_grace: Duration::from_secs(1),
        }
    }
}

impl AdmissionConfig {
    /// Clamps the watermarks into a consistent order:
    /// `low <= high <= capacity`, capacity at least 1.
    pub fn normalized(mut self) -> Self {
        self.queue_capacity = self.queue_capacity.max(1);
        self.high_watermark = self.high_watermark.clamp(1, self.queue_capacity);
        self.low_watermark = self
            .low_watermark
            .min(self.high_watermark.saturating_sub(1));
        self
    }
}

/// One report waiting for the engine, stamped with its session identity
/// and arrival time.
#[derive(Debug, Clone)]
pub struct QueuedReport {
    /// Owning session.
    pub session: u64,
    /// Wire sequence number within the session.
    pub seq: u64,
    /// The validated report to feed the ingest gate.
    pub report: StampedUpdate,
    /// When the report entered the queue.
    pub enqueued_at: Instant,
    /// Causal trace id riding the report (0 = untraced). Carried so the
    /// pump can stamp the queue-wait span and hand the id to the engine.
    pub trace: u64,
    /// Span-clock stamp ([`ctup_obs::now_nanos`]) of queue entry; pairs
    /// with the pump's hand-off stamp to bound the queue-wait span. Zero
    /// when the report is untraced.
    pub enqueued_nanos: u64,
}

/// The bounded, watermarked admission queue.
#[derive(Debug)]
pub struct AdmissionQueue {
    config: AdmissionConfig,
    items: Mutex<VecDeque<QueuedReport>>,
    available: Condvar,
    shedding: AtomicBool,
    stats: Arc<NetStats>,
}

impl AdmissionQueue {
    /// An empty queue with `config` (normalized).
    pub fn new(config: AdmissionConfig, stats: Arc<NetStats>) -> Self {
        AdmissionQueue {
            config: config.normalized(),
            items: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shedding: AtomicBool::new(false),
            stats,
        }
    }

    /// The queue's (normalized) configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<QueuedReport>> {
        match self.items.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn publish_depth(&self, depth: usize) {
        self.stats
            .queue_depth
            .store(ctup_spatial::convert::count64(depth), Ordering::Relaxed);
    }

    /// Admits a report or sheds it with [`ShedReason::QueueFull`],
    /// applying the watermark hysteresis.
    pub fn try_enqueue(&self, item: QueuedReport) -> Result<(), ShedReason> {
        let mut items = self.lock();
        let depth = items.len();
        if depth >= self.config.queue_capacity {
            // ctup-lint: allow(L008, shedding is only written under the items mutex; the unlock publishes it)
            self.shedding.store(true, Ordering::Relaxed);
            return Err(ShedReason::QueueFull);
        }
        // ctup-lint: allow(L008, read under the items mutex, so this sees every write made by prior admits)
        if self.shedding.load(Ordering::Relaxed) {
            if depth > self.config.low_watermark {
                return Err(ShedReason::QueueFull);
            }
            // ctup-lint: allow(L008, shedding is only written under the items mutex; the unlock publishes it)
            self.shedding.store(false, Ordering::Relaxed);
        } else if depth >= self.config.high_watermark {
            // ctup-lint: allow(L008, shedding is only written under the items mutex; the unlock publishes it)
            self.shedding.store(true, Ordering::Relaxed);
            return Err(ShedReason::QueueFull);
        }
        items.push_back(item);
        self.publish_depth(items.len());
        drop(items);
        self.available.notify_one();
        Ok(())
    }

    /// Pops the oldest report, waiting up to `timeout` for one to arrive.
    pub fn pop(&self, timeout: Duration) -> Option<QueuedReport> {
        let mut items = self.lock();
        if items.is_empty() {
            let (guard, _) = match self.available.wait_timeout(items, timeout) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            items = guard;
        }
        let item = items.pop_front();
        self.publish_depth(items.len());
        item
    }

    /// Reports currently queued.
    pub fn depth(&self) -> usize {
        self.lock().len()
    }

    /// Whether the hysteresis is currently in the shed state.
    pub fn is_shedding(&self) -> bool {
        // ctup-lint: allow(L008, advisory lock-free peek for metrics; admits re-check under the mutex)
        self.shedding.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{LocationUpdate, UnitId};
    use ctup_spatial::Point;

    fn item(seq: u64) -> QueuedReport {
        QueuedReport {
            session: 1,
            seq,
            report: StampedUpdate {
                seq,
                ts: 0,
                update: LocationUpdate {
                    unit: UnitId(0),
                    new: Point::new(0.5, 0.5),
                },
            },
            enqueued_at: Instant::now(),
            trace: 0,
            enqueued_nanos: 0,
        }
    }

    fn queue(capacity: usize, high: usize, low: usize) -> AdmissionQueue {
        AdmissionQueue::new(
            AdmissionConfig {
                queue_capacity: capacity,
                high_watermark: high,
                low_watermark: low,
                ..AdmissionConfig::default()
            },
            Arc::new(NetStats::default()),
        )
    }

    #[test]
    fn normalization_orders_the_watermarks() {
        let cfg = AdmissionConfig {
            queue_capacity: 10,
            high_watermark: 50,
            low_watermark: 50,
            ..AdmissionConfig::default()
        }
        .normalized();
        assert_eq!(cfg.high_watermark, 10);
        assert_eq!(cfg.low_watermark, 9);
    }

    #[test]
    fn sheds_at_high_watermark_until_drained_to_low() {
        let q = queue(100, 4, 1);
        for seq in 0..4 {
            q.try_enqueue(item(seq)).expect("below high watermark");
        }
        // Depth 4 == high: trips shedding.
        assert_eq!(q.try_enqueue(item(4)), Err(ShedReason::QueueFull));
        assert!(q.is_shedding());
        // Draining to 2 (> low) still sheds; at low (1) it reopens.
        q.pop(Duration::from_millis(1)).expect("pop");
        q.pop(Duration::from_millis(1)).expect("pop");
        assert_eq!(q.try_enqueue(item(5)), Err(ShedReason::QueueFull));
        q.pop(Duration::from_millis(1)).expect("pop");
        assert_eq!(q.depth(), 1);
        q.try_enqueue(item(6)).expect("reopened at low watermark");
        assert!(!q.is_shedding());
    }

    #[test]
    fn hard_capacity_always_sheds() {
        let q = queue(2, 2, 0);
        q.try_enqueue(item(0)).expect("first");
        q.try_enqueue(item(1)).expect("second");
        assert_eq!(q.try_enqueue(item(2)), Err(ShedReason::QueueFull));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn pop_wakes_on_enqueue_and_preserves_fifo() {
        let q = Arc::new(queue(16, 15, 2));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut seqs = Vec::new();
            while seqs.len() < 3 {
                if let Some(got) = q2.pop(Duration::from_millis(200)) {
                    seqs.push(got.seq);
                }
            }
            seqs
        });
        for seq in [10, 11, 12] {
            q.try_enqueue(item(seq)).expect("enqueue");
        }
        let seqs = consumer.join().expect("consumer");
        assert_eq!(seqs, vec![10, 11, 12]);
    }

    #[test]
    fn pop_times_out_empty() {
        let q = queue(4, 3, 1);
        let start = Instant::now();
        assert!(q.pop(Duration::from_millis(20)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
