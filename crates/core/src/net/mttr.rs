//! The failover MTTR bench: how long the monitor is dark after an engine
//! kill, for both recovery levels, measured end to end through the real
//! front door.
//!
//! Level 1 (in-process self-heal): the supervised engine is killed
//! mid-feed with a torn slot; the pump revives it from the durable slot +
//! WAL tail behind the admission queue. The recovery time is the wall
//! time of the revival itself — detection is immediate (the failing
//! `try_ingest` reports `Dead` synchronously), so the revive call *is*
//! the outage.
//!
//! Level 2 (warm standby promotion): a standby follows the primary over
//! the replication stream; the primary is shut down and the clock runs
//! from that instant until the standby serves at the bumped epoch. This
//! includes the probe budget (`probe_failures × probe_interval`), the
//! fencing probe, and the engine resume — the whole client-visible gap.
//!
//! Used by `reproduce --failover-out` to produce BENCH_PR8.json.

use super::client::{ClientConfig, FeedClient, TcpDialer};
use super::recovery::{EngineReviver, RecoveryConfig, RecoveryPlan};
use super::server::{EngineSink, IngestServer, NetServerConfig, PipelineSink};
use super::standby::{StandbyConfig, StandbyPhase, StandbyServer};
use crate::algorithm::CtupAlgorithm;
use crate::config::CtupConfig;
use crate::ingest::stamp_stream;
use crate::supervisor::{ResilienceConfig, SupervisedPipeline};
use crate::types::{LocationUpdate, UnitId};
use crate::{DurableState, OptCtup};
use ctup_obs::json::ObjectWriter;
use ctup_spatial::{convert, Grid, Point};
use ctup_storage::{CellLocalStore, PlaceId, PlaceRecord, PlaceStore};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Deterministic generator for the synthetic bench workload; the bench
/// must not depend on `ctup-mogen` (a dev-dependency), and determinism
/// keeps trials comparable.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// A coordinate in [0, 1).
    fn coord(&mut self) -> f64 {
        let hi = u32::try_from(self.next() >> 32).unwrap_or(u32::MAX);
        f64::from(hi) / (f64::from(u32::MAX) + 1.0)
    }

    /// An index in `0..n`.
    fn index(&mut self, n: usize) -> usize {
        let n64 = convert::count64(n.max(1));
        usize::try_from(self.next() % n64).unwrap_or(0)
    }
}

/// Builds the synthetic place set, unit positions, and store.
fn synth_world(seed: u64, places: usize, units: usize) -> (Vec<Point>, Arc<dyn PlaceStore>) {
    let mut lcg = Lcg(seed | 1);
    let records: Vec<PlaceRecord> = (0..places)
        .map(|i| {
            let pos = Point::new(lcg.coord(), lcg.coord());
            PlaceRecord::point(PlaceId(convert::id32(i)), pos, 1 + convert::id32(i % 3))
        })
        .collect();
    let positions: Vec<Point> = (0..units)
        .map(|_| Point::new(lcg.coord(), lcg.coord()))
        .collect();
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(Grid::unit_square(8), records));
    (positions, store)
}

/// A stream of unit movements within the unit square.
fn synth_stream(seed: u64, units: usize, n: u64) -> Vec<LocationUpdate> {
    let mut lcg = Lcg(seed.wrapping_mul(31) | 1);
    (0..n)
        .map(|_| LocationUpdate {
            unit: UnitId(convert::id32(lcg.index(units))),
            new: Point::new(lcg.coord(), lcg.coord()),
        })
        .collect()
}

/// Configuration of the MTTR bench.
#[derive(Debug, Clone)]
pub struct MttrConfig {
    /// Trials per recovery level; the report keeps every sample.
    pub trials: usize,
    /// Reports fed per trial.
    pub reports: u64,
    /// Engine kill point for the level-1 trials (report ordinal).
    pub kill_at: u64,
    /// Durable checkpoint cadence, in applied updates.
    pub checkpoint_every: u64,
    /// Standby probe cadence for the level-2 trials.
    pub probe_interval: Duration,
    /// Dark probes before the standby promotes.
    pub probe_failures: u32,
    /// Synthetic world size.
    pub places: usize,
    /// Synthetic fleet size.
    pub units: usize,
    /// Workload seed; each trial perturbs it.
    pub seed: u64,
}

impl Default for MttrConfig {
    fn default() -> Self {
        MttrConfig {
            trials: 5,
            reports: 600,
            kill_at: 300,
            checkpoint_every: 48,
            probe_interval: Duration::from_millis(50),
            probe_failures: 2,
            places: 1_000,
            units: 32,
            seed: 42,
        }
    }
}

/// One level-1 trial.
#[derive(Debug, Clone)]
pub struct SelfHealTrial {
    /// Wall time of the in-pump revival (load + restore + resume), ms.
    pub revive_ms: f64,
    /// Wall time of the whole feed, ms.
    pub feed_wall_ms: f64,
    /// Reports acked by the client (must equal the feed size).
    pub acked: u64,
    /// Engine restarts recorded by the server (must be 1).
    pub engine_restarts: u64,
}

/// One level-2 trial.
#[derive(Debug, Clone)]
pub struct PromotionTrial {
    /// Primary-shutdown to Promoted, ms (includes the probe budget).
    pub promote_ms: f64,
    /// Live WAL frames the standby applied before the kill.
    pub wal_applied: u64,
    /// Epoch the standby promoted into (primary epoch + 1).
    pub epoch: u64,
}

/// The whole bench.
#[derive(Debug, Clone)]
pub struct MttrReport {
    /// The configuration the samples were taken under.
    pub config: MttrConfig,
    /// Level-1 samples.
    pub self_heal: Vec<SelfHealTrial>,
    /// Level-2 samples.
    pub promotion: Vec<PromotionTrial>,
}

fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() / 2]
}

fn maximum(samples: &[f64]) -> f64 {
    samples.iter().fold(0.0_f64, |a, &b| a.max(b))
}

fn fmt_ms(v: f64) -> String {
    format!("{v:.3}")
}

impl MttrReport {
    /// Per-trial level-1 revival times, ms.
    pub fn self_heal_ms(&self) -> Vec<f64> {
        self.self_heal.iter().map(|t| t.revive_ms).collect()
    }

    /// Per-trial level-2 promotion times, ms.
    pub fn promotion_ms(&self) -> Vec<f64> {
        self.promotion.iter().map(|t| t.promote_ms).collect()
    }

    /// Renders the bench as the JSON object stored in BENCH_PR8.json.
    pub fn render_json(&self) -> String {
        let heal = self.self_heal_ms();
        let promote = self.promotion_ms();
        let mut heal_obj = ObjectWriter::new();
        heal_obj.field_raw(
            "revive_ms",
            &format!(
                "[{}]",
                heal.iter()
                    .map(|v| fmt_ms(*v))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
        heal_obj.field_raw("median_ms", &fmt_ms(median(&heal)));
        heal_obj.field_raw("max_ms", &fmt_ms(maximum(&heal)));
        heal_obj.field_u64("acked_total", self.self_heal.iter().map(|t| t.acked).sum());
        heal_obj.field_u64(
            "engine_restarts_total",
            self.self_heal.iter().map(|t| t.engine_restarts).sum(),
        );
        let mut promote_obj = ObjectWriter::new();
        promote_obj.field_raw(
            "promote_ms",
            &format!(
                "[{}]",
                promote
                    .iter()
                    .map(|v| fmt_ms(*v))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
        promote_obj.field_raw("median_ms", &fmt_ms(median(&promote)));
        promote_obj.field_raw("max_ms", &fmt_ms(maximum(&promote)));
        promote_obj.field_u64(
            "probe_interval_ms",
            u64::try_from(self.config.probe_interval.as_millis()).unwrap_or(u64::MAX),
        );
        promote_obj.field_u64("probe_failures", u64::from(self.config.probe_failures));
        let mut root = ObjectWriter::new();
        root.field_str("experiment", "failover_mttr");
        root.field_u64("trials", convert::count64(self.config.trials));
        root.field_u64("reports_per_trial", self.config.reports);
        root.field_u64("kill_at", self.config.kill_at);
        root.field_u64("checkpoint_every", self.config.checkpoint_every);
        root.field_raw("self_heal", &heal_obj.finish());
        root.field_raw("promotion", &promote_obj.finish());
        root.finish()
    }
}

fn bench_err(what: &str, detail: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::other(format!("{what}: {detail}"))
}

fn temp_dir(tag: &str, trial: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ctup-mttr-{tag}-{trial}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn wait_until(
    what: &str,
    deadline: Duration,
    tick: Duration,
    mut probe: impl FnMut() -> bool,
) -> std::io::Result<()> {
    let end = Instant::now() + deadline;
    while !probe() {
        if Instant::now() >= end {
            return Err(bench_err("timed out waiting", what));
        }
        std::thread::sleep(tick);
    }
    Ok(())
}

/// Rebuilds the engine from the durable directory, timing each revival.
struct TimedDirReviver {
    dir: PathBuf,
    store: Arc<dyn PlaceStore>,
    resilience: ResilienceConfig,
    samples: Arc<Mutex<Vec<Duration>>>,
}

impl EngineReviver for TimedDirReviver {
    fn revive(&self) -> Result<Arc<dyn EngineSink>, String> {
        let started = Instant::now();
        let (checkpoint, _journal) =
            DurableState::load(&self.dir).map_err(|e| format!("load: {e:?}"))?;
        let preview = OptCtup::restore(checkpoint, Arc::clone(&self.store))
            .map_err(|e| format!("restore: {e:?}"))?;
        let initial = preview.result();
        drop(preview);
        let pipeline = SupervisedPipeline::recover_from_dir::<OptCtup>(
            &self.dir,
            Arc::clone(&self.store),
            self.resilience.clone(),
            4096,
        )
        .map_err(|e| format!("recover: {e:?}"))?;
        let sink: Arc<dyn EngineSink> = Arc::new(PipelineSink::new(pipeline, initial));
        let mut samples = match self.samples.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        samples.push(started.elapsed());
        Ok(sink)
    }
}

fn feed_all(addr: std::net::SocketAddr, stream: &[crate::ingest::StampedUpdate]) -> u64 {
    let mut client = FeedClient::new(Box::new(TcpDialer::new(addr)), ClientConfig::default());
    for &report in stream {
        client.enqueue(report);
    }
    let _ = client.drive(Duration::from_secs(60));
    client.finish().acked
}

fn self_heal_trial(config: &MttrConfig, trial: usize) -> std::io::Result<SelfHealTrial> {
    let seed = config.seed.wrapping_add(convert::count64(trial));
    let (units, store) = synth_world(seed, config.places, config.units);
    let stream = stamp_stream(synth_stream(seed, config.units, config.reports));
    let dir = temp_dir("heal", trial);

    let resilience = ResilienceConfig {
        checkpoint_every: config.checkpoint_every,
        state_dir: Some(dir.clone()),
        kill_at: Some(config.kill_at),
        tear_slot_on_kill: true,
        ..ResilienceConfig::default()
    };
    let monitor = OptCtup::new(CtupConfig::with_k(10), store.clone(), &units)
        .map_err(|e| bench_err("engine init", format!("{e:?}")))?;
    let initial = monitor.result();
    let pipeline = SupervisedPipeline::spawn(monitor, resilience.clone(), 4096);
    let sink: Arc<dyn EngineSink> = Arc::new(PipelineSink::new(pipeline, initial));

    let samples = Arc::new(Mutex::new(Vec::new()));
    let plan = RecoveryPlan {
        reviver: Arc::new(TimedDirReviver {
            dir: dir.clone(),
            store,
            resilience: ResilienceConfig {
                kill_at: None,
                tear_slot_on_kill: false,
                ..resilience
            },
            samples: samples.clone(),
        }),
        config: RecoveryConfig {
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(50),
            ..RecoveryConfig::default()
        },
    };
    let mut net_config = NetServerConfig::default();
    net_config.admission.ingest_deadline = Duration::from_secs(10);
    let server = IngestServer::spawn_with_recovery("127.0.0.1:0", net_config, sink, Some(plan))?;

    let started = Instant::now();
    let acked = feed_all(server.local_addr(), &stream);
    let feed_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    wait_until(
        "degraded mode to clear",
        Duration::from_secs(10),
        Duration::from_millis(2),
        || !server.degraded(),
    )?;
    let net = server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    let revive = {
        let samples = match samples.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        samples
            .last()
            .copied()
            .ok_or_else(|| bench_err("self-heal trial", "the engine never revived"))?
    };
    Ok(SelfHealTrial {
        revive_ms: revive.as_secs_f64() * 1e3,
        feed_wall_ms,
        acked,
        engine_restarts: net.engine_restarts,
    })
}

fn promotion_trial(config: &MttrConfig, trial: usize) -> std::io::Result<PromotionTrial> {
    let seed = config
        .seed
        .wrapping_add(1_000)
        .wrapping_add(convert::count64(trial));
    let (units, store) = synth_world(seed, config.places, config.units);
    let stream = stamp_stream(synth_stream(seed, config.units, config.reports));
    let dir_primary = temp_dir("promote-p", trial);
    let dir_standby = temp_dir("promote-s", trial);

    let resilience = ResilienceConfig {
        checkpoint_every: config.checkpoint_every,
        state_dir: Some(dir_primary.clone()),
        ..ResilienceConfig::default()
    };
    let monitor = OptCtup::new(CtupConfig::with_k(10), store.clone(), &units)
        .map_err(|e| bench_err("engine init", format!("{e:?}")))?;
    let initial = monitor.result();
    let pipeline = SupervisedPipeline::spawn(monitor, resilience, 4096);
    let sink: Arc<dyn EngineSink> = Arc::new(PipelineSink::new(pipeline, initial));
    let net_config = NetServerConfig {
        state_dir: Some(dir_primary.clone()),
        epoch: 1,
        ..NetServerConfig::default()
    };
    let primary = IngestServer::spawn("127.0.0.1:0", net_config, sink)?;
    let primary_addr = primary.local_addr();

    let standby = StandbyServer::spawn::<OptCtup>(
        StandbyConfig {
            primary_ingest: primary_addr,
            serve_addr: "127.0.0.1:0".to_string(),
            resilience: ResilienceConfig {
                state_dir: Some(dir_standby.clone()),
                ..ResilienceConfig::default()
            },
            probe_interval: config.probe_interval,
            probe_failures: config.probe_failures,
            ..StandbyConfig::default()
        },
        store,
    );

    // Prime: the first durable batch lets the checkpoint sync complete.
    let prime = usize::try_from(config.checkpoint_every.max(32)).unwrap_or(64) * 2;
    let prime = prime.min(stream.len());
    let acked = feed_all(primary_addr, &stream[..prime]);
    if acked != convert::count64(prime) {
        return Err(bench_err("priming feed", format!("{acked}/{prime} acked")));
    }
    wait_until(
        "checkpoint sync",
        Duration::from_secs(10),
        Duration::from_millis(2),
        || standby.status().phase == StandbyPhase::Following,
    )?;
    // The sync may land mid-priming, counting part of the priming batch
    // toward `wal_applied`; let the counter settle before baselining it.
    let mut base = standby.status().wal_applied;
    let mut stable_since = Instant::now();
    let settle_deadline = Instant::now() + Duration::from_secs(10);
    while stable_since.elapsed() < Duration::from_millis(250) {
        if Instant::now() >= settle_deadline {
            return Err(bench_err("baseline", "wal_applied never settled"));
        }
        std::thread::sleep(Duration::from_millis(10));
        let now = standby.status().wal_applied;
        if now != base {
            base = now;
            stable_since = Instant::now();
        }
    }
    // Live tail: the rest arrives over the replication stream.
    let rest = stream.len() - prime;
    let acked = feed_all(primary_addr, &stream[prime..]);
    if acked != convert::count64(rest) {
        return Err(bench_err("live feed", format!("{acked}/{rest} acked")));
    }
    wait_until(
        "live WAL tail",
        Duration::from_secs(10),
        Duration::from_millis(2),
        || standby.status().wal_applied >= base + convert::count64(rest),
    )?;

    // The outage clock runs from the shutdown call to Promoted.
    let killed = Instant::now();
    primary.shutdown();
    wait_until(
        "promotion",
        Duration::from_secs(30),
        Duration::from_millis(1),
        || standby.status().phase == StandbyPhase::Promoted,
    )?;
    let promote_ms = killed.elapsed().as_secs_f64() * 1e3;
    let status = standby.status();
    standby.shutdown();
    std::fs::remove_dir_all(&dir_primary).ok();
    std::fs::remove_dir_all(&dir_standby).ok();
    Ok(PromotionTrial {
        promote_ms,
        wal_applied: status.wal_applied,
        epoch: status.epoch,
    })
}

/// Runs both levels, `config.trials` trials each.
pub fn run_mttr_bench(config: &MttrConfig) -> std::io::Result<MttrReport> {
    let mut self_heal = Vec::with_capacity(config.trials);
    let mut promotion = Vec::with_capacity(config.trials);
    for trial in 0..config.trials {
        self_heal.push(self_heal_trial(config, trial)?);
    }
    for trial in 0..config.trials {
        promotion.push(promotion_trial(config, trial)?);
    }
    Ok(MttrReport {
        config: config.clone(),
        self_heal,
        promotion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_trial_of_each_level_produces_sane_samples() {
        let config = MttrConfig {
            trials: 1,
            reports: 200,
            kill_at: 100,
            checkpoint_every: 32,
            ..MttrConfig::default()
        };
        let report = run_mttr_bench(&config).expect("bench runs");
        assert_eq!(report.self_heal.len(), 1);
        assert_eq!(report.promotion.len(), 1);
        let heal = &report.self_heal[0];
        assert_eq!(heal.acked, 200, "self-heal must not drop reports");
        assert_eq!(heal.engine_restarts, 1);
        assert!(heal.revive_ms > 0.0);
        let promo = &report.promotion[0];
        assert!(promo.promote_ms > 0.0);
        assert_eq!(promo.epoch, 2, "promotion bumps the epoch");
        let json = report.render_json();
        assert!(json.contains("\"experiment\":\"failover_mttr\""));
        assert!(json.contains("\"self_heal\":{"));
        assert!(json.contains("\"promotion\":{"));
    }
}
