//! The overload sweep: offered load vs. accepted/shed throughput and
//! ingest wait latency, measured end to end through the real front door.
//!
//! The sweep runs the genuine server stack — wire codec, sessions,
//! admission queue, pump, watchdog — against a [`CalibratedSink`], an
//! engine stand-in whose per-report service time is fixed. That pins the
//! engine's capacity at `1 / service_delay`, so "2× overload" is a
//! property of the configuration, not of the host's scheduling luck. A
//! paced [`FeedClient`] then offers load at a chosen multiple of that
//! capacity and the report records what the door did about it.
//!
//! Used both by `ctup bench reproduce overload_sweep` and directly by the
//! overload experiment in EXPERIMENTS.md.

use super::client::{ClientConfig, FeedClient, TcpDialer};
use super::server::{EngineSink, IngestServer, NetServerConfig, SinkError};
use super::stats::NetStatsSnapshot;
use crate::ingest::{StampedUpdate, TracedReport};
use crate::types::{PlaceId, TopKEntry};
use ctup_obs::json::ObjectWriter;
use ctup_spatial::Point;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An engine stand-in that accepts everything and counts it.
#[derive(Debug, Default)]
pub struct CountingSink {
    accepted: AtomicU64,
}

impl CountingSink {
    /// Reports accepted so far.
    pub fn accepted(&self) -> u64 {
        // ctup-lint: allow(L008, monotone test-support counter; readers only compare totals after joins)
        self.accepted.load(Ordering::Relaxed)
    }
}

impl EngineSink for CountingSink {
    fn try_ingest(&self, _report: TracedReport) -> Result<(), SinkError> {
        // ctup-lint: allow(L008, monotone test-support counter; no other state is published through it)
        self.accepted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn topk(&self) -> Vec<TopKEntry> {
        vec![TopKEntry {
            place: PlaceId(0),
            safety: 0,
        }]
    }
}

/// Wraps a sink with a fixed per-report service delay, pinning the
/// downstream capacity at `1 / delay` for calibrated overload tests.
#[derive(Debug)]
pub struct CalibratedSink<S> {
    inner: S,
    delay: Duration,
}

impl<S> CalibratedSink<S> {
    /// A sink that spends `delay` of service time per accepted report.
    pub fn new(inner: S, delay: Duration) -> Self {
        CalibratedSink { inner, delay }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: EngineSink> EngineSink for CalibratedSink<S> {
    fn try_ingest(&self, report: TracedReport) -> Result<(), SinkError> {
        // The pump is the single caller, so sleeping here serializes
        // service time exactly like a busy engine would.
        std::thread::sleep(self.delay);
        self.inner.try_ingest(report)
    }

    fn topk(&self) -> Vec<TopKEntry> {
        self.inner.topk()
    }
}

/// Configuration of one sweep.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Fixed engine service time per report; capacity = 1/delay.
    pub service_delay: Duration,
    /// Offered load as multiples of engine capacity, one point each.
    pub load_multipliers: Vec<f64>,
    /// Reports offered per point.
    pub reports_per_point: u64,
    /// Server configuration template (admission queue is shrunk relative
    /// to the offered burst so shedding actually engages).
    pub server: NetServerConfig,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        let mut server = NetServerConfig::default();
        server.admission.queue_capacity = 64;
        server.admission.high_watermark = 48;
        server.admission.low_watermark = 16;
        server.admission.ingest_deadline = Duration::from_millis(250);
        server.snapshot_push_interval = Duration::ZERO;
        OverloadConfig {
            service_delay: Duration::from_micros(500),
            load_multipliers: vec![0.5, 1.0, 2.0, 4.0],
            reports_per_point: 2_000,
            server,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Offered load as a multiple of engine capacity.
    pub multiplier: f64,
    /// Offered rate in reports per second.
    pub offered_hz: f64,
    /// Reports offered.
    pub offered: u64,
    /// Reports the engine accepted (exactly-once, engine-side truth).
    pub engine_accepted: u64,
    /// Accepted throughput in reports per second of wall time.
    pub accepted_hz: f64,
    /// Shed throughput in reports per second of wall time.
    pub shed_hz: f64,
    /// p50 of the admission-to-engine wait, nanoseconds.
    pub p50_wait_nanos: u64,
    /// p99 of the admission-to-engine wait, nanoseconds.
    pub p99_wait_nanos: u64,
    /// Wall time of the point, milliseconds.
    pub wall_ms: u64,
    /// Final server counters for the point.
    pub net: NetStatsSnapshot,
    /// Client-side terminal accounting: acked.
    pub client_acked: u64,
    /// Client-side terminal accounting: shed.
    pub client_shed: u64,
}

/// The whole sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Engine capacity implied by the service delay, reports per second.
    pub capacity_hz: f64,
    /// One entry per load multiplier.
    pub points: Vec<LoadPoint>,
}

fn fmt_f64(v: f64) -> String {
    format!("{v:.3}")
}

impl SweepReport {
    /// Renders the sweep as the JSON object stored in BENCH_PR6.json.
    pub fn render_json(&self) -> String {
        let mut points = String::from("[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                points.push(',');
            }
            let mut obj = ObjectWriter::new();
            obj.field_raw("multiplier", &fmt_f64(p.multiplier));
            obj.field_raw("offered_hz", &fmt_f64(p.offered_hz));
            obj.field_u64("offered", p.offered);
            obj.field_u64("engine_accepted", p.engine_accepted);
            obj.field_raw("accepted_hz", &fmt_f64(p.accepted_hz));
            obj.field_raw("shed_hz", &fmt_f64(p.shed_hz));
            obj.field_u64("p50_wait_nanos", p.p50_wait_nanos);
            obj.field_u64("p99_wait_nanos", p.p99_wait_nanos);
            obj.field_u64("wall_ms", p.wall_ms);
            obj.field_u64("reports_accepted", p.net.reports_accepted);
            obj.field_u64("shed_queue_full", p.net.shed_queue_full);
            obj.field_u64("shed_deadline_exceeded", p.net.shed_deadline_exceeded);
            obj.field_u64("shed_session_quota", p.net.shed_session_quota);
            obj.field_u64("shed_engine_degraded", p.net.shed_engine_degraded);
            obj.field_u64("replays_suppressed", p.net.replays_suppressed);
            obj.field_u64("client_acked", p.client_acked);
            obj.field_u64("client_shed", p.client_shed);
            points.push_str(&obj.finish());
        }
        points.push(']');
        let mut root = ObjectWriter::new();
        root.field_str("experiment", "overload_sweep");
        root.field_raw("capacity_hz", &fmt_f64(self.capacity_hz));
        root.field_raw("points", &points);
        root.finish()
    }
}

/// Runs the sweep: one fresh server + calibrated engine per load point,
/// a paced client offering `multiplier × capacity`, exact accounting at
/// the end of each point.
pub fn run_sweep(config: &OverloadConfig) -> std::io::Result<SweepReport> {
    let delay_s = config.service_delay.as_secs_f64();
    let capacity_hz = if delay_s > 0.0 {
        1.0 / delay_s
    } else {
        f64::MAX
    };
    let mut points = Vec::new();
    for &multiplier in &config.load_multipliers {
        let sink = Arc::new(CalibratedSink::new(
            CountingSink::default(),
            config.service_delay,
        ));
        let dyn_sink: Arc<dyn EngineSink> = sink.clone();
        let server = IngestServer::spawn("127.0.0.1:0", config.server.clone(), dyn_sink)?;
        let offered_hz = (capacity_hz * multiplier).max(1.0);
        let gap = Duration::from_secs_f64(1.0 / offered_hz);
        let mut client = FeedClient::new(
            Box::new(TcpDialer::new(server.local_addr())),
            ClientConfig::default(),
        );
        let started = Instant::now();
        for i in 0..config.reports_per_point {
            let due = started + gap.mul_f64(i as f64);
            client.enqueue(StampedUpdate {
                seq: i + 1,
                ts: i + 1,
                update: crate::types::LocationUpdate {
                    unit: crate::types::UnitId(0),
                    new: Point::new(0.5, 0.5),
                },
            });
            while Instant::now() < due {
                let _ = client.step(Duration::from_millis(100));
            }
        }
        // Flush: let the remaining tail become terminal (acked or shed).
        let _ = client.drive(Duration::from_secs(20));
        let wall = started.elapsed();
        let stats = client.finish();
        let engine_accepted = sink.inner().accepted();
        let net = server.shutdown();
        let wall_s = wall.as_secs_f64().max(1e-9);
        points.push(LoadPoint {
            multiplier,
            offered_hz,
            offered: config.reports_per_point,
            engine_accepted,
            accepted_hz: (net.reports_accepted as f64) / wall_s,
            shed_hz: (net.shed_queue_full
                + net.shed_deadline_exceeded
                + net.shed_session_quota
                + net.shed_engine_degraded) as f64
                / wall_s,
            p50_wait_nanos: net.ingest_wait_nanos.quantile(0.50),
            p99_wait_nanos: net.ingest_wait_nanos.quantile(0.99),
            wall_ms: u64::try_from(wall.as_millis()).unwrap_or(u64::MAX),
            client_acked: stats.acked,
            client_shed: stats.shed_total(),
            net,
        });
    }
    Ok(SweepReport {
        capacity_hz,
        points,
    })
}
