//! Session registry: per-client sequence spaces and replay suppression.
//!
//! A *session* is a client's durable identity across TCP connections. Each
//! session owns a gapless wire-sequence space chosen by the client; the
//! registry tracks two lines through it:
//!
//! * `enqueued_up_to` — the **dedup line**: every wire seq at or below it
//!   is either waiting in the admission queue or already terminal. A
//!   report at or below this line is a replay (a reconnect retransmit) and
//!   is suppressed without touching the engine — this is what makes
//!   reconnect-and-replay duplicate-free *before* the ingest gate even
//!   sees it.
//! * `handled_up_to` — the **ack line**: every wire seq at or below it is
//!   terminal (drained into the engine or shed). This is what `Ack`
//!   frames carry; the client trims its resend buffer with it.
//!
//! Between the two lines sit the session's reports still waiting in the
//! admission queue (`pending`). Because the global queue is FIFO, each
//! session's pending set is an ascending run and the ack line is simply
//! `pending.front() - 1`.
//!
//! Reconnects *take over*: a `Hello` resuming a session bumps its epoch,
//! and the previous connection's handler notices the stale epoch and
//! retires quietly. Disconnected sessions with nothing in flight are
//! garbage-collected after an idle TTL so reconnect storms cannot pin
//! registry slots forever.

use super::stats::{NetStats, ShedReason};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Registry sizing and retention policy.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Hard cap on simultaneously known sessions; `Hello` beyond it is
    /// refused with `Bye(ServerFull)`.
    pub max_sessions: usize,
    /// Per-session cap on reports waiting in the admission queue; beyond
    /// it the report is shed with [`ShedReason::SessionQuota`].
    pub session_quota: usize,
    /// How long a disconnected session with nothing in flight stays
    /// resumable before the registry forgets it.
    pub idle_ttl: Duration,
    /// First id handed to a fresh session (clamped to at least 1). A
    /// promoted standby sets this to an epoch-fenced base so the ids it
    /// mints can never collide with ids minted by the old primary —
    /// otherwise a client resuming its old-primary session could take
    /// over another client's fresh session on the new server.
    pub first_session_id: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_sessions: 1024,
            session_quota: 256,
            idle_ttl: Duration::from_secs(60),
            first_session_id: 1,
        }
    }
}

/// Why a `Hello` was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenError {
    /// The registry is at `max_sessions` and nothing was collectable.
    ServerFull,
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::ServerFull => f.write_str("session registry is full"),
        }
    }
}

impl std::error::Error for OpenError {}

/// Result of a successful `Hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOpen {
    /// The session id (fresh, or the resumed one).
    pub session: u64,
    /// The session's current ack line, echoed in the handshake `Ack`.
    pub handled_up_to: u64,
    /// Connection epoch; a handler whose epoch goes stale was taken over.
    pub epoch: u64,
    /// Whether an existing session was resumed (vs. freshly opened).
    pub resumed: bool,
}

/// How a submitted report relates to the session's sequence space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportClass {
    /// Already at or below the dedup line: suppress, do not re-ingest.
    Replay,
    /// The session's pending run is at quota: shed.
    QuotaExceeded,
    /// Genuinely new: admit or shed on global-queue state.
    Fresh,
}

/// A frame the pump or watchdog wants a session's connection to send.
#[derive(Debug, Clone, PartialEq)]
pub enum OutboundNote {
    /// A queued report was shed after admission (deadline, engine death).
    Shed {
        /// Wire seq of the shed report.
        seq: u64,
        /// Why it was shed.
        reason: ShedReason,
    },
    /// A server-pushed top-k snapshot.
    Snapshot {
        /// Whether the server was degraded when the snapshot was taken.
        degraded: bool,
        /// `(place_id, safety)` entries in result order.
        entries: Vec<(u32, i64)>,
    },
}

#[derive(Debug)]
struct SessionState {
    enqueued_up_to: u64,
    pending: VecDeque<u64>,
    epoch: u64,
    connected: bool,
    last_seen: Instant,
    outbox: Vec<OutboundNote>,
}

#[derive(Debug)]
struct Inner {
    next_id: u64,
    sessions: HashMap<u64, SessionState>,
}

/// The shared session table. All methods are `&self`; one mutex guards the
/// table (sessions are touched a handful of times per report, and the
/// admission queue, not this map, is the contended structure).
#[derive(Debug)]
pub struct SessionRegistry {
    config: SessionConfig,
    inner: Mutex<Inner>,
    stats: Arc<NetStats>,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new(config: SessionConfig, stats: Arc<NetStats>) -> Self {
        let first = config.first_session_id.max(1);
        SessionRegistry {
            config,
            inner: Mutex::new(Inner {
                next_id: first,
                sessions: HashMap::new(),
            }),
            stats,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn publish_active(&self, inner: &Inner) {
        self.stats.sessions_active.store(
            ctup_spatial::convert::count64(inner.sessions.len()),
            Ordering::Relaxed,
        );
    }

    /// Handles a `Hello`: resumes `resume` if it names a live session
    /// (bumping its epoch — the previous connection, if any, is taken
    /// over), otherwise opens a fresh session.
    pub fn open(&self, resume: u64, now: Instant) -> Result<SessionOpen, OpenError> {
        let mut inner = self.lock();
        if resume != 0 {
            if let Some(state) = inner.sessions.get_mut(&resume) {
                state.epoch += 1;
                state.connected = true;
                state.last_seen = now;
                let open = SessionOpen {
                    session: resume,
                    handled_up_to: handled_line(state),
                    epoch: state.epoch,
                    resumed: true,
                };
                self.stats.sessions_resumed.fetch_add(1, Ordering::Relaxed);
                return Ok(open);
            }
        }
        if inner.sessions.len() >= self.config.max_sessions {
            self.collect_idle(&mut inner, now);
            if inner.sessions.len() >= self.config.max_sessions {
                return Err(OpenError::ServerFull);
            }
        }
        let session = inner.next_id;
        inner.next_id += 1;
        inner.sessions.insert(
            session,
            SessionState {
                enqueued_up_to: 0,
                pending: VecDeque::new(),
                epoch: 1,
                connected: true,
                last_seen: now,
                outbox: Vec::new(),
            },
        );
        self.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
        self.publish_active(&inner);
        Ok(SessionOpen {
            session,
            handled_up_to: 0,
            epoch: 1,
            resumed: false,
        })
    }

    /// Classifies a submitted wire seq against the session's lines.
    pub fn classify(&self, session: u64, seq: u64) -> ReportClass {
        let mut inner = self.lock();
        let Some(state) = inner.sessions.get_mut(&session) else {
            // Unknown session (GC'd under a live handler): treat as replay
            // so nothing new enters the engine through a dead session.
            return ReportClass::Replay;
        };
        state.last_seen = Instant::now();
        if seq <= state.enqueued_up_to {
            ReportClass::Replay
        } else if state.pending.len() >= self.config.session_quota {
            ReportClass::QuotaExceeded
        } else {
            ReportClass::Fresh
        }
    }

    /// Records that `seq` entered the admission queue (advances the dedup
    /// line, appends to the pending run).
    pub fn note_enqueued(&self, session: u64, seq: u64) {
        let mut inner = self.lock();
        if let Some(state) = inner.sessions.get_mut(&session) {
            state.enqueued_up_to = state.enqueued_up_to.max(seq);
            state.pending.push_back(seq);
        }
    }

    /// Rolls back a [`note_enqueued`](Self::note_enqueued) whose admission
    /// was then refused: removes `seq` from the pending run. The dedup
    /// line stays advanced — the shed that follows is terminal, so a
    /// retransmit of the seq must still be suppressed.
    pub fn retract_pending(&self, session: u64, seq: u64) {
        let mut inner = self.lock();
        if let Some(state) = inner.sessions.get_mut(&session) {
            remove_pending(state, seq);
        }
    }

    /// Records that `seq` was shed at the door (terminal without ever
    /// being queued): the dedup line advances so a retransmit of the same
    /// seq is suppressed rather than re-judged.
    pub fn note_shed_at_door(&self, session: u64, seq: u64) {
        let mut inner = self.lock();
        if let Some(state) = inner.sessions.get_mut(&session) {
            state.enqueued_up_to = state.enqueued_up_to.max(seq);
        }
    }

    /// Records that a queued report reached the engine (pump side).
    pub fn drained(&self, session: u64, seq: u64) {
        let mut inner = self.lock();
        if let Some(state) = inner.sessions.get_mut(&session) {
            remove_pending(state, seq);
            state.last_seen = Instant::now();
        }
    }

    /// Records that a queued report was shed by the pump (deadline, engine
    /// death) and queues the typed `Shed` frame for the session's
    /// connection to deliver.
    pub fn shed_at_drain(&self, session: u64, seq: u64, reason: ShedReason) {
        let mut inner = self.lock();
        if let Some(state) = inner.sessions.get_mut(&session) {
            remove_pending(state, seq);
            state.outbox.push(OutboundNote::Shed { seq, reason });
            state.last_seen = Instant::now();
        }
    }

    /// The session's current ack line.
    pub fn handled_up_to(&self, session: u64) -> u64 {
        let inner = self.lock();
        inner.sessions.get(&session).map_or(0, handled_line)
    }

    /// Whether `epoch` is still the session's live connection epoch.
    pub fn epoch_current(&self, session: u64, epoch: u64) -> bool {
        let inner = self.lock();
        inner
            .sessions
            .get(&session)
            .is_some_and(|s| s.epoch == epoch)
    }

    /// Marks the connection closed (only if `epoch` is still current; a
    /// taken-over handler must not mark the successor disconnected).
    pub fn disconnected(&self, session: u64, epoch: u64) {
        let mut inner = self.lock();
        if let Some(state) = inner.sessions.get_mut(&session) {
            if state.epoch == epoch {
                state.connected = false;
                state.last_seen = Instant::now();
            }
        }
    }

    /// Takes the session's queued outbound frames.
    pub fn take_outbox(&self, session: u64) -> Vec<OutboundNote> {
        let mut inner = self.lock();
        inner
            .sessions
            .get_mut(&session)
            .map_or(Vec::new(), |s| std::mem::take(&mut s.outbox))
    }

    /// Queues a snapshot push to every connected session; returns how many
    /// sessions it was queued for.
    pub fn push_snapshot_all(&self, degraded: bool, entries: &[(u32, i64)]) -> usize {
        let mut inner = self.lock();
        let mut queued = 0usize;
        for state in inner.sessions.values_mut() {
            if !state.connected {
                continue;
            }
            // Replace any not-yet-delivered snapshot: only the freshest
            // matters, and this bounds outbox growth for a slow reader.
            state
                .outbox
                .retain(|n| !matches!(n, OutboundNote::Snapshot { .. }));
            state.outbox.push(OutboundNote::Snapshot {
                degraded,
                entries: entries.to_vec(),
            });
            queued += 1;
        }
        queued
    }

    /// Forgets disconnected sessions with nothing in flight that have been
    /// idle longer than the TTL. Returns how many were collected.
    pub fn gc(&self, now: Instant) -> usize {
        let mut inner = self.lock();
        let collected = self.collect_idle(&mut inner, now);
        self.publish_active(&inner);
        collected
    }

    fn collect_idle(&self, inner: &mut Inner, now: Instant) -> usize {
        let ttl = self.config.idle_ttl;
        let before = inner.sessions.len();
        inner.sessions.retain(|_, s| {
            s.connected || !s.pending.is_empty() || now.saturating_duration_since(s.last_seen) < ttl
        });
        before - inner.sessions.len()
    }

    /// Sessions currently known to the registry.
    pub fn active(&self) -> usize {
        self.lock().sessions.len()
    }
}

/// `pending.front() - 1` when reports are in flight, else the dedup line.
fn handled_line(state: &SessionState) -> u64 {
    state
        .pending
        .front()
        .map_or(state.enqueued_up_to, |&first| first.saturating_sub(1))
}

/// Pops `seq` from the pending run (front in the common FIFO case; a
/// linear remove keeps the registry consistent even if drain order ever
/// deviates).
fn remove_pending(state: &mut SessionState, seq: u64) {
    if state.pending.front() == Some(&seq) {
        state.pending.pop_front();
    } else if let Some(idx) = state.pending.iter().position(|&s| s == seq) {
        state.pending.remove(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(quota: usize) -> SessionRegistry {
        SessionRegistry::new(
            SessionConfig {
                max_sessions: 4,
                session_quota: quota,
                idle_ttl: Duration::from_millis(10),
                first_session_id: 1,
            },
            Arc::new(NetStats::default()),
        )
    }

    #[test]
    fn open_resume_and_takeover_epochs() {
        let reg = registry(8);
        let now = Instant::now();
        let a = reg.open(0, now).expect("open");
        assert!(!a.resumed);
        assert_eq!(a.epoch, 1);
        // Resume bumps the epoch; the old epoch goes stale.
        let b = reg.open(a.session, now).expect("resume");
        assert!(b.resumed);
        assert_eq!(b.session, a.session);
        assert_eq!(b.epoch, 2);
        assert!(!reg.epoch_current(a.session, a.epoch));
        assert!(reg.epoch_current(a.session, b.epoch));
        // A stale handler's disconnect must not mark the successor closed.
        reg.disconnected(a.session, a.epoch);
        let c = reg.open(a.session, now).expect("resume again");
        assert_eq!(c.epoch, 3);
    }

    #[test]
    fn unknown_resume_opens_fresh() {
        let reg = registry(8);
        let open = reg.open(999, Instant::now()).expect("open");
        assert!(!open.resumed);
        assert_ne!(open.session, 999);
    }

    #[test]
    fn dedup_and_ack_lines_track_the_queue() {
        let reg = registry(8);
        let s = reg.open(0, Instant::now()).expect("open").session;
        assert_eq!(reg.classify(s, 1), ReportClass::Fresh);
        reg.note_enqueued(s, 1);
        reg.note_enqueued(s, 2);
        reg.note_enqueued(s, 3);
        // All three pending: replays suppressed, ack line still zero.
        assert_eq!(reg.classify(s, 2), ReportClass::Replay);
        assert_eq!(reg.handled_up_to(s), 0);
        reg.drained(s, 1);
        assert_eq!(reg.handled_up_to(s), 1);
        reg.drained(s, 2);
        reg.drained(s, 3);
        assert_eq!(reg.handled_up_to(s), 3);
        // A door-shed seq is terminal immediately.
        reg.note_shed_at_door(s, 4);
        assert_eq!(reg.classify(s, 4), ReportClass::Replay);
        assert_eq!(reg.handled_up_to(s), 4);
    }

    #[test]
    fn retract_pending_unpins_the_ack_line() {
        let reg = registry(8);
        let s = reg.open(0, Instant::now()).expect("open").session;
        reg.note_enqueued(s, 1);
        reg.note_enqueued(s, 2);
        // Admission refused seq 2 after the registry already saw it.
        reg.retract_pending(s, 2);
        reg.drained(s, 1);
        // The run is empty, so the line covers the (terminal) shed too.
        assert_eq!(reg.handled_up_to(s), 2);
        assert_eq!(reg.classify(s, 2), ReportClass::Replay);
    }

    #[test]
    fn pump_shed_removes_pending_and_queues_the_frame() {
        let reg = registry(8);
        let s = reg.open(0, Instant::now()).expect("open").session;
        reg.note_enqueued(s, 1);
        reg.note_enqueued(s, 2);
        reg.shed_at_drain(s, 1, ShedReason::DeadlineExceeded);
        assert_eq!(reg.handled_up_to(s), 1);
        let notes = reg.take_outbox(s);
        assert_eq!(
            notes,
            vec![OutboundNote::Shed {
                seq: 1,
                reason: ShedReason::DeadlineExceeded
            }]
        );
        assert!(reg.take_outbox(s).is_empty());
    }

    #[test]
    fn quota_caps_the_pending_run() {
        let reg = registry(2);
        let s = reg.open(0, Instant::now()).expect("open").session;
        reg.note_enqueued(s, 1);
        reg.note_enqueued(s, 2);
        assert_eq!(reg.classify(s, 3), ReportClass::QuotaExceeded);
        reg.drained(s, 1);
        assert_eq!(reg.classify(s, 3), ReportClass::Fresh);
    }

    #[test]
    fn gc_forgets_only_idle_disconnected_empty_sessions() {
        let reg = registry(8);
        let now = Instant::now();
        let open = reg.open(0, now).expect("open");
        let busy = reg.open(0, now).expect("open busy");
        reg.note_enqueued(busy.session, 1);
        reg.disconnected(open.session, open.epoch);
        reg.disconnected(busy.session, busy.epoch);
        std::thread::sleep(Duration::from_millis(15));
        let collected = reg.gc(Instant::now());
        assert_eq!(collected, 1, "only the empty idle session is collectable");
        assert!(reg.epoch_current(busy.session, busy.epoch));
        assert!(!reg.epoch_current(open.session, open.epoch));
    }

    #[test]
    fn registry_cap_refuses_then_recovers_via_gc() {
        let reg = registry(8);
        let now = Instant::now();
        let opens: Vec<SessionOpen> = (0..4).map(|_| reg.open(0, now).expect("open")).collect();
        assert_eq!(reg.open(0, now), Err(OpenError::ServerFull));
        for o in &opens {
            reg.disconnected(o.session, o.epoch);
        }
        std::thread::sleep(Duration::from_millis(15));
        // The cap path collects idle sessions before refusing.
        assert!(reg.open(0, Instant::now()).is_ok());
    }

    #[test]
    fn snapshot_pushes_replace_stale_ones() {
        let reg = registry(8);
        let s = reg.open(0, Instant::now()).expect("open").session;
        assert_eq!(reg.push_snapshot_all(false, &[(1, 5)]), 1);
        assert_eq!(reg.push_snapshot_all(true, &[(2, -1)]), 1);
        let notes = reg.take_outbox(s);
        assert_eq!(notes.len(), 1, "older snapshot replaced");
        assert_eq!(
            notes[0],
            OutboundNote::Snapshot {
                degraded: true,
                entries: vec![(2, -1)]
            }
        );
    }
}
