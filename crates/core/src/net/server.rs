//! The networked ingest front door: accept loop, connection handlers,
//! drain pump and degraded-mode watchdog.
//!
//! Thread shape (all owned by [`IngestServer`]):
//!
//! * **accept** — takes TCP connections, enforces the connection cap, and
//!   hands each to its own handler thread so one slow peer can never wedge
//!   the door (the defect the old inline metrics loop had).
//! * **handler** (one per connection) — speaks the wire protocol with
//!   short read/write timeouts: handshake (`Hello`/`Ack`), per-report
//!   classification through the [`SessionRegistry`], admission through the
//!   [`AdmissionQueue`], acks, shed notifications, snapshot pushes, and
//!   slow-client eviction (a frame that trickles past the frame deadline,
//!   or a write backlog that stops draining, ends the connection).
//! * **pump** — the only thread that feeds the engine: pops queued
//!   reports, sheds the ones that outlived the ingest deadline, and
//!   forwards the rest to the [`EngineSink`] exactly once. Engine
//!   backpressure is absorbed here (bounded retry against the deadline);
//!   engine death flips the server into sticky degraded mode.
//! * **watchdog** — refreshes the last-good top-k from the engine, trips
//!   degraded mode when the queue is backlogged and the pump makes no
//!   progress (or the engine died), clears it when the backlog drains,
//!   garbage-collects idle sessions, and schedules snapshot pushes.
//!
//! Degraded mode is the graceful half of the overload story: ingest sheds
//! with [`ShedReason::EngineDegraded`] while the last-good snapshot keeps
//! being served to subscribers and `/healthz` reports `degraded: true`.

use super::admission::{AdmissionConfig, AdmissionQueue, QueuedReport};
use super::session::{OpenError, OutboundNote, ReportClass, SessionConfig, SessionRegistry};
use super::stats::{NetStats, ShedReason};
use super::wire::{ByeReason, DecodeError, FrameDecoder, FrameWriter, Message};
use crate::ingest::StampedUpdate;
use crate::pipeline::SendError;
use crate::server::MonitorEvent;
use crate::supervisor::SupervisedPipeline;
use crate::types::{LocationUpdate, PlaceId, Safety, TopKEntry, UnitId};
use ctup_obs::json::ObjectWriter;
use ctup_spatial::{convert, Point};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why the engine refused a report right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkError {
    /// The engine's inbound queue is full; retrying shortly may succeed.
    Backpressure,
    /// The engine is gone (worker dead, restarts exhausted); no report
    /// will ever be accepted again on this sink.
    Dead,
}

/// The engine as the front door sees it: a place to put validated reports
/// and a current top-k to serve.
pub trait EngineSink: Send + Sync {
    /// Offers one report; must not block longer than a bounded push.
    fn try_ingest(&self, report: StampedUpdate) -> Result<(), SinkError>;
    /// The engine's current result, freshest first by unsafety.
    fn topk(&self) -> Vec<TopKEntry>;
}

/// [`EngineSink`] over the supervised pipeline: reports ride the existing
/// validated ingest gate and liveness leases inside the supervisor, and
/// the top-k is maintained incrementally from the pipeline's
/// [`MonitorEvent`] stream (seeded with the result at spawn time).
pub struct PipelineSink {
    pipeline: SupervisedPipeline,
    current: Mutex<HashMap<PlaceId, Safety>>,
}

impl std::fmt::Debug for PipelineSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineSink").finish_non_exhaustive()
    }
}

impl PipelineSink {
    /// Wraps a running pipeline. `initial` is the algorithm's result at
    /// spawn time (events only carry changes, not the starting state).
    pub fn new(pipeline: SupervisedPipeline, initial: Vec<TopKEntry>) -> Self {
        PipelineSink {
            pipeline,
            current: Mutex::new(initial.iter().map(|e| (e.place, e.safety)).collect()),
        }
    }

    /// Unwraps the pipeline (for shutdown and final accounting).
    pub fn into_pipeline(self) -> SupervisedPipeline {
        self.pipeline
    }

    fn apply_events(&self) {
        let mut current = match self.current.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        for batch in self.pipeline.events().try_iter() {
            for event in batch.events {
                match event {
                    MonitorEvent::Entered { place, safety } => {
                        current.insert(place, safety);
                    }
                    MonitorEvent::Left { place } => {
                        current.remove(&place);
                    }
                    MonitorEvent::SafetyChanged { place, new, .. } => {
                        current.insert(place, new);
                    }
                }
            }
        }
    }
}

impl EngineSink for PipelineSink {
    fn try_ingest(&self, report: StampedUpdate) -> Result<(), SinkError> {
        match self.pipeline.try_send(report) {
            Ok(()) => Ok(()),
            Err(SendError::Full) => Err(SinkError::Backpressure),
            Err(SendError::WorkerDied) => Err(SinkError::Dead),
        }
    }

    fn topk(&self) -> Vec<TopKEntry> {
        self.apply_events();
        let current = match self.current.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut entries: Vec<TopKEntry> = current
            .iter()
            .map(|(&place, &safety)| TopKEntry { place, safety })
            .collect();
        entries.sort_by_key(|e| (e.safety, e.place));
        entries
    }
}

/// Full configuration of the front door.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Admission queue sizing and deadlines.
    pub admission: AdmissionConfig,
    /// Session registry sizing and retention.
    pub session: SessionConfig,
    /// Cap on concurrent connections; beyond it new ones get
    /// `Bye(ServerFull)` and are counted as rejected.
    pub max_connections: usize,
    /// Granularity of blocking socket reads/writes (and of stop checks).
    pub io_tick: Duration,
    /// A connection must complete its `Hello` within this.
    pub handshake_deadline: Duration,
    /// A started frame must complete within this (slowloris eviction).
    pub frame_deadline: Duration,
    /// A write backlog must drain within this (slow-reader eviction).
    pub write_deadline: Duration,
    /// Hard cap in bytes on a connection's outbound backlog.
    pub max_write_backlog: usize,
    /// Cadence of server-pushed snapshots; zero disables pushing.
    pub snapshot_push_interval: Duration,
    /// Watchdog cadence (degraded-mode checks, session GC).
    pub watchdog_tick: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            admission: AdmissionConfig::default(),
            session: SessionConfig::default(),
            max_connections: 256,
            io_tick: Duration::from_millis(25),
            handshake_deadline: Duration::from_secs(2),
            frame_deadline: Duration::from_secs(2),
            write_deadline: Duration::from_secs(2),
            max_write_backlog: 256 * 1024,
            snapshot_push_interval: Duration::from_millis(250),
            watchdog_tick: Duration::from_millis(25),
        }
    }
}

/// State shared by every server thread.
struct Shared {
    config: NetServerConfig,
    stats: Arc<NetStats>,
    registry: SessionRegistry,
    queue: AdmissionQueue,
    sink: Arc<dyn EngineSink>,
    stop: AtomicBool,
    degraded: AtomicBool,
    engine_dead: AtomicBool,
    /// Monotone count of pump completions (drains + pump sheds); the
    /// watchdog watches it to distinguish "busy" from "stalled".
    progress: AtomicU64,
    last_good: Mutex<Vec<TopKEntry>>,
    conn_count: AtomicUsize,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            // ctup-lint: allow(L008, diagnostic snapshot; a stale value only mislabels a debug dump)
            .field("degraded", &self.degraded.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Shared {
    fn set_degraded(&self, on: bool) {
        // ctup-lint: allow(L008, degraded gates best-effort shedding only; no data is published through it)
        let was = self.degraded.swap(on, Ordering::Relaxed);
        self.stats.degraded.store(on, Ordering::Relaxed);
        if on && !was {
            self.stats.degraded_entries.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A running ingest front door. Dropping it (or calling
/// [`IngestServer::shutdown`]) stops and joins every server thread.
#[derive(Debug)]
pub struct IngestServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl IngestServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `sink`.
    pub fn spawn(
        addr: &str,
        config: NetServerConfig,
        sink: Arc<dyn EngineSink>,
    ) -> std::io::Result<IngestServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(NetStats::default());
        let initial_topk = sink.topk();
        let shared = Arc::new(Shared {
            registry: SessionRegistry::new(config.session.clone(), Arc::clone(&stats)),
            queue: AdmissionQueue::new(config.admission.clone(), Arc::clone(&stats)),
            config,
            stats,
            sink,
            stop: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            engine_dead: AtomicBool::new(false),
            progress: AtomicU64::new(0),
            last_good: Mutex::new(initial_topk),
            conn_count: AtomicUsize::new(0),
        });
        let accept = spawn_thread("ctup-net-accept", {
            let shared = Arc::clone(&shared);
            move || accept_loop(&listener, &shared)
        })?;
        let pump = spawn_thread("ctup-net-pump", {
            let shared = Arc::clone(&shared);
            move || pump_loop(&shared)
        })?;
        let watchdog = spawn_thread("ctup-net-watchdog", {
            let shared = Arc::clone(&shared);
            move || watchdog_loop(&shared)
        })?;
        Ok(IngestServer {
            addr,
            shared,
            accept: Some(accept),
            pump: Some(pump),
            watchdog: Some(watchdog),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters, shared with every server thread.
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Whether the watchdog currently has the server degraded.
    pub fn degraded(&self) -> bool {
        // ctup-lint: allow(L008, observer peek at a best-effort flag; callers tolerate one-tick staleness)
        self.shared.degraded.load(Ordering::Relaxed)
    }

    /// The last-good top-k (served even while degraded).
    pub fn last_good_topk(&self) -> Vec<TopKEntry> {
        match self.shared.last_good.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// The `/healthz` body: liveness plus the degraded flag and the two
    /// load gauges, as one flat JSON object.
    pub fn health_body(&self) -> String {
        let degraded = self.degraded();
        let mut obj = ObjectWriter::new();
        obj.field_str("status", if degraded { "degraded" } else { "ok" });
        obj.field_bool("degraded", degraded);
        obj.field_u64("sessions", convert::count64(self.shared.registry.active()));
        obj.field_u64("queue_depth", convert::count64(self.shared.queue.depth()));
        obj.finish()
    }

    /// Stops accepting, drains the admission queue through the pump, joins
    /// every thread and returns the final counters.
    pub fn shutdown(mut self) -> super::stats::NetStatsSnapshot {
        self.stop_threads();
        self.shared.stats.snapshot()
    }

    fn stop_threads(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Handlers poll the stop flag at io_tick granularity; wait for
        // them (bounded) so their final acks and Byes get written.
        let deadline =
            Instant::now() + self.shared.config.io_tick * 40 + Duration::from_millis(200);
        while self.shared.conn_count.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(handle) = self.pump.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.watchdog.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn spawn_thread<F>(name: &str, f: F) -> std::io::Result<JoinHandle<()>>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new().name(name.into()).spawn(f)
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let active = shared.conn_count.load(Ordering::SeqCst);
        if active >= shared.config.max_connections {
            shared
                .stats
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            refuse(stream, ByeReason::ServerFull);
            continue;
        }
        shared.conn_count.fetch_add(1, Ordering::SeqCst);
        shared
            .stats
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        let for_handler = Arc::clone(shared);
        let spawned = spawn_thread("ctup-net-conn", move || {
            handle_connection(stream, &for_handler);
            for_handler.conn_count.fetch_sub(1, Ordering::SeqCst);
        });
        if spawned.is_err() {
            // Could not spawn a handler; undo the slot reservation.
            shared.conn_count.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Best-effort `Bye` on a connection we will not serve.
fn refuse(mut stream: TcpStream, reason: ByeReason) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let mut bytes = Vec::new();
    Message::Bye { reason }.encode(&mut bytes);
    let _ = stream.write_all(&bytes);
}

/// Per-connection protocol state.
struct ConnState {
    session: u64,
    epoch: u64,
    last_acked: u64,
    frame_started: Option<Instant>,
    write_stuck_since: Option<Instant>,
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let tick = shared.config.io_tick;
    if stream.set_read_timeout(Some(tick)).is_err() || stream.set_write_timeout(Some(tick)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut decoder = FrameDecoder::new();
    let mut writer = FrameWriter::new();

    // Handshake: the first frame must be a Hello, within the deadline.
    let handshake_deadline = Instant::now() + shared.config.handshake_deadline;
    let open = loop {
        if shared.stop.load(Ordering::SeqCst) {
            send_bye(&mut stream, &mut writer, ByeReason::Shutdown);
            return;
        }
        if Instant::now() > handshake_deadline {
            shared
                .stats
                .sessions_evicted
                .fetch_add(1, Ordering::Relaxed);
            send_bye(&mut stream, &mut writer, ByeReason::Evicted);
            return;
        }
        match decoder.read_from(&mut stream) {
            Ok(Message::Hello { resume_session }) => {
                shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                match shared.registry.open(resume_session, Instant::now()) {
                    Ok(open) => break open,
                    Err(OpenError::ServerFull) => {
                        shared
                            .stats
                            .connections_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        send_bye(&mut stream, &mut writer, ByeReason::ServerFull);
                        return;
                    }
                }
            }
            Ok(_) => {
                shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .sessions_evicted
                    .fetch_add(1, Ordering::Relaxed);
                send_bye(&mut stream, &mut writer, ByeReason::ProtocolError);
                return;
            }
            Err(e) if e.is_timeout() => continue,
            Err(DecodeError::Wire(_)) => {
                shared
                    .stats
                    .frames_malformed
                    .fetch_add(1, Ordering::Relaxed);
                send_bye(&mut stream, &mut writer, ByeReason::ProtocolError);
                return;
            }
            Err(DecodeError::Closed { mid_frame }) => {
                if mid_frame {
                    shared
                        .stats
                        .partial_disconnects
                        .fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            Err(DecodeError::Io(_)) => return,
        }
    };

    let mut conn = ConnState {
        session: open.session,
        epoch: open.epoch,
        last_acked: open.handled_up_to,
        frame_started: None,
        write_stuck_since: None,
    };
    writer.push(&Message::Ack {
        session: open.session,
        handled_up_to: open.handled_up_to,
    });

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            send_bye(&mut stream, &mut writer, ByeReason::Shutdown);
            shared.registry.disconnected(conn.session, conn.epoch);
            return;
        }
        if !shared.registry.epoch_current(conn.session, conn.epoch) {
            // A reconnect took the session over; retire quietly.
            return;
        }

        // Read at most one frame per iteration (the decoder returns as
        // soon as one completes, so a busy peer is served per-frame).
        match decoder.read_from(&mut stream) {
            Ok(msg) => {
                shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                conn.frame_started = None;
                match msg {
                    Message::Report {
                        seq,
                        unit_seq,
                        ts,
                        unit,
                        x,
                        y,
                    } => handle_report(
                        shared,
                        &mut conn,
                        &mut writer,
                        seq,
                        unit_seq,
                        ts,
                        unit,
                        x,
                        y,
                    ),
                    Message::Bye { .. } => {
                        shared.registry.disconnected(conn.session, conn.epoch);
                        let _ = writer.flush_into(&mut stream);
                        return;
                    }
                    // Hello mid-stream or a server-only frame from a
                    // client: protocol violation.
                    Message::Hello { .. }
                    | Message::Ack { .. }
                    | Message::Shed { .. }
                    | Message::SnapshotPush { .. } => {
                        shared
                            .stats
                            .sessions_evicted
                            .fetch_add(1, Ordering::Relaxed);
                        send_bye(&mut stream, &mut writer, ByeReason::ProtocolError);
                        shared.registry.disconnected(conn.session, conn.epoch);
                        return;
                    }
                }
            }
            Err(e) if e.is_timeout() => {
                // Slowloris: a frame that started but will not finish.
                if decoder.mid_frame() {
                    let started = *conn.frame_started.get_or_insert_with(Instant::now);
                    if started.elapsed() > shared.config.frame_deadline {
                        shared
                            .stats
                            .sessions_evicted
                            .fetch_add(1, Ordering::Relaxed);
                        send_bye(&mut stream, &mut writer, ByeReason::Evicted);
                        shared.registry.disconnected(conn.session, conn.epoch);
                        return;
                    }
                } else {
                    conn.frame_started = None;
                }
            }
            Err(DecodeError::Wire(_)) => {
                shared
                    .stats
                    .frames_malformed
                    .fetch_add(1, Ordering::Relaxed);
                send_bye(&mut stream, &mut writer, ByeReason::ProtocolError);
                shared.registry.disconnected(conn.session, conn.epoch);
                return;
            }
            Err(DecodeError::Closed { mid_frame }) => {
                if mid_frame {
                    shared
                        .stats
                        .partial_disconnects
                        .fetch_add(1, Ordering::Relaxed);
                }
                shared.registry.disconnected(conn.session, conn.epoch);
                return;
            }
            Err(DecodeError::Io(_)) => {
                shared.registry.disconnected(conn.session, conn.epoch);
                return;
            }
        }

        // Outbound: pump sheds and snapshot pushes queued for this session.
        for note in shared.registry.take_outbox(conn.session) {
            match note {
                OutboundNote::Shed { seq, reason } => writer.push(&Message::Shed { seq, reason }),
                OutboundNote::Snapshot { degraded, entries } => {
                    shared
                        .stats
                        .snapshots_pushed
                        .fetch_add(1, Ordering::Relaxed);
                    writer.push(&Message::SnapshotPush { degraded, entries });
                }
            }
        }
        // Ack when the session's terminal line advanced.
        let handled = shared.registry.handled_up_to(conn.session);
        if handled > conn.last_acked {
            conn.last_acked = handled;
            writer.push(&Message::Ack {
                session: conn.session,
                handled_up_to: handled,
            });
        }
        // Flush; evict a peer whose backlog will not drain.
        if writer.pending() > 0 {
            match writer.flush_into(&mut stream) {
                Ok(true) => conn.write_stuck_since = None,
                Ok(false) => {
                    let stuck = *conn.write_stuck_since.get_or_insert_with(Instant::now);
                    if stuck.elapsed() > shared.config.write_deadline
                        || writer.pending() > shared.config.max_write_backlog
                    {
                        shared
                            .stats
                            .sessions_evicted
                            .fetch_add(1, Ordering::Relaxed);
                        shared.registry.disconnected(conn.session, conn.epoch);
                        return;
                    }
                }
                Err(_) => {
                    shared.registry.disconnected(conn.session, conn.epoch);
                    return;
                }
            }
        }
    }
}

/// Classifies and admits (or sheds) one report.
#[allow(clippy::too_many_arguments)]
fn handle_report(
    shared: &Arc<Shared>,
    conn: &mut ConnState,
    writer: &mut FrameWriter,
    seq: u64,
    unit_seq: u64,
    ts: u64,
    unit: u32,
    x: f64,
    y: f64,
) {
    match shared.registry.classify(conn.session, seq) {
        ReportClass::Replay => {
            shared
                .stats
                .replays_suppressed
                .fetch_add(1, Ordering::Relaxed);
        }
        ReportClass::QuotaExceeded => {
            shed_at_door(shared, conn, writer, seq, ShedReason::SessionQuota);
        }
        ReportClass::Fresh => {
            // ctup-lint: allow(L008, best-effort shed gate; a stale read admits or sheds one extra report)
            if shared.degraded.load(Ordering::Relaxed) {
                shed_at_door(shared, conn, writer, seq, ShedReason::EngineDegraded);
                return;
            }
            let report = StampedUpdate {
                seq: unit_seq,
                ts,
                update: LocationUpdate {
                    unit: UnitId(unit),
                    new: Point::new(x, y),
                },
            };
            let queued = QueuedReport {
                session: conn.session,
                seq,
                report,
                enqueued_at: Instant::now(),
            };
            // The seq must be in the session's pending run BEFORE the
            // queue can hand the item to the pump: a fast engine drains
            // the instant it lands, and `drained()` finding nothing to
            // remove would leave a ghost entry pinning the ack line.
            shared.registry.note_enqueued(conn.session, seq);
            match shared.queue.try_enqueue(queued) {
                Ok(()) => {}
                Err(reason) => {
                    shared.registry.retract_pending(conn.session, seq);
                    shed_at_door(shared, conn, writer, seq, reason);
                }
            }
        }
    }
}

fn shed_at_door(
    shared: &Arc<Shared>,
    conn: &ConnState,
    writer: &mut FrameWriter,
    seq: u64,
    reason: ShedReason,
) {
    shared.registry.note_shed_at_door(conn.session, seq);
    shared.stats.record_shed(reason);
    writer.push(&Message::Shed { seq, reason });
}

fn send_bye(stream: &mut TcpStream, writer: &mut FrameWriter, reason: ByeReason) {
    writer.push(&Message::Bye { reason });
    let _ = writer.flush_into(stream);
}

/// The single engine feeder: drains the admission queue in arrival order.
fn pump_loop(shared: &Arc<Shared>) {
    let tick = shared.config.io_tick;
    let deadline = shared.config.admission.ingest_deadline;
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        let Some(item) = shared.queue.pop(tick) else {
            if stopping {
                return;
            }
            continue;
        };
        let wait = item.enqueued_at.elapsed();
        if wait > deadline {
            pump_shed(shared, &item, ShedReason::DeadlineExceeded);
            continue;
        }
        // ctup-lint: allow(L008, one-way latch; a stale false costs one extra try_ingest which re-reports Dead)
        if shared.engine_dead.load(Ordering::Relaxed) {
            pump_shed(shared, &item, ShedReason::EngineDegraded);
            continue;
        }
        // Bounded retry against engine backpressure: the admission queue
        // is the elastic buffer, so all we do here is wait out short
        // bursts — the ingest deadline still bounds the total wait.
        loop {
            match shared.sink.try_ingest(item.report) {
                Ok(()) => {
                    shared
                        .stats
                        .reports_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    shared
                        .stats
                        .ingest_wait_nanos
                        .record(convert::nanos64(item.enqueued_at.elapsed().as_nanos()));
                    shared.registry.drained(item.session, item.seq);
                    // ctup-lint: allow(L008, monotone liveness counter; the watchdog only compares snapshots)
                    shared.progress.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(SinkError::Backpressure) => {
                    if item.enqueued_at.elapsed() > deadline {
                        pump_shed(shared, &item, ShedReason::DeadlineExceeded);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(SinkError::Dead) => {
                    // ctup-lint: allow(L008, one-way latch; readers act on it eventually, nothing is gated on order)
                    shared.engine_dead.store(true, Ordering::Relaxed);
                    shared.set_degraded(true);
                    pump_shed(shared, &item, ShedReason::EngineDegraded);
                    break;
                }
            }
        }
    }
}

fn pump_shed(shared: &Arc<Shared>, item: &QueuedReport, reason: ShedReason) {
    shared.stats.record_shed(reason);
    shared
        .registry
        .shed_at_drain(item.session, item.seq, reason);
    // ctup-lint: allow(L008, monotone liveness counter; the watchdog only compares snapshots)
    shared.progress.fetch_add(1, Ordering::Relaxed);
}

/// Degraded-mode control loop plus housekeeping.
fn watchdog_loop(shared: &Arc<Shared>) {
    let tick = shared.config.watchdog_tick.max(Duration::from_millis(1));
    let push_every = shared.config.snapshot_push_interval;
    // ctup-lint: allow(L008, monotone liveness counter; the watchdog only compares snapshots)
    let mut last_progress = shared.progress.load(Ordering::Relaxed);
    let mut progress_moved_at = Instant::now();
    let mut last_push = Instant::now();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(tick);

        // Track pump progress.
        // ctup-lint: allow(L008, monotone liveness counter; a missed tick just delays the stall verdict)
        let progress = shared.progress.load(Ordering::Relaxed);
        if progress != last_progress {
            last_progress = progress;
            progress_moved_at = Instant::now();
        }

        // ctup-lint: allow(L008, one-way latch; the watchdog re-reads it every tick)
        let engine_dead = shared.engine_dead.load(Ordering::Relaxed);
        let depth = shared.queue.depth();
        // ctup-lint: allow(L008, the watchdog is the only writer of degraded, so its own read is exact)
        let degraded = shared.degraded.load(Ordering::Relaxed);
        if engine_dead {
            shared.set_degraded(true);
        } else if !degraded {
            let backlogged = depth >= shared.config.admission.high_watermark.max(1);
            let stalled =
                progress_moved_at.elapsed() > shared.config.admission.stall_grace && depth > 0;
            if backlogged && stalled {
                shared.set_degraded(true);
            }
        } else if depth <= shared.config.admission.low_watermark
            && progress_moved_at.elapsed() <= shared.config.admission.stall_grace
        {
            // Backlog drained and the pump is moving again: recover.
            shared.set_degraded(false);
        }

        // Refresh the last-good top-k while the engine is alive.
        if !engine_dead {
            let fresh = shared.sink.topk();
            let mut guard = match shared.last_good.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *guard = fresh;
        }

        // Session GC and snapshot pushes.
        shared.registry.gc(Instant::now());
        if !push_every.is_zero() && last_push.elapsed() >= push_every {
            last_push = Instant::now();
            let entries: Vec<(u32, i64)> = {
                let guard = match shared.last_good.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                guard.iter().map(|e| (e.place.0, e.safety)).collect()
            };
            // ctup-lint: allow(L008, the watchdog is the only writer of degraded, so its own read is exact)
            let now_degraded = shared.degraded.load(Ordering::Relaxed);
            shared.registry.push_snapshot_all(now_degraded, &entries);
        }
    }
}
