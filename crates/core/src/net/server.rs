//! The networked ingest front door: accept loop, connection handlers,
//! drain pump and degraded-mode watchdog.
//!
//! Thread shape (all owned by [`IngestServer`]):
//!
//! * **accept** — takes TCP connections, enforces the connection cap, and
//!   hands each to its own handler thread so one slow peer can never wedge
//!   the door (the defect the old inline metrics loop had).
//! * **handler** (one per connection) — speaks the wire protocol with
//!   short read/write timeouts: handshake (`Hello`/`Ack`), per-report
//!   classification through the [`SessionRegistry`], admission through the
//!   [`AdmissionQueue`], acks, shed notifications, snapshot pushes, and
//!   slow-client eviction (a frame that trickles past the frame deadline,
//!   or a write backlog that stops draining, ends the connection). A
//!   connection whose *first* frame is a replication subscribe
//!   (`CheckpointOffer`) or a fencing probe (`PromoteQuery`) is handed to
//!   the replication path instead of opening a session.
//! * **pump** — the only thread that feeds the engine: pops queued
//!   reports, sheds the ones that outlived the ingest deadline, and
//!   forwards the rest to the [`EngineSink`] exactly once. A forwarded
//!   report is *not* acked at hand-off: it stays in the pump's in-flight
//!   tail until the sink's [durable mark](EngineSink::durable_mark)
//!   covers it, so an ack can never run ahead of the engine's journal —
//!   the invariant level-1 recovery and standby promotion both lean on.
//!   Engine backpressure is absorbed here (bounded retry against the
//!   deadline); engine death triggers circuit-broken in-process revival
//!   through the [`RecoveryPlan`] when one was installed, and only a
//!   tripped breaker (or no plan) parks the server in sticky degraded
//!   mode.
//! * **watchdog** — refreshes the last-good top-k from the engine, trips
//!   degraded mode when the queue is backlogged and the pump makes no
//!   progress (or the engine died), clears it when the backlog drains,
//!   garbage-collects idle sessions, schedules snapshot pushes, and
//!   refreshes the `degraded_since_ms` gauge.
//!
//! Degraded mode is the graceful half of the overload story: ingest sheds
//! with [`ShedReason::EngineDegraded`] while the last-good snapshot keeps
//! being served to subscribers and `/healthz` reports `degraded: true`.
//!
//! **Replication.** A standby subscribes by sending an all-zero
//! `CheckpointOffer` as its first frame. The server registers the
//! subscription *before* reading the durable state (so no append can fall
//! between the journal it ships and the live tail it streams — overlap is
//! deduplicated by the standby's gate, a gap would be data loss), then
//! ships its newest checkpoint in [`MAX_CHUNK_DATA`]-sized chunks, the
//! journal tail, and finally every report the pump hands the engine, each
//! stamped with this server's fencing **epoch**. A `PromoteQuery` first
//! frame is answered with the current epoch and the connection closed —
//! the liveness probe a promoting standby uses to guarantee it never
//! crowns itself while the primary is still answering.

use super::admission::{AdmissionConfig, AdmissionQueue, QueuedReport};
use super::recovery::{CircuitBreaker, RecoveryPlan};
use super::session::{OpenError, OutboundNote, ReportClass, SessionConfig, SessionRegistry};
use super::stats::{NetStats, ShedReason};
use super::wire::{ByeReason, DecodeError, FrameDecoder, FrameWriter, Message, MAX_CHUNK_DATA};
use crate::durable::DurableState;
use crate::ingest::{StampedUpdate, TracedReport};
use crate::pipeline::SendError;
use crate::report::build_info;
use crate::server::MonitorEvent;
use crate::supervisor::SupervisedPipeline;
use crate::types::{LocationUpdate, PlaceId, Safety, TopKEntry, UnitId};
use ctup_obs::json::ObjectWriter;
use ctup_obs::{mint_trace, now_nanos, sample_trace, SpanSink, Stage};
use ctup_spatial::{convert, Point};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why the engine refused a report right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkError {
    /// The engine's inbound queue is full; retrying shortly may succeed.
    Backpressure,
    /// The engine is gone (worker dead, restarts exhausted); no report
    /// will ever be accepted again on this sink.
    Dead,
}

/// The engine as the front door sees it: a place to put validated reports
/// and a current top-k to serve.
pub trait EngineSink: Send + Sync {
    /// Offers one report (with its causal trace context, trace 0 meaning
    /// untraced); must not block longer than a bounded push.
    fn try_ingest(&self, report: TracedReport) -> Result<(), SinkError>;
    /// The engine's current result, freshest first by unsafety.
    fn topk(&self) -> Vec<TopKEntry>;
    /// How many reports (counted in hand-off order from this sink's
    /// creation) the engine has taken durable ownership of — journaled or
    /// terminally rejected. The pump acks a report only once this mark
    /// covers its hand-off index. Sinks with no durability story (test
    /// counters, the calibrated overload sink) keep the default, which
    /// acks at hand-off exactly as the pre-recovery front door did.
    fn durable_mark(&self) -> u64 {
        u64::MAX
    }
    /// Whether the engine behind this sink has died. A pure probe for the
    /// pump's idle passes: an engine that dies *after* the admission queue
    /// drained would otherwise be discovered only by the next report's
    /// failing `try_ingest` — which may never come, leaving the unacked
    /// in-flight tail hanging. Sinks that cannot die keep the default.
    fn dead(&self) -> bool {
        false
    }
}

/// [`EngineSink`] over the supervised pipeline: reports ride the existing
/// validated ingest gate and liveness leases inside the supervisor, and
/// the top-k is maintained incrementally from the pipeline's
/// [`MonitorEvent`] stream (seeded with the result at spawn time).
pub struct PipelineSink {
    pipeline: SupervisedPipeline,
    current: Mutex<HashMap<PlaceId, Safety>>,
}

impl std::fmt::Debug for PipelineSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineSink").finish_non_exhaustive()
    }
}

impl PipelineSink {
    /// Wraps a running pipeline. `initial` is the algorithm's result at
    /// spawn time (events only carry changes, not the starting state).
    pub fn new(pipeline: SupervisedPipeline, initial: Vec<TopKEntry>) -> Self {
        PipelineSink {
            pipeline,
            current: Mutex::new(initial.iter().map(|e| (e.place, e.safety)).collect()),
        }
    }

    /// Unwraps the pipeline (for shutdown and final accounting).
    pub fn into_pipeline(self) -> SupervisedPipeline {
        self.pipeline
    }

    fn apply_events(&self) {
        let mut current = match self.current.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        for batch in self.pipeline.events().try_iter() {
            for event in batch.events {
                match event {
                    MonitorEvent::Entered { place, safety } => {
                        current.insert(place, safety);
                    }
                    MonitorEvent::Left { place } => {
                        current.remove(&place);
                    }
                    MonitorEvent::SafetyChanged { place, new, .. } => {
                        current.insert(place, new);
                    }
                }
            }
        }
    }
}

impl EngineSink for PipelineSink {
    fn try_ingest(&self, report: TracedReport) -> Result<(), SinkError> {
        match self.pipeline.try_send_traced(report) {
            Ok(()) => Ok(()),
            Err(SendError::Full) => Err(SinkError::Backpressure),
            Err(SendError::WorkerDied) => Err(SinkError::Dead),
        }
    }

    fn topk(&self) -> Vec<TopKEntry> {
        self.apply_events();
        let current = match self.current.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut entries: Vec<TopKEntry> = current
            .iter()
            .map(|(&place, &safety)| TopKEntry { place, safety })
            .collect();
        entries.sort_by_key(|e| (e.safety, e.place));
        entries
    }

    fn durable_mark(&self) -> u64 {
        self.pipeline.durable_mark()
    }

    fn dead(&self) -> bool {
        self.pipeline.worker_dead()
    }
}

/// Full configuration of the front door.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Admission queue sizing and deadlines.
    pub admission: AdmissionConfig,
    /// Session registry sizing and retention.
    pub session: SessionConfig,
    /// Cap on concurrent connections; beyond it new ones get
    /// `Bye(ServerFull)` and are counted as rejected.
    pub max_connections: usize,
    /// Granularity of blocking socket reads/writes (and of stop checks).
    pub io_tick: Duration,
    /// A connection must complete its `Hello` within this.
    pub handshake_deadline: Duration,
    /// A started frame must complete within this (slowloris eviction).
    pub frame_deadline: Duration,
    /// A write backlog must drain within this (slow-reader eviction).
    pub write_deadline: Duration,
    /// Hard cap in bytes on a connection's outbound backlog.
    pub max_write_backlog: usize,
    /// Cadence of server-pushed snapshots; zero disables pushing.
    pub snapshot_push_interval: Duration,
    /// Watchdog cadence (degraded-mode checks, session GC).
    pub watchdog_tick: Duration,
    /// The fencing epoch this server serves at. Every replication frame
    /// carries it; a promoted standby serves at its old primary's epoch
    /// plus one, which is what lets everyone reject the stale side of a
    /// partition. Fresh primaries start at 1.
    pub epoch: u64,
    /// Durable state directory (A/B slots + journal) this server ships
    /// checkpoints from; `None` refuses replication subscribes. Must be
    /// the directory the engine's supervisor checkpoints into.
    pub state_dir: Option<PathBuf>,
    /// Causal span sink the front door records into (session-admit,
    /// queue-wait and shed spans, plus server-side trace minting). Share
    /// the same sink with the engine supervisor
    /// ([`crate::supervisor::ResilienceConfig::spans`]) so one trace's
    /// spans land in one dump. `None` disables all span recording here.
    pub spans: Option<Arc<SpanSink>>,
    /// Head-based 1-in-N sampling rate for reports that arrive *untraced*
    /// (v1 clients): 0 never mints, 1 traces every report. Reports that
    /// already carry a client-minted trace id are always recorded, and
    /// sheds are always traced regardless of this rate.
    pub trace_sample_every: u64,
    /// Seed mixed (with the session id) into server-minted trace ids.
    pub trace_seed: u64,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            admission: AdmissionConfig::default(),
            session: SessionConfig::default(),
            max_connections: 256,
            io_tick: Duration::from_millis(25),
            handshake_deadline: Duration::from_secs(2),
            frame_deadline: Duration::from_secs(2),
            write_deadline: Duration::from_secs(2),
            max_write_backlog: 256 * 1024,
            snapshot_push_interval: Duration::from_millis(250),
            watchdog_tick: Duration::from_millis(25),
            epoch: 1,
            state_dir: None,
            spans: None,
            trace_sample_every: 0,
            trace_seed: 0,
        }
    }
}

/// Cap on WAL frames queued for one replication subscriber; a standby
/// that falls further behind than this is cut off (`Bye(Evicted)`) and
/// must re-sync from a fresh checkpoint by reconnecting.
const REPLICATION_OUTBOX_CAP: usize = 8192;

/// One replication subscriber's bounded outbox.
#[derive(Debug)]
struct SubOutbox {
    queue: Mutex<VecDeque<Message>>,
    overflowed: AtomicBool,
}

/// Fan-out of live WAL appends to subscribed standbys. The pump ships
/// every report it hands the engine; the handler thread serving each
/// replication connection drains its subscriber's outbox onto the wire.
#[derive(Debug, Default)]
struct ReplicationHub {
    subs: Mutex<Vec<Arc<SubOutbox>>>,
}

impl ReplicationHub {
    fn lock_subs(&self) -> std::sync::MutexGuard<'_, Vec<Arc<SubOutbox>>> {
        match self.subs.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn subscribe(&self) -> Arc<SubOutbox> {
        let sub = Arc::new(SubOutbox {
            queue: Mutex::new(VecDeque::new()),
            overflowed: AtomicBool::new(false),
        });
        self.lock_subs().push(Arc::clone(&sub));
        sub
    }

    fn unsubscribe(&self, sub: &Arc<SubOutbox>) {
        self.lock_subs().retain(|s| !Arc::ptr_eq(s, sub));
    }

    fn ship(&self, msg: &Message) {
        let subs = self.lock_subs();
        for sub in subs.iter() {
            // ctup-lint: allow(L008, one-way overflow latch; the serving thread re-reads it every tick)
            if sub.overflowed.load(Ordering::Relaxed) {
                continue;
            }
            let mut queue = match sub.queue.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            if queue.len() >= REPLICATION_OUTBOX_CAP {
                // ctup-lint: allow(L008, one-way overflow latch; ordering against the clear is irrelevant, the sub is cut off either way)
                sub.overflowed.store(true, Ordering::Relaxed);
                queue.clear();
            } else {
                queue.push_back(msg.clone());
            }
        }
    }
}

/// State shared by every server thread.
struct Shared {
    config: NetServerConfig,
    stats: Arc<NetStats>,
    registry: SessionRegistry,
    queue: AdmissionQueue,
    /// The current engine; level-1 recovery swaps a revived sink in, so
    /// every use clones the `Arc` out rather than borrowing through the
    /// lock.
    sink: Mutex<Arc<dyn EngineSink>>,
    /// In-process revival plan; `None` keeps the pre-recovery behavior
    /// (engine death is sticky degraded mode).
    recovery: Option<RecoveryPlan>,
    /// Revival budget; meaningful only when `recovery` is `Some`.
    breaker: Mutex<CircuitBreaker>,
    replication: ReplicationHub,
    /// The fencing epoch, fixed for this server's lifetime.
    epoch: u64,
    stop: AtomicBool,
    degraded: AtomicBool,
    engine_dead: AtomicBool,
    /// Monotone count of pump completions (acks + pump sheds); the
    /// watchdog watches it to distinguish "busy" from "stalled".
    progress: AtomicU64,
    last_good: Mutex<Vec<TopKEntry>>,
    /// When the current degraded episode began (`None` while healthy).
    degraded_entered: Mutex<Option<Instant>>,
    conn_count: AtomicUsize,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            // ctup-lint: allow(L008, diagnostic snapshot; a stale value only mislabels a debug dump)
            .field("degraded", &self.degraded.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Shared {
    /// Clones the current sink out from under the swap lock.
    fn sink(&self) -> Arc<dyn EngineSink> {
        match self.sink.lock() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    fn set_degraded(&self, on: bool) {
        // ctup-lint: allow(L008, degraded gates best-effort shedding only; no data is published through it)
        let was = self.degraded.swap(on, Ordering::Relaxed);
        self.stats.degraded.store(on, Ordering::Relaxed);
        if on && !was {
            self.stats.degraded_entries.fetch_add(1, Ordering::Relaxed);
            let mut entered = match self.degraded_entered.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *entered = Some(Instant::now());
        } else if !on && was {
            let mut entered = match self.degraded_entered.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *entered = None;
            self.stats.degraded_since_ms.store(0, Ordering::Relaxed);
        }
    }

    /// Milliseconds into the current degraded episode, 0 while healthy.
    fn degraded_for_ms(&self) -> u64 {
        let entered = match self.degraded_entered.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        entered.map_or(0, |t| {
            u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX)
        })
    }
}

/// A running ingest front door. Dropping it (or calling
/// [`IngestServer::shutdown`]) stops and joins every server thread.
#[derive(Debug)]
pub struct IngestServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl IngestServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `sink`, with
    /// no in-process revival (engine death is sticky degraded mode).
    pub fn spawn(
        addr: &str,
        config: NetServerConfig,
        sink: Arc<dyn EngineSink>,
    ) -> std::io::Result<IngestServer> {
        Self::spawn_with_recovery(addr, config, sink, None)
    }

    /// Binds `addr` and starts serving `sink`; when `recovery` is given,
    /// engine death triggers circuit-broken in-process revival instead of
    /// sticky degraded mode.
    pub fn spawn_with_recovery(
        addr: &str,
        config: NetServerConfig,
        sink: Arc<dyn EngineSink>,
        recovery: Option<RecoveryPlan>,
    ) -> std::io::Result<IngestServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(NetStats::default());
        stats.epoch.store(config.epoch, Ordering::Relaxed);
        let initial_topk = sink.topk();
        let breaker = CircuitBreaker::new(
            recovery
                .as_ref()
                .map(|plan| plan.config.clone())
                .unwrap_or_default(),
        );
        let shared = Arc::new(Shared {
            registry: SessionRegistry::new(config.session.clone(), Arc::clone(&stats)),
            queue: AdmissionQueue::new(config.admission.clone(), Arc::clone(&stats)),
            epoch: config.epoch,
            config,
            stats,
            sink: Mutex::new(sink),
            recovery,
            breaker: Mutex::new(breaker),
            replication: ReplicationHub::default(),
            stop: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            engine_dead: AtomicBool::new(false),
            progress: AtomicU64::new(0),
            last_good: Mutex::new(initial_topk),
            degraded_entered: Mutex::new(None),
            conn_count: AtomicUsize::new(0),
        });
        let accept = spawn_thread("ctup-net-accept", {
            let shared = Arc::clone(&shared);
            move || accept_loop(&listener, &shared)
        })?;
        let pump = spawn_thread("ctup-net-pump", {
            let shared = Arc::clone(&shared);
            move || pump_loop(&shared)
        })?;
        let watchdog = spawn_thread("ctup-net-watchdog", {
            let shared = Arc::clone(&shared);
            move || watchdog_loop(&shared)
        })?;
        Ok(IngestServer {
            addr,
            shared,
            accept: Some(accept),
            pump: Some(pump),
            watchdog: Some(watchdog),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters, shared with every server thread.
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Whether the watchdog currently has the server degraded.
    pub fn degraded(&self) -> bool {
        // ctup-lint: allow(L008, observer peek at a best-effort flag; callers tolerate one-tick staleness)
        self.shared.degraded.load(Ordering::Relaxed)
    }

    /// The fencing epoch this server serves at.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch
    }

    /// Whether the crash-storm circuit breaker has tripped: the revival
    /// budget is spent and degraded mode is sticky until an operator
    /// intervenes.
    pub fn breaker_tripped(&self) -> bool {
        match self.shared.breaker.lock() {
            Ok(guard) => guard.tripped(),
            Err(poisoned) => poisoned.into_inner().tripped(),
        }
    }

    /// The last-good top-k (served even while degraded).
    pub fn last_good_topk(&self) -> Vec<TopKEntry> {
        match self.shared.last_good.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// The `/healthz` body: liveness plus the degraded flag, the load
    /// gauges and the recovery counters, as one flat JSON object.
    pub fn health_body(&self) -> String {
        let degraded = self.degraded();
        let stats = &self.shared.stats;
        let mut obj = ObjectWriter::new();
        obj.field_str("status", if degraded { "degraded" } else { "ok" });
        obj.field_bool("degraded", degraded);
        obj.field_u64("sessions", convert::count64(self.shared.registry.active()));
        obj.field_u64("queue_depth", convert::count64(self.shared.queue.depth()));
        obj.field_u64(
            "engine_restarts",
            stats.engine_restarts.load(Ordering::Relaxed),
        );
        obj.field_u64("failovers", stats.failovers.load(Ordering::Relaxed));
        obj.field_u64("degraded_since_ms", self.shared.degraded_for_ms());
        obj.field_u64("epoch", self.shared.epoch);
        obj.field_str("build", &build_info());
        obj.finish()
    }

    /// Stops accepting, drains the admission queue through the pump, joins
    /// every thread and returns the final counters.
    pub fn shutdown(mut self) -> super::stats::NetStatsSnapshot {
        self.stop_threads();
        // Final mirror of the span-sink counters: the watchdog may not
        // have ticked since the last traced report, and the shutdown
        // snapshot must account for every sampled trace.
        if let Some(sink) = self.shared.config.spans.as_deref() {
            self.shared
                .stats
                .spans_dropped
                .store(sink.dropped(), Ordering::Relaxed);
            self.shared
                .stats
                .traces_sampled
                .store(sink.sampled(), Ordering::Relaxed);
        }
        self.shared.stats.snapshot()
    }

    fn stop_threads(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Handlers poll the stop flag at io_tick granularity; wait for
        // them (bounded) so their final acks and Byes get written.
        let deadline =
            Instant::now() + self.shared.config.io_tick * 40 + Duration::from_millis(200);
        while self.shared.conn_count.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(handle) = self.pump.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.watchdog.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn spawn_thread<F>(name: &str, f: F) -> std::io::Result<JoinHandle<()>>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new().name(name.into()).spawn(f)
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let active = shared.conn_count.load(Ordering::SeqCst);
        if active >= shared.config.max_connections {
            shared
                .stats
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            refuse(stream, ByeReason::ServerFull);
            continue;
        }
        shared.conn_count.fetch_add(1, Ordering::SeqCst);
        shared
            .stats
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        let for_handler = Arc::clone(shared);
        let spawned = spawn_thread("ctup-net-conn", move || {
            handle_connection(stream, &for_handler);
            for_handler.conn_count.fetch_sub(1, Ordering::SeqCst);
        });
        if spawned.is_err() {
            // Could not spawn a handler; undo the slot reservation.
            shared.conn_count.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Best-effort `Bye` on a connection we will not serve.
fn refuse(mut stream: TcpStream, reason: ByeReason) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let mut bytes = Vec::new();
    Message::Bye { reason }.encode(&mut bytes);
    let _ = stream.write_all(&bytes);
}

/// Per-connection protocol state.
struct ConnState {
    session: u64,
    epoch: u64,
    last_acked: u64,
    frame_started: Option<Instant>,
    write_stuck_since: Option<Instant>,
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let tick = shared.config.io_tick;
    if stream.set_read_timeout(Some(tick)).is_err() || stream.set_write_timeout(Some(tick)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut decoder = FrameDecoder::new();
    let mut writer = FrameWriter::new();

    // Handshake: the first frame picks the connection's role — a Hello
    // opens a feed session, an all-zero CheckpointOffer subscribes a
    // standby, a PromoteQuery probes the fencing epoch. Anything else
    // within the deadline is a violation.
    let handshake_deadline = Instant::now() + shared.config.handshake_deadline;
    let open = loop {
        if shared.stop.load(Ordering::SeqCst) {
            send_bye(&mut stream, &mut writer, ByeReason::Shutdown);
            return;
        }
        if Instant::now() > handshake_deadline {
            shared
                .stats
                .sessions_evicted
                .fetch_add(1, Ordering::Relaxed);
            send_bye(&mut stream, &mut writer, ByeReason::Evicted);
            return;
        }
        match decoder.read_from(&mut stream) {
            Ok(Message::Hello { resume_session }) => {
                shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                match shared.registry.open(resume_session, Instant::now()) {
                    Ok(open) => break open,
                    Err(OpenError::ServerFull) => {
                        shared
                            .stats
                            .connections_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        send_bye(&mut stream, &mut writer, ByeReason::ServerFull);
                        return;
                    }
                }
            }
            Ok(Message::CheckpointOffer { .. }) => {
                shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                serve_replication(stream, decoder, writer, shared);
                return;
            }
            Ok(Message::PromoteQuery { .. }) => {
                shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                // Fencing probe: answer with our epoch and hang up. A
                // promoting standby that hears this knows the primary is
                // alive and aborts the promotion.
                writer.push(&Message::PromoteQuery {
                    epoch: shared.epoch,
                });
                let _ = writer.flush_into(&mut stream);
                return;
            }
            Ok(_) => {
                shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .sessions_evicted
                    .fetch_add(1, Ordering::Relaxed);
                send_bye(&mut stream, &mut writer, ByeReason::ProtocolError);
                return;
            }
            Err(e) if e.is_timeout() => continue,
            Err(DecodeError::Wire(_)) => {
                shared
                    .stats
                    .frames_malformed
                    .fetch_add(1, Ordering::Relaxed);
                send_bye(&mut stream, &mut writer, ByeReason::ProtocolError);
                return;
            }
            Err(DecodeError::Closed { mid_frame }) => {
                if mid_frame {
                    shared
                        .stats
                        .partial_disconnects
                        .fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            Err(DecodeError::Io(_)) => return,
        }
    };

    let mut conn = ConnState {
        session: open.session,
        epoch: open.epoch,
        last_acked: open.handled_up_to,
        frame_started: None,
        write_stuck_since: None,
    };
    writer.push(&Message::Ack {
        session: open.session,
        handled_up_to: open.handled_up_to,
    });

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            send_bye(&mut stream, &mut writer, ByeReason::Shutdown);
            shared.registry.disconnected(conn.session, conn.epoch);
            return;
        }
        if !shared.registry.epoch_current(conn.session, conn.epoch) {
            // A reconnect took the session over; retire quietly.
            return;
        }

        // Read at most one frame per iteration (the decoder returns as
        // soon as one completes, so a busy peer is served per-frame).
        match decoder.read_from(&mut stream) {
            Ok(msg) => {
                shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                conn.frame_started = None;
                match msg {
                    Message::Report {
                        seq,
                        unit_seq,
                        ts,
                        unit,
                        x,
                        y,
                        trace,
                    } => handle_report(
                        shared,
                        &mut conn,
                        &mut writer,
                        seq,
                        unit_seq,
                        ts,
                        unit,
                        x,
                        y,
                        trace,
                    ),
                    Message::Bye { .. } => {
                        shared.registry.disconnected(conn.session, conn.epoch);
                        let _ = writer.flush_into(&mut stream);
                        return;
                    }
                    // Hello mid-stream, a server-only frame from a
                    // client, or a replication frame on a feed session:
                    // protocol violation.
                    Message::Hello { .. }
                    | Message::Ack { .. }
                    | Message::Shed { .. }
                    | Message::SnapshotPush { .. }
                    | Message::CheckpointOffer { .. }
                    | Message::CheckpointChunk { .. }
                    | Message::WalAppend { .. }
                    | Message::PromoteQuery { .. } => {
                        shared
                            .stats
                            .sessions_evicted
                            .fetch_add(1, Ordering::Relaxed);
                        send_bye(&mut stream, &mut writer, ByeReason::ProtocolError);
                        shared.registry.disconnected(conn.session, conn.epoch);
                        return;
                    }
                }
            }
            Err(e) if e.is_timeout() => {
                // Slowloris: a frame that started but will not finish.
                if decoder.mid_frame() {
                    let started = *conn.frame_started.get_or_insert_with(Instant::now);
                    if started.elapsed() > shared.config.frame_deadline {
                        shared
                            .stats
                            .sessions_evicted
                            .fetch_add(1, Ordering::Relaxed);
                        send_bye(&mut stream, &mut writer, ByeReason::Evicted);
                        shared.registry.disconnected(conn.session, conn.epoch);
                        return;
                    }
                } else {
                    conn.frame_started = None;
                }
            }
            Err(DecodeError::Wire(_)) => {
                shared
                    .stats
                    .frames_malformed
                    .fetch_add(1, Ordering::Relaxed);
                send_bye(&mut stream, &mut writer, ByeReason::ProtocolError);
                shared.registry.disconnected(conn.session, conn.epoch);
                return;
            }
            Err(DecodeError::Closed { mid_frame }) => {
                if mid_frame {
                    shared
                        .stats
                        .partial_disconnects
                        .fetch_add(1, Ordering::Relaxed);
                }
                shared.registry.disconnected(conn.session, conn.epoch);
                return;
            }
            Err(DecodeError::Io(_)) => {
                shared.registry.disconnected(conn.session, conn.epoch);
                return;
            }
        }

        // Outbound: pump sheds and snapshot pushes queued for this session.
        for note in shared.registry.take_outbox(conn.session) {
            match note {
                OutboundNote::Shed { seq, reason } => writer.push(&Message::Shed { seq, reason }),
                OutboundNote::Snapshot { degraded, entries } => {
                    shared
                        .stats
                        .snapshots_pushed
                        .fetch_add(1, Ordering::Relaxed);
                    writer.push(&Message::SnapshotPush { degraded, entries });
                }
            }
        }
        // Ack when the session's terminal line advanced.
        let handled = shared.registry.handled_up_to(conn.session);
        if handled > conn.last_acked {
            conn.last_acked = handled;
            writer.push(&Message::Ack {
                session: conn.session,
                handled_up_to: handled,
            });
        }
        // Flush; evict a peer whose backlog will not drain.
        if writer.pending() > 0 {
            match writer.flush_into(&mut stream) {
                Ok(true) => conn.write_stuck_since = None,
                Ok(false) => {
                    let stuck = *conn.write_stuck_since.get_or_insert_with(Instant::now);
                    if stuck.elapsed() > shared.config.write_deadline
                        || writer.pending() > shared.config.max_write_backlog
                    {
                        shared
                            .stats
                            .sessions_evicted
                            .fetch_add(1, Ordering::Relaxed);
                        shared.registry.disconnected(conn.session, conn.epoch);
                        return;
                    }
                }
                Err(_) => {
                    shared.registry.disconnected(conn.session, conn.epoch);
                    return;
                }
            }
        }
    }
}

/// Serves one replication subscriber: ships the newest durable checkpoint
/// in chunks, then the journal tail, then streams live WAL appends from
/// the pump until the peer leaves, falls too far behind, or we shut down.
fn serve_replication(
    mut stream: TcpStream,
    mut decoder: FrameDecoder,
    mut writer: FrameWriter,
    shared: &Arc<Shared>,
) {
    let Some(dir) = shared.config.state_dir.clone() else {
        // No durable state to ship; refuse the subscribe.
        send_bye(&mut stream, &mut writer, ByeReason::ProtocolError);
        return;
    };
    // Subscribe BEFORE reading the durable state: an append that lands in
    // between is delivered twice (journal read + live tail) and the
    // standby's gate deduplicates it; the reverse order would drop it.
    let sub = shared.replication.subscribe();
    let epoch = shared.epoch;
    let Ok((checkpoint, journal)) = DurableState::load(&dir) else {
        shared.replication.unsubscribe(&sub);
        send_bye(&mut stream, &mut writer, ByeReason::Shutdown);
        return;
    };
    let mut body = Vec::new();
    if checkpoint.write(&mut body).is_err() {
        shared.replication.unsubscribe(&sub);
        send_bye(&mut stream, &mut writer, ByeReason::Shutdown);
        return;
    }
    writer.push(&Message::CheckpointOffer {
        epoch,
        slot_seq: 0,
        total_len: convert::count64(body.len()),
    });
    let mut offset = 0usize;
    while offset < body.len() {
        let end = (offset + MAX_CHUNK_DATA).min(body.len());
        writer.push(&Message::CheckpointChunk {
            epoch,
            offset: convert::count64(offset),
            data: body[offset..end].to_vec(),
        });
        offset = end;
    }
    for report in journal {
        writer.push(&Message::WalAppend {
            epoch,
            unit_seq: report.seq,
            ts: report.ts,
            unit: report.update.unit.0,
            x: report.update.new.x,
            y: report.update.new.y,
            // The durable journal does not persist trace ids; only the
            // live tail shipped by the pump carries them.
            trace: 0,
        });
    }
    let mut write_stuck: Option<Instant> = None;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            send_bye(&mut stream, &mut writer, ByeReason::Shutdown);
            break;
        }
        // ctup-lint: allow(L008, one-way overflow latch; a stale false costs one extra drain pass)
        if sub.overflowed.load(Ordering::Relaxed) {
            shared
                .stats
                .sessions_evicted
                .fetch_add(1, Ordering::Relaxed);
            send_bye(&mut stream, &mut writer, ByeReason::Evicted);
            break;
        }
        // Drain the outbox into a local batch first: no socket write
        // happens while the outbox lock is held.
        let batch: Vec<Message> = {
            let mut queue = match sub.queue.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            queue.drain(..).collect()
        };
        for msg in &batch {
            writer.push(msg);
        }
        if writer.pending() > 0 {
            match writer.flush_into(&mut stream) {
                Ok(true) => write_stuck = None,
                Ok(false) => {
                    let stuck = *write_stuck.get_or_insert_with(Instant::now);
                    if stuck.elapsed() > shared.config.write_deadline
                        || writer.pending() > shared.config.max_write_backlog
                    {
                        shared
                            .stats
                            .sessions_evicted
                            .fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        match decoder.read_from(&mut stream) {
            Ok(Message::Bye { .. }) => break,
            Ok(_) => {
                // A subscriber has nothing else to say on this wire.
                shared
                    .stats
                    .frames_malformed
                    .fetch_add(1, Ordering::Relaxed);
                send_bye(&mut stream, &mut writer, ByeReason::ProtocolError);
                break;
            }
            Err(e) if e.is_timeout() => {}
            Err(_) => break,
        }
    }
    shared.replication.unsubscribe(&sub);
}

/// Classifies and admits (or sheds) one report. `wire_trace` is the
/// trace id the client stamped on the frame (0 for v1 clients and
/// unsampled reports); an untraced fresh report may still be head-sampled
/// here at the server's own rate.
#[allow(clippy::too_many_arguments)]
fn handle_report(
    shared: &Arc<Shared>,
    conn: &mut ConnState,
    writer: &mut FrameWriter,
    seq: u64,
    unit_seq: u64,
    ts: u64,
    unit: u32,
    x: f64,
    y: f64,
    wire_trace: u64,
) {
    let spans = shared.config.spans.as_deref();
    let admit_start = now_nanos();
    match shared.registry.classify(conn.session, seq) {
        ReportClass::Replay => {
            // Replays never re-enter the pipeline, so they record no
            // spans either: a retransmit maps onto the spans its first
            // delivery already produced (span ids are deterministic).
            shared
                .stats
                .replays_suppressed
                .fetch_add(1, Ordering::Relaxed);
        }
        ReportClass::QuotaExceeded => {
            shed_at_door(
                shared,
                conn,
                writer,
                seq,
                ShedReason::SessionQuota,
                wire_trace,
                admit_start,
            );
        }
        ReportClass::Fresh => {
            // ctup-lint: allow(L008, best-effort shed gate; a stale read admits or sheds one extra report)
            if shared.degraded.load(Ordering::Relaxed) {
                shed_at_door(
                    shared,
                    conn,
                    writer,
                    seq,
                    ShedReason::EngineDegraded,
                    wire_trace,
                    admit_start,
                );
                return;
            }
            // Server-side head sampling for untraced reports. The
            // decision and the minted id are pure functions of the seq,
            // so a reconnect retransmit that raced the dedup line would
            // land on the same trace rather than forking a new one.
            let mut trace = wire_trace;
            if trace == 0 {
                if let Some(sink) = spans {
                    trace = sample_trace(
                        shared.config.trace_seed ^ conn.session,
                        seq,
                        shared.config.trace_sample_every,
                    );
                    if trace != 0 {
                        sink.note_trace_sampled();
                    }
                }
            }
            let report = StampedUpdate {
                seq: unit_seq,
                ts,
                update: LocationUpdate {
                    unit: UnitId(unit),
                    new: Point::new(x, y),
                },
            };
            let enqueued_nanos = if trace != 0 { now_nanos() } else { 0 };
            let queued = QueuedReport {
                session: conn.session,
                seq,
                report,
                enqueued_at: Instant::now(),
                trace,
                enqueued_nanos,
            };
            // The seq must be in the session's pending run BEFORE the
            // queue can hand the item to the pump: a fast engine drains
            // the instant it lands, and `drained()` finding nothing to
            // remove would leave a ghost entry pinning the ack line.
            shared.registry.note_enqueued(conn.session, seq);
            match shared.queue.try_enqueue(queued) {
                Ok(()) => {
                    if trace != 0 {
                        if let Some(sink) = spans {
                            // Ends at the enqueue stamp so the queue-wait
                            // span starts exactly where this one stops.
                            sink.record_stage(
                                trace,
                                Stage::SessionAdmit,
                                0,
                                admit_start,
                                enqueued_nanos,
                                wire_trace != 0,
                            );
                        }
                    }
                }
                Err(reason) => {
                    shared.registry.retract_pending(conn.session, seq);
                    shed_at_door(shared, conn, writer, seq, reason, wire_trace, admit_start);
                }
            }
        }
    }
}

fn shed_at_door(
    shared: &Arc<Shared>,
    conn: &ConnState,
    writer: &mut FrameWriter,
    seq: u64,
    reason: ShedReason,
    wire_trace: u64,
    admit_start: u64,
) {
    shared.registry.note_shed_at_door(conn.session, seq);
    shared.stats.record_shed(reason);
    // Door sheds are always traced — overload episodes are exactly when
    // an operator needs exemplar traces — so an untraced report gets a
    // trace minted here (deterministically, same id a sampled admit of
    // this seq would have gotten).
    if let Some(sink) = shared.config.spans.as_deref() {
        let trace = if wire_trace != 0 {
            wire_trace
        } else {
            sink.note_trace_sampled();
            mint_trace(shared.config.trace_seed ^ conn.session, seq)
        };
        let now = now_nanos();
        sink.record_stage(
            trace,
            Stage::SessionAdmit,
            0,
            admit_start,
            now,
            wire_trace != 0,
        );
        sink.record_stage(trace, Stage::Shed, u32::from(reason.code()), now, now, true);
    }
    writer.push(&Message::Shed { seq, reason });
}

fn send_bye(stream: &mut TcpStream, writer: &mut FrameWriter, reason: ByeReason) {
    writer.push(&Message::Bye { reason });
    let _ = writer.flush_into(stream);
}

/// The single engine feeder: drains the admission queue in arrival order.
///
/// Ack discipline: a report handed to the sink joins the in-flight tail
/// and is acked (drained in the registry, counted accepted) only once the
/// sink's durable mark covers its hand-off index. On engine death the
/// tail is exactly the set of reports that may not have reached the
/// journal — [`try_recover`] re-feeds it to the revived engine, whose
/// replayed gate state drops whatever the journal already covered, so
/// every report is applied exactly once and no ack is ever retracted.
fn pump_loop(shared: &Arc<Shared>) {
    let tick = shared.config.io_tick;
    let deadline = shared.config.admission.ingest_deadline;
    // Reports handed to the *current* sink, in order; index 1 is the
    // first hand-off after the sink was installed.
    let mut handed: u64 = 0;
    let mut inflight: VecDeque<(u64, QueuedReport)> = VecDeque::new();
    loop {
        drain_acks(shared, &mut inflight);
        let stopping = shared.stop.load(Ordering::SeqCst);
        let Some(item) = shared.queue.pop(tick) else {
            if stopping {
                finish_inflight(shared, &mut inflight);
                return;
            }
            // Idle liveness probe: with the queue drained, a dead engine
            // would never be discovered through a failing hand-off, so the
            // unacked tail would hang forever. Probe and recover in place.
            // ctup-lint: allow(L008, one-way latch; a stale false costs one extra probe pass)
            if !shared.engine_dead.load(Ordering::Relaxed)
                && !inflight.is_empty()
                && shared.sink().dead()
            {
                let _ = try_recover(shared, &mut handed, &mut inflight);
            }
            continue;
        };
        let wait = item.enqueued_at.elapsed();
        if wait > deadline {
            pump_shed(shared, &item, ShedReason::DeadlineExceeded);
            continue;
        }
        // ctup-lint: allow(L008, one-way latch; a stale false costs one extra try_ingest which re-reports Dead)
        if shared.engine_dead.load(Ordering::Relaxed) {
            pump_shed(shared, &item, ShedReason::EngineDegraded);
            continue;
        }
        // Bounded retry against engine backpressure: the admission queue
        // is the elastic buffer, so all we do here is wait out short
        // bursts — the ingest deadline still bounds the total wait.
        loop {
            let sink = shared.sink();
            let handed_nanos = if item.trace != 0 { now_nanos() } else { 0 };
            match sink.try_ingest(TracedReport {
                report: item.report,
                trace: item.trace,
                handed_nanos,
            }) {
                Ok(()) => {
                    handed += 1;
                    if item.trace != 0 {
                        if let Some(spans) = shared.config.spans.as_deref() {
                            // Queue wait: admission-queue entry to this
                            // successful hand-off (the engine-apply span
                            // picks up at `handed_nanos`).
                            let q0 = if item.enqueued_nanos != 0 {
                                item.enqueued_nanos
                            } else {
                                handed_nanos
                            };
                            spans.record_stage(
                                item.trace,
                                Stage::QueueWait,
                                0,
                                q0,
                                handed_nanos,
                                true,
                            );
                        }
                    }
                    // Ship to standbys at hand-off: the ack waits on the
                    // durable mark, so no acked report can be missing
                    // from the stream, and a shed report never ships.
                    shared.replication.ship(&Message::WalAppend {
                        epoch: shared.epoch,
                        unit_seq: item.report.seq,
                        ts: item.report.ts,
                        unit: item.report.update.unit.0,
                        x: item.report.update.new.x,
                        y: item.report.update.new.y,
                        trace: item.trace,
                    });
                    inflight.push_back((handed, item));
                    break;
                }
                Err(SinkError::Backpressure) => {
                    if item.enqueued_at.elapsed() > deadline {
                        pump_shed(shared, &item, ShedReason::DeadlineExceeded);
                        break;
                    }
                    drain_acks(shared, &mut inflight);
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(SinkError::Dead) => {
                    if try_recover(shared, &mut handed, &mut inflight) {
                        // Revived: retry this item on the fresh sink.
                        continue;
                    }
                    pump_shed(shared, &item, ShedReason::EngineDegraded);
                    break;
                }
            }
        }
    }
}

/// Acks every in-flight report the sink's durable mark now covers.
fn drain_acks(shared: &Arc<Shared>, inflight: &mut VecDeque<(u64, QueuedReport)>) {
    if inflight.is_empty() {
        return;
    }
    let mark = shared.sink().durable_mark();
    while inflight.front().is_some_and(|&(idx, _)| idx <= mark) {
        if let Some((_, item)) = inflight.pop_front() {
            shared
                .stats
                .reports_accepted
                .fetch_add(1, Ordering::Relaxed);
            let wait = convert::nanos64(item.enqueued_at.elapsed().as_nanos());
            shared.stats.ingest_wait_nanos.record(wait);
            shared.stats.record_exemplar(wait, item.trace);
            shared.registry.drained(item.session, item.seq);
            // ctup-lint: allow(L008, monotone liveness counter; the watchdog only compares snapshots)
            shared.progress.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Level-1 self-healing. Called with the engine dead: rebuilds it via the
/// recovery plan (bounded by the circuit breaker), re-feeds the unacked
/// in-flight tail to the revived sink, swaps it in, and exits degraded
/// mode. Returns `false` once the breaker trips, revival is impossible
/// (no plan), or we are shutting down — the sticky-degraded legacy path.
fn try_recover(
    shared: &Arc<Shared>,
    handed: &mut u64,
    inflight: &mut VecDeque<(u64, QueuedReport)>,
) -> bool {
    // ctup-lint: allow(L008, one-way latch; readers act on it eventually, nothing is gated on order)
    shared.engine_dead.store(true, Ordering::Relaxed);
    shared.set_degraded(true);
    let Some(plan) = shared.recovery.as_ref() else {
        let dropped: Vec<QueuedReport> = inflight.drain(..).map(|(_, item)| item).collect();
        shed_items(shared, dropped);
        return false;
    };
    // The unacked tail: reports handed to the dead sink whose journal
    // coverage is unknown. Safe to re-feed — the revived gate's replayed
    // dedup state drops whatever the journal already covered. (They were
    // already shipped to standbys at first hand-off, so no re-ship here.)
    let pending: Vec<QueuedReport> = inflight.drain(..).map(|(_, item)| item).collect();
    *handed = 0;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            shed_items(shared, pending);
            return false;
        }
        let delay = {
            let mut breaker = match shared.breaker.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            breaker.before_attempt(Instant::now())
        };
        let Some(delay) = delay else {
            // Budget exhausted: the breaker is now tripped for good.
            shed_items(shared, pending);
            return false;
        };
        // The breaker guard is dropped before this sleep.
        std::thread::sleep(delay);
        {
            let mut breaker = match shared.breaker.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            breaker.record_attempt(Instant::now());
        }
        let Ok(new_sink) = plan.reviver.revive() else {
            continue;
        };
        if reingest(&new_sink, &pending, handed, inflight) {
            {
                let mut sink = match shared.sink.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                *sink = new_sink;
            }
            shared.stats.engine_restarts.fetch_add(1, Ordering::Relaxed);
            // ctup-lint: allow(L008, one-way latch cleared by its only writer; the watchdog re-reads every tick)
            shared.engine_dead.store(false, Ordering::Relaxed);
            shared.set_degraded(false);
            return true;
        }
        // The fresh sink died during the re-feed; the next budgeted
        // attempt replays from its journal, so nothing was lost.
        inflight.clear();
        *handed = 0;
    }
}

/// Feeds the unacked tail into a freshly revived sink, rebuilding the
/// in-flight numbering. `false` if the sink died underneath us.
fn reingest(
    sink: &Arc<dyn EngineSink>,
    pending: &[QueuedReport],
    handed: &mut u64,
    inflight: &mut VecDeque<(u64, QueuedReport)>,
) -> bool {
    *handed = 0;
    inflight.clear();
    let give_up = Instant::now() + Duration::from_secs(5);
    for item in pending {
        loop {
            // The trace rides along so the revived engine's apply spans
            // land on the same tree; `handed_nanos` 0 lets the supervisor
            // stamp the re-apply at receive time.
            match sink.try_ingest(TracedReport {
                report: item.report,
                trace: item.trace,
                handed_nanos: 0,
            }) {
                Ok(()) => {
                    *handed += 1;
                    inflight.push_back((*handed, item.clone()));
                    break;
                }
                Err(SinkError::Backpressure) => {
                    if Instant::now() > give_up {
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(SinkError::Dead) => return false,
            }
        }
    }
    true
}

/// Sheds a batch of queued reports with `EngineDegraded`.
fn shed_items(shared: &Arc<Shared>, items: Vec<QueuedReport>) {
    for item in &items {
        pump_shed(shared, item, ShedReason::EngineDegraded);
    }
}

/// Waits (bounded) for the engine to take durable ownership of the
/// in-flight tail at shutdown, then sheds whatever is left.
fn finish_inflight(shared: &Arc<Shared>, inflight: &mut VecDeque<(u64, QueuedReport)>) {
    let deadline = Instant::now() + Duration::from_secs(5);
    // ctup-lint: allow(L008, one-way latch; a stale read costs one extra wait tick)
    while !shared.engine_dead.load(Ordering::Relaxed)
        && !inflight.is_empty()
        && Instant::now() < deadline
    {
        drain_acks(shared, inflight);
        if inflight.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let rest: Vec<QueuedReport> = inflight.drain(..).map(|(_, item)| item).collect();
    shed_items(shared, rest);
}

fn pump_shed(shared: &Arc<Shared>, item: &QueuedReport, reason: ShedReason) {
    shared.stats.record_shed(reason);
    shared
        .registry
        .shed_at_drain(item.session, item.seq, reason);
    // Drain sheds are always traced, like door sheds: an already-traced
    // item gets a shed leaf under its session-admit span (spanning its
    // fruitless queue wait); an untraced one gets a fresh root so the
    // shed is still visible in the dump.
    if let Some(sink) = shared.config.spans.as_deref() {
        let now = now_nanos();
        if item.trace != 0 {
            let start = if item.enqueued_nanos != 0 {
                item.enqueued_nanos
            } else {
                now
            };
            sink.record_stage(
                item.trace,
                Stage::Shed,
                u32::from(reason.code()),
                start,
                now,
                true,
            );
        } else {
            sink.note_trace_sampled();
            let trace = mint_trace(shared.config.trace_seed ^ item.session, item.seq);
            sink.record_stage(
                trace,
                Stage::Shed,
                u32::from(reason.code()),
                now,
                now,
                false,
            );
        }
    }
    // ctup-lint: allow(L008, monotone liveness counter; the watchdog only compares snapshots)
    shared.progress.fetch_add(1, Ordering::Relaxed);
}

/// Degraded-mode control loop plus housekeeping.
fn watchdog_loop(shared: &Arc<Shared>) {
    let tick = shared.config.watchdog_tick.max(Duration::from_millis(1));
    let push_every = shared.config.snapshot_push_interval;
    // ctup-lint: allow(L008, monotone liveness counter; the watchdog only compares snapshots)
    let mut last_progress = shared.progress.load(Ordering::Relaxed);
    let mut progress_moved_at = Instant::now();
    let mut last_push = Instant::now();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(tick);

        // Track pump progress.
        // ctup-lint: allow(L008, monotone liveness counter; a missed tick just delays the stall verdict)
        let progress = shared.progress.load(Ordering::Relaxed);
        if progress != last_progress {
            last_progress = progress;
            progress_moved_at = Instant::now();
        }

        // ctup-lint: allow(L008, one-way latch; the watchdog re-reads it every tick)
        let engine_dead = shared.engine_dead.load(Ordering::Relaxed);
        let depth = shared.queue.depth();
        // ctup-lint: allow(L008, degraded transitions are decided between the watchdog and the recovering pump, both of which re-read every pass)
        let degraded = shared.degraded.load(Ordering::Relaxed);
        if engine_dead {
            shared.set_degraded(true);
        } else if !degraded {
            let backlogged = depth >= shared.config.admission.high_watermark.max(1);
            let stalled =
                progress_moved_at.elapsed() > shared.config.admission.stall_grace && depth > 0;
            if backlogged && stalled {
                shared.set_degraded(true);
            }
        } else if depth <= shared.config.admission.low_watermark
            && progress_moved_at.elapsed() <= shared.config.admission.stall_grace
        {
            // Backlog drained and the pump is moving again: recover.
            shared.set_degraded(false);
        }

        // Keep the degraded-duration gauge fresh for scrapes.
        shared
            .stats
            .degraded_since_ms
            .store(shared.degraded_for_ms(), Ordering::Relaxed);

        // Mirror the span sink's counters into the scrapeable stats.
        if let Some(sink) = shared.config.spans.as_deref() {
            shared
                .stats
                .spans_dropped
                .store(sink.dropped(), Ordering::Relaxed);
            shared
                .stats
                .traces_sampled
                .store(sink.sampled(), Ordering::Relaxed);
        }

        // Refresh the last-good top-k while the engine is alive.
        if !engine_dead {
            let fresh = shared.sink().topk();
            let mut guard = match shared.last_good.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *guard = fresh;
        }

        // Session GC and snapshot pushes.
        shared.registry.gc(Instant::now());
        if !push_every.is_zero() && last_push.elapsed() >= push_every {
            last_push = Instant::now();
            let entries: Vec<(u32, i64)> = {
                let guard = match shared.last_good.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                guard.iter().map(|e| (e.place.0, e.safety)).collect()
            };
            // ctup-lint: allow(L008, the degraded label on a snapshot is advisory)
            let now_degraded = shared.degraded.load(Ordering::Relaxed);
            shared.registry.push_snapshot_all(now_degraded, &entries);
        }
    }
}
