//! OptCTUP — the paper's optimized scheme (§IV).
//!
//! All cells stay dark; instead of whole illuminated cells, a global set of
//! *maintained places* holds exactly the places that were unsafer than
//! `SK + Δ` when their cell was last accessed. Per-cell lower bounds cover
//! only the non-maintained places and are maintained with Table II, whose
//! Decrease-Once Optimization (DecHash) caps the damage any single unit can
//! do to a bound. Accessing a cell re-filters its places and re-establishes
//! the bound at least `Δ` above `SK`, suppressing the flashing phenomenon.

pub mod dechash;
pub mod lb;

use crate::algorithm::{CtupAlgorithm, InitStats, UpdateStats};
use crate::cells::{classify_with_margin, touched_cells};
use crate::config::CtupConfig;
use crate::lbdir::LbDirectory;
use crate::maintained::MaintainedSet;
use crate::metrics::Metrics;
use crate::parallel::ShardMap;
use crate::types::{LocationUpdate, Safety, TopKEntry, UnitId, LB_NONE};
use crate::units::UnitTable;
use ctup_obs::PhaseTimer;
use ctup_spatial::{convert, CellId, Circle, Grid, Point, Relation};
use ctup_storage::{PlaceStore, StorageError};
use dechash::DecHash;
use lb::{opt_transition, HashOp};
use std::sync::Arc;
use std::time::Instant;

use self::lb::basic_fallback;

/// The OptCTUP query processor.
pub struct OptCtup {
    config: CtupConfig,
    store: Arc<dyn PlaceStore>,
    grid: Grid,
    units: UnitTable,
    /// Lower bounds over the non-maintained places of every cell.
    lb: LbDirectory,
    /// Selectively maintained (unsafe) places with exact safeties.
    maintained: MaintainedSet,
    dechash: DecHash,
    last_result: Vec<TopKEntry>,
    metrics: Metrics,
    init_stats: InitStats,
    /// Cell-ownership filter for sharded execution: the instance maintains
    /// only the cells [`ShardMap::owns`] assigns to `shard`. The default —
    /// shard 0 of a one-shard map — owns every cell and is the plain
    /// sequential scheme.
    shard: u32,
    shards: Arc<ShardMap>,
}

impl std::fmt::Debug for OptCtup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptCtup")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl OptCtup {
    /// Builds the scheme over `store` and runs the paper's initialization
    /// (§IV.D): exact per-cell bounds, accesses in increasing bound order,
    /// then eviction of everything at or above `SK + Δ`. Fails if a cell
    /// read hits a storage fault.
    pub fn new(
        config: CtupConfig,
        store: Arc<dyn PlaceStore>,
        initial_units: &[Point],
    ) -> Result<Self, StorageError> {
        Self::new_sharded(config, store, initial_units, 0, 1)
    }

    /// Builds the scheme restricted to the cells owned by `shard` out of
    /// `num_shards` under the legacy striping (`cell.index() % num_shards
    /// == shard`); see [`OptCtup::new_with_shard_map`] for arbitrary
    /// assignments. `(0, 1)` is the unsharded scheme.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero or `shard >= num_shards` — a
    /// construction-time configuration bug, like `config.validate()`.
    pub fn new_sharded(
        config: CtupConfig,
        store: Arc<dyn PlaceStore>,
        initial_units: &[Point],
        shard: u32,
        num_shards: u32,
    ) -> Result<Self, StorageError> {
        assert!(
            num_shards >= 1 && shard < num_shards,
            "shard {shard} out of range for {num_shards} shards"
        );
        Self::new_with_shard_map(
            config,
            store,
            initial_units,
            shard,
            Arc::new(ShardMap::modulo(num_shards)),
        )
    }

    /// Builds the scheme restricted to the cells `shards` assigns to
    /// `shard`. Non-owned cells are never read: their bounds stay at
    /// [`LB_NONE`], so the access loop and the invariant checker skip
    /// them, and the instance behaves exactly like a sequential `OptCtup`
    /// over the restricted place universe. Updates must still be fed for
    /// *all* units — the unit table is global.
    ///
    /// # Panics
    /// Panics if `shard >= shards.num_shards()`.
    pub fn new_with_shard_map(
        config: CtupConfig,
        store: Arc<dyn PlaceStore>,
        initial_units: &[Point],
        shard: u32,
        shards: Arc<ShardMap>,
    ) -> Result<Self, StorageError> {
        config.validate();
        assert!(
            shard < shards.num_shards(),
            "shard {shard} out of range for {} shards",
            shards.num_shards()
        );
        let start = Instant::now();
        let io_before = store.stats().snapshot();
        let grid = store.grid().clone();
        let units = UnitTable::new(grid.clone(), initial_units, config.protection_radius);

        let mut this = OptCtup {
            lb: LbDirectory::new(grid.num_cells()),
            maintained: MaintainedSet::new(),
            dechash: DecHash::new(),
            last_result: Vec::new(),
            metrics: Metrics::default(),
            init_stats: InitStats::default(),
            config,
            store,
            grid,
            units,
            shard,
            shards,
        };

        // Step 1: exact lower bound per owned cell; non-owned cells keep
        // LB_NONE and are invisible from here on.
        let mut safeties_computed = 0u64;
        for cell in this.grid.cells() {
            if !this.owns_cell(cell) {
                continue;
            }
            let records = this.store.read_cell(cell)?;
            let mut min = LB_NONE;
            for record in records.iter() {
                min = min.min(this.units.safety(record));
                safeties_computed += 1;
            }
            this.lb.set(cell, min);
        }

        // Steps 2–3: access cells in increasing bound order; each access
        // keeps the places below SK + Δ and re-establishes the bound.
        this.access_loop()?;

        // Step 4: DecHash starts empty (nothing was decremented yet).
        this.dechash.clear();

        this.metrics = Metrics::default();
        this.metrics
            .set_maintained(convert::count64(this.maintained.len()));
        this.last_result = this.maintained.result(this.config.mode);
        this.init_stats = InitStats {
            wall: start.elapsed(),
            storage: this.store.stats().snapshot().since(&io_before),
            safeties_computed,
        };
        Ok(this)
    }

    /// Whether this instance owns `cell` under its shard filter.
    fn owns_cell(&self, cell: CellId) -> bool {
        self.shards.num_shards() <= 1 || self.shards.owns(self.shard, cell)
    }

    /// Loads a cell, refreshes the maintained subset of its places, purges
    /// its DecHash entries and re-establishes its lower bound (§IV.E
    /// step 3).
    ///
    /// The paper adjusts `SK` "as the safety of each place is calculated"
    /// and then evicts at `SK + Δ`; inserting all places just to evict most
    /// of them again would dominate the access cost, so the post-inclusion
    /// `SK` is computed by merging the cell's sorted safeties with the
    /// global ordered view, and only the keepers ever enter the structures.
    fn access_cell(&mut self, cell: CellId) -> Result<(), StorageError> {
        // Read first: a failed access leaves the maintained set intact.
        let records = self.store.read_cell(cell)?;
        self.maintained.remove_cell(cell);
        self.metrics.cells_accessed += 1;
        self.metrics.places_loaded += convert::count64(records.len());

        let mut safeties: Vec<Safety> = records
            .iter()
            .map(|record| self.units.safety(record))
            .collect();

        // SK as it would be with this cell's places included.
        let sk = match self.config.mode {
            crate::config::QueryMode::TopK(k) => {
                let mut sorted = safeties.clone();
                sorted.sort_unstable();
                let mut cell_iter = sorted.into_iter().peekable();
                let mut global_iter = self.maintained.ordered().iter().peekable();
                let mut kth = LB_NONE;
                for _ in 0..k {
                    let take_cell = match (cell_iter.peek(), global_iter.peek()) {
                        (Some(&c), Some(&(g, _))) => c <= g,
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => {
                            kth = LB_NONE;
                            break;
                        }
                    };
                    // Both arms just peeked `Some`, so the fallbacks are
                    // unreachable; LB_NONE degrades to "no k-th place".
                    kth = if take_cell {
                        cell_iter.next().unwrap_or(LB_NONE)
                    } else {
                        global_iter.next().map(|e| e.0).unwrap_or(LB_NONE)
                    };
                }
                if cell_iter.peek().is_none() && global_iter.peek().is_none() {
                    // Fewer than k places exist in total.
                    let total = self.maintained.len() + safeties.len();
                    if total < k {
                        kth = LB_NONE;
                    }
                }
                kth
            }
            crate::config::QueryMode::Threshold(tau) => tau,
        };

        // Keep everything below SK + Δ; never evict at or below SK itself
        // (with Δ = 0 the paper's literal rule would evict the k-th place,
        // dropping the maintained set below k and re-accessing forever).
        let keep_below = sk.saturating_add(self.config.delta);
        let must_evict = |safety: Safety| safety >= keep_below && safety > sk;
        let mut lb = LB_NONE;
        for (record, safety) in records.iter().zip(safeties.drain(..)) {
            if must_evict(safety) {
                lb = lb.min(safety);
            } else {
                self.maintained.insert(record.clone(), safety, cell);
            }
        }
        self.lb.set(cell, lb);

        // Soundness fix: the bound is exact again, so stale "already
        // decremented" records for this cell must go (DESIGN.md §3.3).
        if self.config.purge_dechash_on_access {
            self.dechash.purge_cell(cell);
        }
        Ok(())
    }

    /// Accesses cells, cheapest bound first, until none is below `SK`.
    fn access_loop(&mut self) -> Result<u64, StorageError> {
        let mut count = 0;
        loop {
            let sk = self.maintained.sk_eff(self.config.mode);
            match self.lb.first() {
                Some((lb0, cell)) if lb0 < sk => {
                    self.access_cell(cell)?;
                    count += 1;
                }
                _ => break,
            }
        }
        Ok(count)
    }

    /// Table II (or Table I when DOO is disabled) over the affected cells.
    fn maintain_lower_bounds(
        &mut self,
        unit: UnitId,
        old_region: &Circle,
        new_region: &Circle,
        touched: &[CellId],
    ) {
        for &cell in touched {
            let rect = self.grid.cell_rect(cell);
            let margin = self.store.cell_extent_margin(cell);
            let rel_old = classify_with_margin(old_region, &rect, margin);
            let rel_new = classify_with_margin(new_region, &rect, margin);
            let (delta, op) = if self.config.doo_enabled {
                let in_hash = self.dechash.contains(unit, cell);
                debug_assert!(
                    !(rel_old == Relation::Full && in_hash),
                    "unit {unit:?} hashed while fully containing {cell:?}"
                );
                let (delta, op) = opt_transition(rel_old, rel_new, in_hash);
                if in_hash && delta == 0 && rel_old == Relation::Partial {
                    self.metrics.lb_decrements_suppressed += 1;
                }
                (delta, op)
            } else {
                (basic_fallback(rel_old, rel_new), HashOp::Keep)
            };
            match op {
                HashOp::Keep => {}
                HashOp::Insert => {
                    self.dechash.insert(unit, cell);
                }
                HashOp::Remove => {
                    self.dechash.remove(unit, cell);
                }
            }
            if delta != 0 {
                self.lb.add(cell, delta);
                if delta > 0 {
                    self.metrics.lb_increments += 1;
                } else {
                    self.metrics.lb_decrements += 1;
                }
            }
        }
        self.metrics.dechash_len = convert::count64(self.dechash.len());
    }

    /// Captures the complete higher-level state for failover
    /// (see [`crate::checkpoint::Checkpoint`]).
    pub fn checkpoint(&self) -> crate::checkpoint::Checkpoint {
        crate::checkpoint::Checkpoint {
            config: self.config.clone(),
            layout: self.store.layout(),
            unit_positions: self.units.iter().map(|u| u.pos).collect(),
            lower_bounds: self.grid.cells().map(|c| self.lb.get(c)).collect(),
            maintained: self
                .maintained
                .iter()
                .map(|m| (m.place.clone(), m.safety, m.cell))
                .collect(),
            dechash: self.dechash.iter().collect(),
            gate: None,
        }
    }

    /// Resumes monitoring from a checkpoint over the same lower level. The
    /// store's grid must match the checkpointed cell count; the restored
    /// monitor continues exactly where [`OptCtup::checkpoint`] stopped
    /// (metrics start fresh). A checkpoint that is inconsistent with the
    /// store — or internally — yields a [`CheckpointError::Invalid`]
    /// instead of panicking, so a standby can refuse a bad file and keep
    /// serving.
    pub fn restore(
        checkpoint: crate::checkpoint::Checkpoint,
        store: Arc<dyn PlaceStore>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        let grid = store.grid().clone();
        checkpoint.validate(grid.num_cells())?;
        if checkpoint.layout != store.layout() {
            return Err(crate::checkpoint::CheckpointError::Invalid(format!(
                "checkpoint was taken over a {} store but the standby's store is {}",
                checkpoint.layout,
                store.layout()
            )));
        }
        let units = UnitTable::new(
            grid.clone(),
            &checkpoint.unit_positions,
            checkpoint.config.protection_radius,
        );
        let mut lb = LbDirectory::new(grid.num_cells());
        for (cell, &bound) in grid.cells().zip(&checkpoint.lower_bounds) {
            lb.set(cell, bound);
        }
        let mut maintained = MaintainedSet::new();
        for (place, safety, cell) in checkpoint.maintained {
            maintained.insert(place, safety, cell);
        }
        let mut dechash = DecHash::new();
        for (unit, cell) in checkpoint.dechash {
            dechash.insert(unit, cell);
        }
        let mut metrics = Metrics::default();
        metrics.set_maintained(convert::count64(maintained.len()));
        metrics.dechash_len = convert::count64(dechash.len());
        let last_result = maintained.result(checkpoint.config.mode);
        Ok(OptCtup {
            config: checkpoint.config,
            store,
            grid,
            units,
            lb,
            maintained,
            dechash,
            last_result,
            metrics,
            init_stats: InitStats::default(),
            shard: 0,
            shards: Arc::new(ShardMap::modulo(1)),
        })
    }

    /// The lower-level store the monitor runs over.
    pub fn store(&self) -> Arc<dyn PlaceStore> {
        self.store.clone()
    }

    /// Read-only view of a cell's lower bound (testing/diagnostics).
    pub fn cell_lower_bound(&self, cell: CellId) -> Safety {
        self.lb.get(cell)
    }

    /// Number of places currently maintained.
    pub fn maintained_places(&self) -> usize {
        self.maintained.len()
    }

    /// Number of `(unit, cell)` pairs in the DecHash.
    pub fn dechash_len(&self) -> usize {
        self.dechash.len()
    }

    /// Asserts the scheme's soundness invariant: for every cell, the lower
    /// bound is at most the DecHash-discounted safety of every
    /// non-maintained place in it (DESIGN.md §3.3 and §4). Reads the lower
    /// level without affecting results. Test/diagnostic use.
    pub fn check_lb_invariant(&self) {
        let radius = self.config.protection_radius;
        for cell in self.grid.cells() {
            let lb = self.lb.get(cell);
            if lb == LB_NONE {
                continue;
            }
            let records = self
                .store
                .read_cell(cell)
                // ctup-lint: allow(L001, the invariant checker is an assertion harness — an unreadable cell must fail the calling test)
                .unwrap_or_else(|e| panic!("invariant check could not read {cell:?}: {e}"));
            for record in records.iter() {
                if self.maintained.contains(record.id) {
                    continue;
                }
                let safety = self.units.safety(record);
                // Discount every hashed unit's current contribution.
                let mut discount: Safety = 0;
                for u in self.units.iter() {
                    if self.dechash.contains(u.id, cell)
                        && crate::types::protects(u.pos, radius, record)
                    {
                        discount += 1;
                    }
                }
                assert!(
                    lb <= safety - discount,
                    "cell {cell:?}: lb {lb} exceeds discounted safety {} of {:?} \
                     (safety {safety}, discount {discount})",
                    safety - discount,
                    record.id
                );
            }
        }
    }
}

impl crate::checkpoint::Checkpointable for OptCtup {
    fn checkpoint(&self) -> crate::checkpoint::Checkpoint {
        OptCtup::checkpoint(self)
    }

    fn restore(
        checkpoint: crate::checkpoint::Checkpoint,
        store: Arc<dyn PlaceStore>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        OptCtup::restore(checkpoint, store)
    }

    fn store(&self) -> Arc<dyn PlaceStore> {
        OptCtup::store(self)
    }
}

impl CtupAlgorithm for OptCtup {
    fn name(&self) -> &'static str {
        "opt"
    }

    fn config(&self) -> &CtupConfig {
        &self.config
    }

    fn handle_update(&mut self, update: LocationUpdate) -> Result<UpdateStats, StorageError> {
        let radius = self.config.protection_radius;
        let mut timer = PhaseTimer::start();
        let old = self.units.apply(update);
        let old_region = Circle::new(old, radius);
        let new_region = Circle::new(update.new, radius);

        let mut touched = touched_cells(&self.grid, &old_region, &new_region);
        if self.shards.num_shards() > 1 {
            // Sharded: only owned cells carry state here; the other shards
            // handle the rest of the touched set from the same update.
            touched.retain(|&cell| self.owns_cell(cell));
        }

        // Step 1: exact safeties of maintained places.
        self.maintained
            .apply_unit_move(old, update.new, radius, &touched);

        // Step 2: Table II lower-bound maintenance.
        self.maintain_lower_bounds(update.unit, &old_region, &new_region, &touched);
        let maintain_nanos = timer.lap();

        // Step 3: access every cell whose bound fell below SK.
        let cells_accessed = self.access_loop()?;
        let access_nanos = timer.lap();

        let result = self.maintained.result(self.config.mode);
        let changed = result != self.last_result;
        self.last_result = result;

        self.metrics.updates_processed += 1;
        self.metrics.maintain_nanos += maintain_nanos;
        self.metrics.access_nanos += access_nanos;
        self.metrics
            .set_maintained(convert::count64(self.maintained.len()));
        if changed {
            self.metrics.result_changes += 1;
        }
        Ok(UpdateStats {
            maintain_nanos,
            access_nanos,
            cells_accessed,
            result_changed: changed,
        })
    }

    fn result(&self) -> Vec<TopKEntry> {
        self.last_result.clone()
    }

    fn sk(&self) -> Option<Safety> {
        match self.config.mode {
            crate::config::QueryMode::TopK(k) => self.maintained.ordered().kth_safety(k),
            crate::config::QueryMode::Threshold(_) => None,
        }
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn init_stats(&self) -> &InitStats {
        &self.init_stats
    }

    fn unit_position(&self, unit: UnitId) -> Point {
        self.units.position(unit)
    }

    fn num_units(&self) -> usize {
        self.units.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QueryMode;
    use crate::oracle::Oracle;
    use crate::types::{Place, PlaceId};
    use ctup_storage::CellLocalStore;

    fn grid_place_set() -> Vec<Place> {
        let mut places = Vec::new();
        for i in 0..8u32 {
            for j in 0..8u32 {
                let id = i * 8 + j;
                places.push(Place::point(
                    PlaceId(id),
                    Point::new(i as f64 / 8.0 + 0.06, j as f64 / 8.0 + 0.06),
                    1 + (id % 5),
                ));
            }
        }
        places
    }

    fn setup(config: CtupConfig) -> (OptCtup, Oracle, Vec<Point>) {
        let places = grid_place_set();
        let oracle = Oracle::new(places.clone());
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(8), places));
        let units: Vec<Point> = (0..10)
            .map(|i| Point::new(0.05 + 0.09 * i as f64, 0.95 - 0.085 * i as f64))
            .collect();
        let alg = OptCtup::new(config, store, &units).expect("init");
        (alg, oracle, units)
    }

    #[test]
    fn initialization_matches_oracle() {
        let (alg, oracle, units) = setup(CtupConfig::with_k(5));
        oracle.assert_result_matches(&alg.result(), &units, 0.1, QueryMode::TopK(5));
        alg.check_lb_invariant();
        assert!(alg.dechash_len() == 0, "DecHash must start empty");
    }

    fn run_updates(config: CtupConfig, steps: usize, seed: u64) {
        let (mut alg, oracle, mut units) = setup(config.clone());
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for step in 0..steps {
            let unit = (next() * 10.0) as usize % 10;
            let new = Point::new(next(), next());
            alg.handle_update(LocationUpdate {
                unit: UnitId(unit as u32),
                new,
            })
            .expect("update");
            units[unit] = new;
            oracle.assert_result_matches(&alg.result(), &units, 0.1, config.mode);
            if step % 50 == 0 {
                alg.check_lb_invariant();
            }
        }
        alg.check_lb_invariant();
    }

    #[test]
    fn tracks_oracle_with_doo() {
        run_updates(CtupConfig::with_k(5), 300, 0xA);
    }

    #[test]
    fn tracks_oracle_without_doo() {
        run_updates(
            CtupConfig {
                doo_enabled: false,
                ..CtupConfig::with_k(5)
            },
            300,
            0xB,
        );
    }

    #[test]
    fn tracks_oracle_with_zero_delta() {
        run_updates(
            CtupConfig {
                delta: 0,
                ..CtupConfig::with_k(3)
            },
            200,
            0xC,
        );
    }

    #[test]
    fn tracks_oracle_with_large_delta() {
        run_updates(
            CtupConfig {
                delta: 50,
                ..CtupConfig::with_k(3)
            },
            200,
            0xD,
        );
    }

    #[test]
    fn threshold_mode_tracks_oracle() {
        run_updates(
            CtupConfig {
                mode: QueryMode::Threshold(-2),
                ..CtupConfig::paper_default()
            },
            200,
            0xE,
        );
    }

    #[test]
    fn doo_suppresses_repeated_decrements() {
        // A unit jiggling on a cell boundary: with DOO the second and later
        // partial-partial transitions must not decrement again.
        let (mut alg, _, _) = setup(CtupConfig::with_k(5));
        let before = alg.metrics().lb_decrements;
        for i in 0..20 {
            alg.handle_update(LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.45 + 0.001 * (i % 2) as f64, 0.45),
            })
            .expect("update");
        }
        let decs = alg.metrics().lb_decrements - before;
        let suppressed = alg.metrics().lb_decrements_suppressed;
        // First arrival can decrement the touched cells once each; the 19
        // follow-ups must be suppressed.
        assert!(suppressed > 0, "no suppression recorded");
        assert!(
            decs <= 16,
            "DOO failed to cap decrements: {decs} decrements, {suppressed} suppressed"
        );
    }

    /// The soundness fix of DESIGN.md §3.3, demonstrated constructively:
    /// with the paper's literal Table II (no DecHash purge on access), a
    /// stale `(unit, cell)` entry suppresses a legitimate decrement after
    /// the cell's bound was re-established exactly, and the monitor misses
    /// a place that belongs in the result. With the purge the same
    /// sequence is answered correctly.
    #[test]
    fn literal_table_ii_without_purge_is_unsound() {
        let run = |purge: bool| -> bool {
            let places = vec![
                Place::point(PlaceId(0), Point::new(0.25, 0.25), 5), // p, cell C0
                Place::point(PlaceId(1), Point::new(0.75, 0.75), 5), // q, always alarmed
            ];
            let store: Arc<dyn PlaceStore> =
                Arc::new(CellLocalStore::build(Grid::unit_square(2), places));
            let config = CtupConfig {
                mode: QueryMode::Threshold(-4),
                protection_radius: 0.1,
                delta: 0,
                doo_enabled: true,
                purge_dechash_on_access: purge,
            };
            // Two units protect p: safety -3, strictly above the threshold.
            let mut alg = OptCtup::new(
                config,
                store,
                &[Point::new(0.25, 0.33), Point::new(0.33, 0.25)],
            )
            .expect("init");
            assert_eq!(alg.result().len(), 1, "only q alarmed initially");
            // Two P->P moves that keep protecting p: each decrements C0's
            // bound once (hash entries recorded); the second forces an
            // access that re-establishes the bound exactly (-3).
            alg.handle_update(LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.25, 0.335),
            })
            .expect("update");
            alg.handle_update(LocationUpdate {
                unit: UnitId(1),
                new: Point::new(0.335, 0.25),
            })
            .expect("update");
            // Both units leave p (still P->P with C0): safety(p) drops to
            // -5 < -4, so p must be alarmed. Without the purge, both stale
            // hash entries suppress the decrements: the bound stays at -3
            // and the access never happens.
            alg.handle_update(LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.25, 0.45),
            })
            .expect("update");
            alg.handle_update(LocationUpdate {
                unit: UnitId(1),
                new: Point::new(0.45, 0.25),
            })
            .expect("update");
            alg.result().iter().any(|e| e.place == PlaceId(0))
        };
        assert!(run(true), "purge-on-access must report p");
        assert!(
            !run(false),
            "the literal Table II misses p — the fix is necessary"
        );
    }

    #[test]
    fn maintains_fewer_places_than_basic() {
        use crate::basic::BasicCtup;
        let places = grid_place_set();
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(8), places.clone()));
        let store2: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(8), places));
        let units: Vec<Point> = (0..10)
            .map(|i| Point::new(0.05 + 0.09 * i as f64, 0.5))
            .collect();
        let opt = OptCtup::new(CtupConfig::with_k(5), store, &units).expect("init");
        let basic = BasicCtup::new(CtupConfig::with_k(5), store2, &units).expect("init");
        assert!(
            opt.maintained_places() <= basic.maintained_places(),
            "opt {} > basic {}",
            opt.maintained_places(),
            basic.maintained_places()
        );
    }

    #[test]
    fn delta_keeps_near_misses_maintained() {
        let (alg0, _, _) = setup(CtupConfig {
            delta: 0,
            ..CtupConfig::with_k(5)
        });
        let (alg8, _, _) = setup(CtupConfig {
            delta: 8,
            ..CtupConfig::with_k(5)
        });
        assert!(
            alg8.maintained_places() >= alg0.maintained_places(),
            "larger delta must maintain at least as many places"
        );
    }
}
