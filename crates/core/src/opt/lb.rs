//! Table II — lower-bound maintenance of OptCTUP under the Decrease-Once
//! Optimization.

use crate::types::Safety;
use ctup_spatial::Relation;

/// What to do to the DecHash alongside a lower-bound change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashOp {
    /// Leave the hash unchanged.
    Keep,
    /// Insert `(unit, cell)` — the unit has now been used to decrease the
    /// cell's bound.
    Insert,
    /// Remove `(unit, cell)` — the bound was re-increased, so the unit may
    /// decrease it again in the future.
    Remove,
}

/// The paper's Table II: lower-bound delta and hash operation for a unit
/// whose region moved from relation `old` to `new` with a cell, given
/// whether `(unit, cell)` is currently in the DecHash.
///
/// ```text
/// old \ new |  N/P                     |  F
/// ----------+--------------------------+---------------------------
///     N     |  0                       |  +1, h−
///     P     |  0 (in hash)             |  +1, h− (in hash)
///           |  −1, h+ (otherwise)      |  0 (otherwise)
///     F     |  −1, h+                  |  0
/// ```
#[inline]
pub fn opt_transition(old: Relation, new: Relation, in_hash: bool) -> (Safety, HashOp) {
    use Relation::{Full, None, Partial};
    match (old, new) {
        (None, None | Partial) => (0, HashOp::Keep),
        (None, Full) => (1, HashOp::Remove),
        (Partial, None | Partial) => {
            if in_hash {
                (0, HashOp::Keep)
            } else {
                (-1, HashOp::Insert)
            }
        }
        (Partial, Full) => {
            if in_hash {
                (1, HashOp::Remove)
            } else {
                (0, HashOp::Keep)
            }
        }
        // A unit fully containing a cell is never in the hash (every path
        // into F removes the entry); callers debug-assert this.
        (Full, None | Partial) => (-1, HashOp::Insert),
        (Full, Full) => (0, HashOp::Keep),
    }
}

/// Table I deltas, used by OptCTUP when the Decrease-Once Optimization is
/// disabled (the "without DOO" series of Fig. 8). The rest of the OptCTUP
/// machinery (all-dark cells, maintained places, Δ) stays in effect.
#[inline]
pub fn basic_fallback(old: Relation, new: Relation) -> Safety {
    crate::basic::lb::basic_lb_delta(old, new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use Relation::{Full, None, Partial};

    #[test]
    fn matches_table_ii() {
        assert_eq!(opt_transition(None, None, false), (0, HashOp::Keep));
        assert_eq!(opt_transition(None, Partial, false), (0, HashOp::Keep));
        assert_eq!(opt_transition(None, Full, false), (1, HashOp::Remove));
        assert_eq!(opt_transition(None, Full, true), (1, HashOp::Remove));
        assert_eq!(opt_transition(Partial, None, true), (0, HashOp::Keep));
        assert_eq!(opt_transition(Partial, Partial, true), (0, HashOp::Keep));
        assert_eq!(opt_transition(Partial, None, false), (-1, HashOp::Insert));
        assert_eq!(
            opt_transition(Partial, Partial, false),
            (-1, HashOp::Insert)
        );
        assert_eq!(opt_transition(Partial, Full, true), (1, HashOp::Remove));
        assert_eq!(opt_transition(Partial, Full, false), (0, HashOp::Keep));
        assert_eq!(opt_transition(Full, None, false), (-1, HashOp::Insert));
        assert_eq!(opt_transition(Full, Partial, false), (-1, HashOp::Insert));
        assert_eq!(opt_transition(Full, Full, false), (0, HashOp::Keep));
    }

    /// Soundness of the discounted invariant (DESIGN.md §3.3):
    /// `lb <= safety(p) − contrib(u, p)` for hashed `u`. We verify every
    /// transition for every feasible (contribution_before,
    /// contribution_after) pair allowed by the relations.
    #[test]
    fn discounted_invariant_is_preserved() {
        let contribs = |rel: Relation| -> &'static [i64] {
            match rel {
                None => &[0],
                Partial => &[0, 1],
                Full => &[1],
            }
        };
        for old in [None, Partial, Full] {
            for new in [None, Partial, Full] {
                for &in_hash in &[false, true] {
                    // A unit at relation F is never hashed.
                    if old == Full && in_hash {
                        continue;
                    }
                    let (delta, op) = opt_transition(old, new, in_hash);
                    let hashed_after = match op {
                        HashOp::Keep => in_hash,
                        HashOp::Insert => true,
                        HashOp::Remove => false,
                    };
                    // The F-never-hashed invariant must be preserved.
                    if new == Full {
                        assert!(
                            !hashed_after,
                            "({old:?},{new:?},{in_hash}) leaves a hashed F unit"
                        );
                    }
                    for &c_before in contribs(old) {
                        for &c_after in contribs(new) {
                            // Discounted safety before: s − c_before·[hash].
                            // After: s + (c_after − c_before) − c_after·[hash'].
                            // Need: delta <= discounted_after − discounted_before
                            let disc_before = -(c_before * in_hash as i64);
                            let disc_after = (c_after - c_before) - c_after * hashed_after as i64;
                            assert!(
                                delta <= disc_after - disc_before,
                                "({old:?},{new:?},{in_hash}): delta {delta} breaks invariant \
                                 for contribs {c_before}->{c_after}"
                            );
                        }
                    }
                }
            }
        }
    }
}
