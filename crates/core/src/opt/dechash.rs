//! DecHash — the hash table behind the Decrease-Once Optimization.
//!
//! Holds `(unit, cell)` pairs recording that the movement of `unit` has
//! already decreased the lower bound of `cell` once. Besides point lookups
//! it supports purging every entry of a cell in one call, which the cell
//! access path needs to re-establish the bound soundly (DESIGN.md §3.3).

use crate::types::UnitId;
use ctup_spatial::CellId;
use std::collections::{HashMap, HashSet};

/// The `(unit, cell)` pair set of the Decrease-Once Optimization.
#[derive(Debug, Default)]
pub struct DecHash {
    by_cell: HashMap<CellId, HashSet<UnitId>>,
    len: usize,
}

impl DecHash {
    /// Creates an empty hash.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `(unit, cell)` pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `(unit, cell)` is recorded.
    pub fn contains(&self, unit: UnitId, cell: CellId) -> bool {
        self.by_cell
            .get(&cell)
            .is_some_and(|units| units.contains(&unit))
    }

    /// Records `(unit, cell)`; returns whether it was new.
    pub fn insert(&mut self, unit: UnitId, cell: CellId) -> bool {
        let fresh = self.by_cell.entry(cell).or_default().insert(unit);
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Removes `(unit, cell)` if present; returns whether it was there.
    pub fn remove(&mut self, unit: UnitId, cell: CellId) -> bool {
        let Some(units) = self.by_cell.get_mut(&cell) else {
            return false;
        };
        let removed = units.remove(&unit);
        if removed {
            self.len -= 1;
            if units.is_empty() {
                self.by_cell.remove(&cell);
            }
        }
        removed
    }

    /// Removes every pair of `cell`, returning how many were purged.
    /// Called when the cell is accessed and its lower bound re-established
    /// exactly.
    pub fn purge_cell(&mut self, cell: CellId) -> usize {
        match self.by_cell.remove(&cell) {
            Some(units) => {
                self.len -= units.len();
                units.len()
            }
            None => 0,
        }
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.by_cell.clear();
        self.len = 0;
    }

    /// Iterates all `(unit, cell)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (UnitId, CellId)> + '_ {
        self.by_cell
            .iter()
            .flat_map(|(&cell, units)| units.iter().map(move |&unit| (unit, cell)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut h = DecHash::new();
        assert!(h.insert(UnitId(1), CellId(10)));
        assert!(!h.insert(UnitId(1), CellId(10)), "duplicate insert");
        assert!(h.insert(UnitId(2), CellId(10)));
        assert!(h.insert(UnitId(1), CellId(11)));
        assert_eq!(h.len(), 3);
        assert!(h.contains(UnitId(1), CellId(10)));
        assert!(!h.contains(UnitId(3), CellId(10)));
        assert!(h.remove(UnitId(1), CellId(10)));
        assert!(!h.remove(UnitId(1), CellId(10)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn purge_cell_removes_only_that_cell() {
        let mut h = DecHash::new();
        h.insert(UnitId(1), CellId(5));
        h.insert(UnitId(2), CellId(5));
        h.insert(UnitId(1), CellId(6));
        assert_eq!(h.purge_cell(CellId(5)), 2);
        assert_eq!(h.len(), 1);
        assert!(!h.contains(UnitId(1), CellId(5)));
        assert!(h.contains(UnitId(1), CellId(6)));
        assert_eq!(h.purge_cell(CellId(5)), 0);
    }

    #[test]
    fn clear_resets() {
        let mut h = DecHash::new();
        h.insert(UnitId(0), CellId(0));
        h.insert(UnitId(1), CellId(1));
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(UnitId(0), CellId(0)));
    }
}
