//! The server-side unit table: last reported positions plus a grid index
//! for counting protectors.

use crate::types::{protects, LocationUpdate, Place, Safety, Unit, UnitId};
use ctup_spatial::{convert, Circle, Grid, Point, UnitGridIndex};

/// Positions of all units with a grid index for `AP(p)` computation.
#[derive(Debug)]
pub struct UnitTable {
    positions: Vec<Point>,
    index: UnitGridIndex<u32>,
    radius: f64,
}

impl UnitTable {
    /// Creates the table with every unit at its initial position.
    pub fn new(grid: Grid, initial: &[Point], radius: f64) -> Self {
        assert!(radius > 0.0, "protection radius must be positive");
        let mut index = UnitGridIndex::new(grid);
        for (i, &p) in initial.iter().enumerate() {
            index.insert(convert::id32(i), p);
        }
        UnitTable {
            positions: initial.to_vec(),
            index,
            radius,
        }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether there are no units.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The protection range shared by all units.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Last reported position of `unit`.
    pub fn position(&self, unit: UnitId) -> Point {
        self.positions[unit.index()]
    }

    /// The protecting region of `unit`.
    pub fn region(&self, unit: UnitId) -> Circle {
        Circle::new(self.position(unit), self.radius)
    }

    /// Applies a location update and returns the previous position.
    pub fn apply(&mut self, update: LocationUpdate) -> Point {
        let old = self.positions[update.unit.index()];
        self.index.relocate(update.unit.0, old, update.new);
        self.positions[update.unit.index()] = update.new;
        old
    }

    /// Actual protection `AP(p)`: the number of units protecting `place`.
    pub fn ap(&self, place: &Place) -> u32 {
        match &place.extent {
            None => self
                .index
                .count_within(&Circle::new(place.pos, self.radius)),
            Some(_) => {
                // A unit containing the whole extent is in particular within
                // `radius` of `pos`, so the probe circle is a superset.
                let mut n = 0;
                self.index
                    .for_each_within(&Circle::new(place.pos, self.radius), |_, unit_pos| {
                        if protects(unit_pos, self.radius, place) {
                            n += 1;
                        }
                    });
                n
            }
        }
    }

    /// Current safety of `place`: `AP(p) − RP(p)`.
    pub fn safety(&self, place: &Place) -> Safety {
        self.ap(place) as Safety - place.rp as Safety
    }

    /// Iterates all units in id order.
    pub fn iter(&self) -> impl Iterator<Item = Unit> + '_ {
        self.positions.iter().enumerate().map(|(i, &pos)| Unit {
            id: UnitId(convert::id32(i)),
            pos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PlaceId;
    use ctup_spatial::Rect;

    fn table() -> UnitTable {
        let grid = Grid::unit_square(10);
        let initial = vec![
            Point::new(0.50, 0.50),
            Point::new(0.55, 0.50),
            Point::new(0.90, 0.90),
        ];
        UnitTable::new(grid, &initial, 0.1)
    }

    #[test]
    fn ap_counts_units_in_range() {
        let t = table();
        let p = Place::point(PlaceId(0), Point::new(0.52, 0.50), 1);
        assert_eq!(t.ap(&p), 2);
        assert_eq!(t.safety(&p), 1);
        let far = Place::point(PlaceId(1), Point::new(0.1, 0.1), 3);
        assert_eq!(t.ap(&far), 0);
        assert_eq!(t.safety(&far), -3);
    }

    #[test]
    fn apply_moves_unit_and_returns_old() {
        let mut t = table();
        let old = t.apply(LocationUpdate {
            unit: UnitId(2),
            new: Point::new(0.52, 0.52),
        });
        assert_eq!(old, Point::new(0.90, 0.90));
        assert_eq!(t.position(UnitId(2)), Point::new(0.52, 0.52));
        let p = Place::point(PlaceId(0), Point::new(0.52, 0.50), 0);
        assert_eq!(t.ap(&p), 3);
    }

    #[test]
    fn extended_place_requires_containment() {
        let t = table();
        // Extent around (0.52, 0.50): unit 0 at dist 0.02, unit 1 at 0.03.
        let extent = Rect::from_coords(0.47, 0.45, 0.57, 0.55);
        let p = Place::extended(PlaceId(0), Point::new(0.52, 0.50), 1, extent);
        // Far corner of the extent is ~0.073 from unit 0 and ~0.054 from
        // unit 1; both contain it within 0.1? corner (0.57,0.55) from
        // (0.5,0.5): 0.086; from (0.55,0.5): 0.054; corner (0.47,0.45) from
        // (0.55,0.5): 0.094. All corners within 0.1 of both units.
        assert_eq!(t.ap(&p), 2);
        // Shrink the radius: containment fails though centers are close.
        let t2 = UnitTable::new(
            Grid::unit_square(10),
            &[Point::new(0.50, 0.50), Point::new(0.55, 0.50)],
            0.05,
        );
        assert_eq!(t2.ap(&p), 0);
    }

    #[test]
    fn iter_yields_all_units() {
        let t = table();
        let units: Vec<Unit> = t.iter().collect();
        assert_eq!(units.len(), 3);
        assert_eq!(units[1].id, UnitId(1));
        assert_eq!(units[1].pos, Point::new(0.55, 0.50));
    }

    #[test]
    fn region_uses_shared_radius() {
        let t = table();
        assert_eq!(t.region(UnitId(0)), Circle::new(Point::new(0.5, 0.5), 0.1));
    }
}
