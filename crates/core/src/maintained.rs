//! The higher-level set of maintained places shared by BasicCTUP (places of
//! illuminated cells) and OptCTUP (selectively maintained unsafe places).
//!
//! Tracks, for each maintained place, its record, exact current safety and
//! home cell; keeps a safety-ordered view for `SK`/top-k extraction and a
//! per-cell index for illumination/darkening.

use crate::config::QueryMode;
use crate::topk::SafetyOrdered;
use crate::types::{protects, Place, PlaceId, Safety, TopKEntry, LB_NONE};
use ctup_spatial::{CellId, Point};
use std::collections::HashMap;

/// A place held in memory with its exact safety.
#[derive(Debug, Clone)]
pub struct MaintainedPlace {
    /// The full place record.
    pub place: Place,
    /// Exact current safety.
    pub safety: Safety,
    /// The grid cell the place belongs to.
    pub cell: CellId,
}

/// The set of places maintained at the higher level.
#[derive(Debug, Default)]
pub struct MaintainedSet {
    map: HashMap<PlaceId, MaintainedPlace>,
    by_cell: HashMap<CellId, Vec<PlaceId>>,
    ordered: SafetyOrdered,
}

impl MaintainedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of maintained places.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `place` is maintained.
    pub fn contains(&self, place: PlaceId) -> bool {
        self.map.contains_key(&place)
    }

    /// The maintained entry for `place`, if any.
    pub fn get(&self, place: PlaceId) -> Option<&MaintainedPlace> {
        self.map.get(&place)
    }

    /// Starts maintaining `place` with the given exact safety.
    ///
    /// # Panics
    /// Panics in debug builds if the place is already maintained.
    pub fn insert(&mut self, place: Place, safety: Safety, cell: CellId) {
        let id = place.id;
        self.ordered.insert(id, safety);
        self.by_cell.entry(cell).or_default().push(id);
        let prev = self.map.insert(
            id,
            MaintainedPlace {
                place,
                safety,
                cell,
            },
        );
        debug_assert!(prev.is_none(), "{id:?} maintained twice");
    }

    /// Stops maintaining every place of `cell` and returns the entries.
    pub fn remove_cell(&mut self, cell: CellId) -> Vec<MaintainedPlace> {
        let Some(ids) = self.by_cell.remove(&cell) else {
            return Vec::new();
        };
        let mut entries = Vec::with_capacity(ids.len());
        for id in ids {
            let Some(entry) = self.map.remove(&id) else {
                debug_assert!(false, "{id:?} in by_cell but not in map");
                continue;
            };
            self.ordered.remove(id, entry.safety);
            entries.push(entry);
        }
        entries
    }

    /// The ids of the places maintained for `cell`.
    pub fn cell_places(&self, cell: CellId) -> &[PlaceId] {
        self.by_cell.get(&cell).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates the cells that currently have maintained places.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.by_cell.keys().copied()
    }

    /// Updates every maintained place's safety for a unit that moved from
    /// `old` to `new` (update-algorithm step 1 of both schemes). Returns the
    /// number of safeties that changed.
    ///
    /// `touched` must contain every cell intersecting the old or new
    /// protecting region (see [`crate::cells::touched_cells`]): a place's
    /// protection by the unit can only change if its position lies inside
    /// one of the two regions, and its cell then intersects that region.
    /// Restricting the scan to those cells keeps step 1 proportional to the
    /// local maintained density rather than the global maintained count.
    pub fn apply_unit_move(
        &mut self,
        old: Point,
        new: Point,
        radius: f64,
        touched: &[CellId],
    ) -> usize {
        let mut changed = 0;
        for cell in touched {
            let Some(ids) = self.by_cell.get(cell) else {
                continue;
            };
            for &id in ids {
                let Some(entry) = self.map.get_mut(&id) else {
                    debug_assert!(false, "{id:?} in by_cell but not in map");
                    continue;
                };
                let was = protects(old, radius, &entry.place);
                let is = protects(new, radius, &entry.place);
                if was != is {
                    let delta: Safety = if is { 1 } else { -1 };
                    let fresh = entry.safety + delta;
                    self.ordered.update(id, entry.safety, fresh);
                    entry.safety = fresh;
                    changed += 1;
                }
            }
        }
        changed
    }

    /// The effective `SK` for a query mode: the k-th smallest maintained
    /// safety in top-k mode (or [`LB_NONE`] while fewer than `k` places are
    /// maintained, which forces cell accesses), and the fixed threshold in
    /// threshold mode.
    pub fn sk_eff(&self, mode: QueryMode) -> Safety {
        match mode {
            QueryMode::TopK(k) => self.ordered.kth_safety(k).unwrap_or(LB_NONE),
            QueryMode::Threshold(tau) => tau,
        }
    }

    /// The monitored result under `mode`, sorted by `(safety, id)`.
    pub fn result(&self, mode: QueryMode) -> Vec<TopKEntry> {
        match mode {
            QueryMode::TopK(k) => self.ordered.top_k(k),
            QueryMode::Threshold(tau) => self.ordered.below(tau),
        }
    }

    /// The ordered view (for invariant checks and diagnostics).
    pub fn ordered(&self) -> &SafetyOrdered {
        &self.ordered
    }

    /// Iterates all maintained entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &MaintainedPlace> {
        self.map.values()
    }

    /// Verifies the three internal views agree; used by tests.
    pub fn check_invariants(&self) {
        assert_eq!(self.map.len(), self.ordered.len());
        let mut by_cell_total = 0;
        for (cell, ids) in &self.by_cell {
            assert!(!ids.is_empty(), "empty by_cell bucket for {cell:?}");
            by_cell_total += ids.len();
            for id in ids {
                #[allow(clippy::expect_used)]
                // ctup-lint: allow(L001, check_invariants is a panicking diagnostic harness by contract — tests call it precisely to fail loudly)
                let entry = self.map.get(id).expect("by_cell id not in map");
                assert_eq!(entry.cell, *cell);
            }
        }
        assert_eq!(by_cell_total, self.map.len());
        for (safety, id) in self.ordered.iter() {
            assert_eq!(
                self.map[&id].safety, safety,
                "ordered view stale for {id:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(id: u32, x: f64, y: f64, rp: u32) -> Place {
        Place::point(PlaceId(id), Point::new(x, y), rp)
    }

    fn sample() -> MaintainedSet {
        let mut m = MaintainedSet::new();
        m.insert(place(0, 0.50, 0.50, 3), -3, CellId(55));
        m.insert(place(1, 0.52, 0.50, 1), -1, CellId(55));
        m.insert(place(2, 0.90, 0.90, 6), -6, CellId(99));
        m.check_invariants();
        m
    }

    #[test]
    fn insert_and_views() {
        let m = sample();
        assert_eq!(m.len(), 3);
        assert!(m.contains(PlaceId(1)));
        assert_eq!(m.cell_places(CellId(55)).len(), 2);
        assert_eq!(m.sk_eff(QueryMode::TopK(1)), -6);
        assert_eq!(m.sk_eff(QueryMode::TopK(2)), -3);
        assert_eq!(m.sk_eff(QueryMode::TopK(4)), LB_NONE);
        assert_eq!(m.sk_eff(QueryMode::Threshold(-2)), -2);
    }

    #[test]
    fn apply_unit_move_adjusts_affected_places() {
        let mut m = sample();
        // Unit leaves the vicinity of places 0 and 1 (they lose a protector)
        // and arrives near place 2 (gains one).
        let touched = [CellId(55), CellId(99)];
        let changed = m.apply_unit_move(
            Point::new(0.51, 0.50),
            Point::new(0.9, 0.88),
            0.05,
            &touched,
        );
        assert_eq!(changed, 3);
        assert_eq!(m.get(PlaceId(0)).unwrap().safety, -4);
        assert_eq!(m.get(PlaceId(1)).unwrap().safety, -2);
        assert_eq!(m.get(PlaceId(2)).unwrap().safety, -5);
        m.check_invariants();
    }

    #[test]
    fn apply_unit_move_far_away_changes_nothing() {
        let mut m = sample();
        let touched = [CellId(0), CellId(1)];
        let changed =
            m.apply_unit_move(Point::new(0.1, 0.1), Point::new(0.12, 0.1), 0.05, &touched);
        assert_eq!(changed, 0);
        m.check_invariants();
    }

    #[test]
    fn apply_unit_move_skips_untouched_cells() {
        let mut m = sample();
        // The move would affect cell 55's places, but only cell 99 is
        // declared touched — callers guarantee touched covers both regions,
        // so the method must restrict itself to the given cells.
        let changed = m.apply_unit_move(
            Point::new(0.51, 0.50),
            Point::new(0.9, 0.88),
            0.05,
            &[CellId(99)],
        );
        assert_eq!(changed, 1);
        assert_eq!(m.get(PlaceId(2)).unwrap().safety, -5);
        m.check_invariants();
    }

    #[test]
    fn remove_cell_clears_all_views() {
        let mut m = sample();
        let removed = m.remove_cell(CellId(55));
        assert_eq!(removed.len(), 2);
        assert_eq!(m.len(), 1);
        assert!(!m.contains(PlaceId(0)));
        assert_eq!(m.cell_places(CellId(55)).len(), 0);
        assert_eq!(m.remove_cell(CellId(55)).len(), 0);
        m.check_invariants();
    }

    #[test]
    fn result_modes() {
        let m = sample();
        let top2 = m.result(QueryMode::TopK(2));
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].place, PlaceId(2));
        assert_eq!(top2[1].place, PlaceId(0));
        let below = m.result(QueryMode::Threshold(-1));
        assert_eq!(below.len(), 2);
    }
}
