//! Cell-level geometry helpers shared by the grid-based schemes.

use ctup_spatial::{CellId, Circle, Grid, Rect, Relation};

/// Classifies `region` against a cell for lower-bound maintenance, taking
/// extended places into account.
///
/// For point places (`margin == 0`) this is exactly
/// [`Relation::classify`]. For cells containing extended places, `margin`
/// must be at least the largest [`ctup_storage::PlaceRecord::extent_margin`]
/// in the cell; `Full` is then only reported when the region contains the
/// cell *inflated* by that margin, because protecting an extended place
/// requires containing its whole extent, which can stick out of the cell by
/// up to `margin`. The `None` check stays on the plain cell: a place cannot
/// be protected unless its position (inside the cell) is inside the region.
#[inline]
pub fn classify_with_margin(region: &Circle, cell_rect: &Rect, margin: f64) -> Relation {
    if !region.intersects_rect(cell_rect) {
        Relation::None
    } else if region.contains_rect(&cell_rect.inflate(margin)) {
        Relation::Full
    } else {
        Relation::Partial
    }
}

/// The cells whose lower bound may change when a protecting region moves
/// from `old` to `new`: every cell intersecting either region, sorted and
/// deduplicated. Cells outside both regions keep relation `N -> N`, which
/// never changes a lower bound in Table I or Table II.
pub fn touched_cells(grid: &Grid, old: &Circle, new: &Circle) -> Vec<CellId> {
    let mut cells: Vec<CellId> = grid
        .cells_overlapping_circle(old)
        .chain(grid.cells_overlapping_circle(new))
        .collect();
    cells.sort_unstable();
    cells.dedup();
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctup_spatial::Point;

    #[test]
    fn zero_margin_matches_plain_classification() {
        let grid = Grid::unit_square(10);
        let regions = [
            Circle::new(Point::new(0.55, 0.55), 0.12),
            Circle::new(Point::new(0.15, 0.85), 0.03),
            Circle::new(Point::new(0.0, 0.0), 0.25),
        ];
        for region in &regions {
            for cell in grid.cells() {
                let rect = grid.cell_rect(cell);
                assert_eq!(
                    classify_with_margin(region, &rect, 0.0),
                    Relation::classify(region, &rect),
                    "cell {cell:?}"
                );
            }
        }
    }

    #[test]
    fn margin_demotes_full_to_partial() {
        let rect = Rect::from_coords(0.4, 0.4, 0.5, 0.5);
        // Region barely containing the cell.
        let region = Circle::new(Point::new(0.45, 0.45), 0.075);
        assert_eq!(classify_with_margin(&region, &rect, 0.0), Relation::Full);
        assert_eq!(
            classify_with_margin(&region, &rect, 0.05),
            Relation::Partial
        );
        // A comfortably larger region re-earns Full despite the margin.
        let big = Circle::new(Point::new(0.45, 0.45), 0.2);
        assert_eq!(classify_with_margin(&big, &rect, 0.05), Relation::Full);
    }

    #[test]
    fn margin_never_affects_none() {
        let rect = Rect::from_coords(0.4, 0.4, 0.5, 0.5);
        let region = Circle::new(Point::new(0.9, 0.9), 0.1);
        assert_eq!(classify_with_margin(&region, &rect, 0.5), Relation::None);
    }

    #[test]
    fn touched_cells_covers_both_regions() {
        let grid = Grid::unit_square(10);
        let old = Circle::new(Point::new(0.25, 0.25), 0.08);
        let new = Circle::new(Point::new(0.75, 0.75), 0.08);
        let touched = touched_cells(&grid, &old, &new);
        for cell in grid.cells() {
            let rect = grid.cell_rect(cell);
            let should = old.intersects_rect(&rect) || new.intersects_rect(&rect);
            assert_eq!(touched.contains(&cell), should, "cell {cell:?}");
        }
        // Sorted and unique.
        let mut sorted = touched.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(touched, sorted);
    }

    #[test]
    fn touched_cells_overlapping_regions_dedup() {
        let grid = Grid::unit_square(10);
        let old = Circle::new(Point::new(0.5, 0.5), 0.1);
        let new = Circle::new(Point::new(0.52, 0.5), 0.1);
        let touched = touched_cells(&grid, &old, &new);
        let unique: std::collections::HashSet<_> = touched.iter().collect();
        assert_eq!(unique.len(), touched.len());
    }
}
