//! CTUP query configuration.

use serde::{Deserialize, Serialize};

use crate::types::Safety;

/// What the monitor reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryMode {
    /// The paper's CTUP query: the `k` places with the smallest safeties.
    TopK(usize),
    /// The future-work threshold variant: every place with
    /// `safety < threshold`.
    Threshold(Safety),
}

/// Configuration shared by all CTUP algorithms.
///
/// The partition granularity is carried by the grid of the
/// [`ctup_storage::PlaceStore`] the algorithm is constructed with, so it
/// does not appear here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtupConfig {
    /// Query mode; the paper's experiments use `TopK(15)`.
    pub mode: QueryMode,
    /// Protection range `R` of every unit (Table III default: 0.1).
    pub protection_radius: f64,
    /// OptCTUP's anti-flashing slack `Δ` (Table III default: 6). After a
    /// cell access, every place with `safety < SK + Δ` stays maintained, so
    /// the cell's lower bound can absorb `Δ` decrements before the cell is
    /// touched again. Ignored by BasicCTUP and the naïve schemes.
    pub delta: Safety,
    /// Whether OptCTUP applies the Decrease-Once Optimization (Table II);
    /// disabling it falls back to Table I deltas, reproducing the "without
    /// DOO" series of Fig. 8.
    pub doo_enabled: bool,
    /// Whether accessing a cell purges its DecHash entries. This is the
    /// soundness fix described in DESIGN.md §3.3; it must stay enabled for
    /// correct results and is exposed only so the ablation bench can
    /// measure what the paper's literal Table II would do.
    pub purge_dechash_on_access: bool,
}

impl CtupConfig {
    /// The paper's Table III defaults: `k = 15`, `R = 0.1`, `Δ = 6`.
    pub fn paper_default() -> Self {
        CtupConfig {
            mode: QueryMode::TopK(15),
            protection_radius: 0.1,
            delta: 6,
            doo_enabled: true,
            purge_dechash_on_access: true,
        }
    }

    /// Same defaults with a different `k`.
    pub fn with_k(k: usize) -> Self {
        CtupConfig {
            mode: QueryMode::TopK(k),
            ..Self::paper_default()
        }
    }

    /// The `k` of a top-k query; `None` in threshold mode.
    pub fn k(&self) -> Option<usize> {
        match self.mode {
            QueryMode::TopK(k) => Some(k),
            QueryMode::Threshold(_) => None,
        }
    }

    /// Checks parameter ranges, returning a description of the first
    /// violation. Used by restore paths that must not panic on corrupted
    /// input.
    pub fn check(&self) -> Result<(), &'static str> {
        if !(self.protection_radius > 0.0 && self.protection_radius.is_finite()) {
            return Err("protection radius must be positive and finite");
        }
        if self.delta < 0 {
            return Err("delta must be non-negative");
        }
        if self.mode == QueryMode::TopK(0) {
            return Err("k must be at least 1");
        }
        Ok(())
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on non-positive radius, `TopK(0)`, or negative `Δ`.
    pub fn validate(&self) {
        if let Err(message) = self.check() {
            // ctup-lint: allow(L001, documented `# Panics` wrapper over the fallible check() — construction-time misconfiguration is a programming error)
            panic!("{message}");
        }
    }
}

impl Default for CtupConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_iii() {
        let c = CtupConfig::paper_default();
        assert_eq!(c.mode, QueryMode::TopK(15));
        assert_eq!(c.protection_radius, 0.1);
        assert_eq!(c.delta, 6);
        assert!(c.doo_enabled);
        c.validate();
    }

    #[test]
    fn with_k_overrides_only_k() {
        let c = CtupConfig::with_k(5);
        assert_eq!(c.k(), Some(5));
        assert_eq!(c.delta, 6);
    }

    #[test]
    fn threshold_mode_has_no_k() {
        let c = CtupConfig {
            mode: QueryMode::Threshold(-2),
            ..CtupConfig::paper_default()
        };
        assert_eq!(c.k(), None);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        CtupConfig::with_k(0).validate();
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        CtupConfig {
            protection_radius: 0.0,
            ..CtupConfig::paper_default()
        }
        .validate();
    }
}
