//! Checkpointing the OptCTUP monitor state.
//!
//! A dispatch center cannot afford to re-initialize from the full place set
//! after a failover. A [`Checkpoint`] captures everything the higher level
//! holds — unit positions, per-cell lower bounds, the maintained places
//! with their exact safeties, and the DecHash — so a standby server can
//! resume monitoring exactly where the primary stopped. A line-oriented
//! text codec keeps the format inspectable and dependency-free.

use crate::config::{CtupConfig, QueryMode};
use crate::ingest::{GateState, GateUnitState};
use crate::types::{Place, PlaceId, Safety, UnitId};
use ctup_spatial::{CellId, CellLayout, Point, Rect};
use ctup_storage::PlaceStore;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, BufRead, Write};
use std::sync::Arc;

/// Serialized state of a running OptCTUP monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The configuration the monitor ran with.
    pub config: CtupConfig,
    /// Physical cell layout of the lower level the checkpoint was taken
    /// over. The `lower_bounds` table is cell-id ordered either way, but a
    /// standby restoring over a store with a different on-disk layout
    /// would silently lose the locality the primary was tuned for — so
    /// restore refuses a layout mismatch instead.
    pub layout: CellLayout,
    /// Last reported position of every unit, in unit-id order.
    pub unit_positions: Vec<Point>,
    /// Per-cell lower bounds, in cell-id order ([`crate::types::LB_NONE`]
    /// for cells without non-maintained places).
    pub lower_bounds: Vec<Safety>,
    /// Maintained places with their exact safety and home cell.
    pub maintained: Vec<(Place, Safety, CellId)>,
    /// The DecHash contents.
    pub dechash: Vec<(UnitId, CellId)>,
    /// Ingest-gate state (dedup sequence numbers and liveness leases) when
    /// the monitor ran behind a [`crate::ingest::IngestGate`]; `None` for a
    /// bare monitor.
    pub gate: Option<GateState>,
}

/// Errors raised while reading or restoring a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file contents.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// The checkpoint parsed but its contents are unusable (wrong grid,
    /// inconsistent unit counts, invalid configuration …).
    Invalid(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Parse { line, message } => {
                write!(f, "checkpoint parse error at line {line}: {message}")
            }
            CheckpointError::Invalid(message) => {
                write!(f, "invalid checkpoint: {message}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A monitor whose complete higher-level state can be captured and
/// restored — what the supervised pipeline needs to checkpoint-restart a
/// crashed worker and what a standby server needs to take over.
pub trait Checkpointable: crate::algorithm::CtupAlgorithm + Sized {
    /// Captures the monitor's state (gate-less; the caller attaches a
    /// [`GateState`] if the monitor runs behind an ingest gate).
    fn checkpoint(&self) -> Checkpoint;

    /// Rebuilds a monitor from a checkpoint over the same lower level.
    fn restore(checkpoint: Checkpoint, store: Arc<dyn PlaceStore>)
        -> Result<Self, CheckpointError>;

    /// The lower-level store the monitor runs over (handed back to
    /// [`Checkpointable::restore`] on restart).
    fn store(&self) -> Arc<dyn PlaceStore>;
}

/// Version of the on-disk checkpoint format.
///
/// Any change to the serialized shape of [`Checkpoint`] or the types it
/// embeds must bump this constant — `cargo xtask lint` (rule L005)
/// fingerprints those type definitions and fails when they drift without a
/// version bump, so a standby never misreads a primary's checkpoint. The
/// durable A/B slot header of [`crate::durable`] embeds the same version:
/// v3 introduced the slot/journal protocol around the v2 body format; v4
/// added the physical cell-layout tag so recovery re-binds to the same
/// on-disk layout.
pub const FORMAT_VERSION: u32 = 4;

const HEADER: &str = "#ctup-checkpoint v4";
const VERSION_PREFIX: &str = "#ctup-checkpoint ";

/// Upper bound on pre-allocation from counts read out of the file: a
/// corrupted count must produce a parse error, not a giant allocation.
/// Collections still grow past this if the file really has that many lines.
const CAP_HINT: usize = 1 << 16;

fn err(line: usize, message: impl Into<String>) -> CheckpointError {
    CheckpointError::Parse {
        line,
        message: message.into(),
    }
}

/// A line reader that tracks line numbers.
struct Lines<R: BufRead> {
    inner: R,
    line_no: usize,
    buf: String,
}

impl<R: BufRead> Lines<R> {
    fn next(&mut self) -> Result<&str, CheckpointError> {
        self.buf.clear();
        self.line_no += 1;
        let n = self.inner.read_line(&mut self.buf)?;
        if n == 0 {
            return Err(err(self.line_no, "unexpected end of file"));
        }
        Ok(self.buf.trim_end())
    }
}

impl Checkpoint {
    /// Structural validation against the grid the checkpoint will be
    /// restored over: counts and id ranges must be consistent before
    /// restore builds any structure. A corrupted-but-parseable file fails
    /// here with a [`CheckpointError::Invalid`] instead of panicking later.
    pub fn validate(&self, num_cells: usize) -> Result<(), CheckpointError> {
        let invalid = |m: String| Err(CheckpointError::Invalid(m));
        if let Err(message) = self.config.check() {
            return invalid(format!("bad config: {message}"));
        }
        if self.lower_bounds.len() != num_cells {
            return invalid(format!(
                "checkpoint was taken over a different grid ({} cells, store has {num_cells})",
                self.lower_bounds.len()
            ));
        }
        for p in &self.unit_positions {
            if !(p.x.is_finite() && p.y.is_finite()) {
                return invalid("non-finite unit position".into());
            }
        }
        for (place, _, cell) in &self.maintained {
            if cell.index() >= num_cells {
                return invalid(format!(
                    "maintained place {} references cell {} of {num_cells}",
                    place.id.0, cell.0
                ));
            }
        }
        for (unit, cell) in &self.dechash {
            if unit.index() >= self.unit_positions.len() {
                return invalid(format!(
                    "dechash references unit {} of {}",
                    unit.0,
                    self.unit_positions.len()
                ));
            }
            if cell.index() >= num_cells {
                return invalid(format!("dechash references cell {} of {num_cells}", cell.0));
            }
        }
        if let Some(gate) = &self.gate {
            if gate.units.len() != self.unit_positions.len() {
                return invalid(format!(
                    "gate state covers {} units but the checkpoint has {}",
                    gate.units.len(),
                    self.unit_positions.len()
                ));
            }
        }
        Ok(())
    }

    /// Writes the checkpoint to `w`.
    pub fn write<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "{HEADER}")?;
        match self.config.mode {
            QueryMode::TopK(k) => writeln!(w, "mode topk {k}")?,
            QueryMode::Threshold(tau) => writeln!(w, "mode threshold {tau}")?,
        }
        writeln!(
            w,
            "config {} {} {} {}",
            self.config.protection_radius,
            self.config.delta,
            u8::from(self.config.doo_enabled),
            u8::from(self.config.purge_dechash_on_access)
        )?;
        writeln!(w, "layout {}", self.layout)?;
        writeln!(w, "units {}", self.unit_positions.len())?;
        for p in &self.unit_positions {
            writeln!(w, "{} {}", p.x, p.y)?;
        }
        writeln!(w, "lbs {}", self.lower_bounds.len())?;
        for lb in &self.lower_bounds {
            writeln!(w, "{lb}")?;
        }
        writeln!(w, "maintained {}", self.maintained.len())?;
        for (place, safety, cell) in &self.maintained {
            match &place.extent {
                None => writeln!(
                    w,
                    "{} {} {} {} {} {}",
                    place.id.0, place.pos.x, place.pos.y, place.rp, safety, cell.0
                )?,
                Some(r) => writeln!(
                    w,
                    "{} {} {} {} {} {} {} {} {} {}",
                    place.id.0,
                    place.pos.x,
                    place.pos.y,
                    place.rp,
                    safety,
                    cell.0,
                    r.lo.x,
                    r.lo.y,
                    r.hi.x,
                    r.hi.y
                )?,
            }
        }
        writeln!(w, "dechash {}", self.dechash.len())?;
        for (unit, cell) in &self.dechash {
            writeln!(w, "{} {}", unit.0, cell.0)?;
        }
        match &self.gate {
            None => writeln!(w, "gate none")?,
            Some(gate) => {
                writeln!(w, "gate {} {}", gate.now, gate.units.len())?;
                for u in &gate.units {
                    match u.last_seq {
                        None => writeln!(w, "- {} {}", u.last_seen, u8::from(u.alive))?,
                        Some(seq) => writeln!(w, "{seq} {} {}", u.last_seen, u8::from(u.alive))?,
                    }
                }
            }
        }
        Ok(())
    }

    /// Reads a checkpoint from `r`.
    pub fn read<R: BufRead>(r: R) -> Result<Self, CheckpointError> {
        let mut lines = Lines {
            inner: r,
            line_no: 0,
            buf: String::new(),
        };

        let header = lines.next()?.to_string();
        if header != HEADER {
            return Err(match header.strip_prefix(VERSION_PREFIX) {
                Some(version) => err(
                    lines.line_no,
                    format!("unsupported checkpoint version {version:?} (expected \"v4\")"),
                ),
                None => err(lines.line_no, format!("bad header {header:?}")),
            });
        }

        // mode
        let line_no = lines.line_no + 1;
        let mode_line = lines.next()?.to_string();
        let mode_fields: Vec<&str> = mode_line.split_ascii_whitespace().collect();
        let mode = match mode_fields.as_slice() {
            ["mode", "topk", k] => {
                QueryMode::TopK(k.parse().map_err(|e| err(line_no, format!("bad k: {e}")))?)
            }
            ["mode", "threshold", tau] => QueryMode::Threshold(
                tau.parse()
                    .map_err(|e| err(line_no, format!("bad threshold: {e}")))?,
            ),
            _ => {
                return Err(err(
                    line_no,
                    "expected `mode topk <k>` or `mode threshold <t>`",
                ))
            }
        };

        // config
        let line_no = lines.line_no + 1;
        let config_line = lines.next()?.to_string();
        let config_fields: Vec<&str> = config_line.split_ascii_whitespace().collect();
        let config = match config_fields.as_slice() {
            ["config", radius, delta, doo, purge] => CtupConfig {
                mode,
                protection_radius: radius
                    .parse()
                    .map_err(|e| err(line_no, format!("bad radius: {e}")))?,
                delta: delta
                    .parse()
                    .map_err(|e| err(line_no, format!("bad delta: {e}")))?,
                doo_enabled: *doo == "1",
                purge_dechash_on_access: *purge == "1",
            },
            _ => {
                return Err(err(
                    line_no,
                    "expected `config <radius> <delta> <doo> <purge>`",
                ))
            }
        };

        // layout
        let line_no = lines.line_no + 1;
        let layout_line = lines.next()?.to_string();
        let layout = match layout_line
            .split_ascii_whitespace()
            .collect::<Vec<_>>()
            .as_slice()
        {
            ["layout", name] => name
                .parse::<CellLayout>()
                .map_err(|e| err(line_no, e.to_string()))?,
            _ => return Err(err(line_no, "expected `layout <rowmajor|zorder>`")),
        };

        let parse_count = |lines: &mut Lines<R>, tag: &str| -> Result<usize, CheckpointError> {
            let line_no = lines.line_no + 1;
            let line = lines.next()?.to_string();
            let fields: Vec<&str> = line.split_ascii_whitespace().collect();
            match fields.as_slice() {
                [t, n] if *t == tag => n
                    .parse()
                    .map_err(|e| err(line_no, format!("bad {tag} count: {e}"))),
                _ => Err(err(line_no, format!("expected `{tag} <count>`"))),
            }
        };

        let n_units = parse_count(&mut lines, "units")?;
        let mut unit_positions = Vec::with_capacity(n_units.min(CAP_HINT));
        for _ in 0..n_units {
            let line_no = lines.line_no + 1;
            let line = lines.next()?.to_string();
            let fields: Vec<&str> = line.split_ascii_whitespace().collect();
            if fields.len() != 2 {
                return Err(err(line_no, "expected `<x> <y>`"));
            }
            let x = fields[0]
                .parse()
                .map_err(|e| err(line_no, format!("bad x: {e}")))?;
            let y = fields[1]
                .parse()
                .map_err(|e| err(line_no, format!("bad y: {e}")))?;
            unit_positions.push(Point::new(x, y));
        }

        let n_lbs = parse_count(&mut lines, "lbs")?;
        let mut lower_bounds = Vec::with_capacity(n_lbs.min(CAP_HINT));
        for _ in 0..n_lbs {
            let line_no = lines.line_no + 1;
            let lb = lines
                .next()?
                .parse()
                .map_err(|e| err(line_no, format!("bad lower bound: {e}")))?;
            lower_bounds.push(lb);
        }

        let n_maintained = parse_count(&mut lines, "maintained")?;
        let mut maintained = Vec::with_capacity(n_maintained.min(CAP_HINT));
        for _ in 0..n_maintained {
            let line_no = lines.line_no + 1;
            let line = lines.next()?.to_string();
            let fields: Vec<&str> = line.split_ascii_whitespace().collect();
            if fields.len() != 6 && fields.len() != 10 {
                return Err(err(
                    line_no,
                    "expected 6 or 10 fields for a maintained place",
                ));
            }
            let parse_f = |s: &str| -> Result<f64, CheckpointError> {
                s.parse()
                    .map_err(|e| err(line_no, format!("bad number {s:?}: {e}")))
            };
            let id: u32 = fields[0]
                .parse()
                .map_err(|e| err(line_no, format!("bad id: {e}")))?;
            let pos = Point::new(parse_f(fields[1])?, parse_f(fields[2])?);
            let rp: u32 = fields[3]
                .parse()
                .map_err(|e| err(line_no, format!("bad rp: {e}")))?;
            let safety: Safety = fields[4]
                .parse()
                .map_err(|e| err(line_no, format!("bad safety: {e}")))?;
            let cell: u32 = fields[5]
                .parse()
                .map_err(|e| err(line_no, format!("bad cell: {e}")))?;
            let place = if fields.len() == 10 {
                let lo = Point::new(parse_f(fields[6])?, parse_f(fields[7])?);
                let hi = Point::new(parse_f(fields[8])?, parse_f(fields[9])?);
                if lo.x > hi.x || lo.y > hi.y {
                    return Err(err(line_no, "extent corners out of order"));
                }
                let extent = Rect::new(lo, hi);
                // `Place::extended` asserts containment; corrupt bytes must
                // surface as a parse error, not a panic.
                if !extent.contains_point(pos) {
                    return Err(err(line_no, "extent does not contain the place position"));
                }
                Place::extended(PlaceId(id), pos, rp, extent)
            } else {
                Place::point(PlaceId(id), pos, rp)
            };
            maintained.push((place, safety, CellId(cell)));
        }

        let n_dechash = parse_count(&mut lines, "dechash")?;
        let mut dechash = Vec::with_capacity(n_dechash.min(CAP_HINT));
        for _ in 0..n_dechash {
            let line_no = lines.line_no + 1;
            let line = lines.next()?.to_string();
            let fields: Vec<&str> = line.split_ascii_whitespace().collect();
            if fields.len() != 2 {
                return Err(err(line_no, "expected `<unit> <cell>`"));
            }
            let unit: u32 = fields[0]
                .parse()
                .map_err(|e| err(line_no, format!("bad unit: {e}")))?;
            let cell: u32 = fields[1]
                .parse()
                .map_err(|e| err(line_no, format!("bad cell: {e}")))?;
            dechash.push((UnitId(unit), CellId(cell)));
        }

        // gate section: `gate none` or `gate <now> <count>` + per-unit lines.
        let line_no = lines.line_no + 1;
        let gate_line = lines.next()?.to_string();
        let gate_fields: Vec<&str> = gate_line.split_ascii_whitespace().collect();
        let gate = match gate_fields.as_slice() {
            ["gate", "none"] => None,
            ["gate", now, n] => {
                let now: u64 = now
                    .parse()
                    .map_err(|e| err(line_no, format!("bad gate clock: {e}")))?;
                let n: usize = n
                    .parse()
                    .map_err(|e| err(line_no, format!("bad gate unit count: {e}")))?;
                let mut units = Vec::with_capacity(n.min(CAP_HINT));
                for _ in 0..n {
                    let line_no = lines.line_no + 1;
                    let line = lines.next()?.to_string();
                    let fields: Vec<&str> = line.split_ascii_whitespace().collect();
                    let [seq, seen, alive] = fields.as_slice() else {
                        return Err(err(line_no, "expected `<seq|-> <last_seen> <alive>`"));
                    };
                    let last_seq = if *seq == "-" {
                        None
                    } else {
                        Some(
                            seq.parse()
                                .map_err(|e| err(line_no, format!("bad gate seq: {e}")))?,
                        )
                    };
                    let last_seen = seen
                        .parse()
                        .map_err(|e| err(line_no, format!("bad gate last_seen: {e}")))?;
                    let alive = match *alive {
                        "0" => false,
                        "1" => true,
                        other => {
                            return Err(err(line_no, format!("bad gate alive flag {other:?}")))
                        }
                    };
                    units.push(GateUnitState {
                        last_seq,
                        last_seen,
                        alive,
                    });
                }
                Some(GateState { now, units })
            }
            _ => return Err(err(line_no, "expected `gate none` or `gate <now> <count>`")),
        };

        Ok(Checkpoint {
            config,
            layout,
            unit_positions,
            lower_bounds,
            maintained,
            dechash,
            gate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_carries_format_version() {
        assert_eq!(HEADER, format!("#ctup-checkpoint v{FORMAT_VERSION}"));
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            config: CtupConfig::with_k(7),
            layout: CellLayout::ZOrder,
            unit_positions: vec![Point::new(0.25, 0.5), Point::new(0.75, 0.125)],
            lower_bounds: vec![-3, crate::types::LB_NONE, 0, 5],
            maintained: vec![
                (
                    Place::point(PlaceId(4), Point::new(0.1, 0.2), 3),
                    -2,
                    CellId(0),
                ),
                (
                    Place::extended(
                        PlaceId(9),
                        Point::new(0.6, 0.6),
                        1,
                        Rect::from_coords(0.55, 0.55, 0.65, 0.65),
                    ),
                    1,
                    CellId(3),
                ),
            ],
            dechash: vec![(UnitId(0), CellId(2)), (UnitId(1), CellId(0))],
            gate: Some(GateState {
                now: 42,
                units: vec![
                    GateUnitState {
                        last_seq: Some(17),
                        last_seen: 41,
                        alive: true,
                    },
                    GateUnitState {
                        last_seq: None,
                        last_seen: 3,
                        alive: false,
                    },
                ],
            }),
        }
    }

    #[test]
    fn text_roundtrip() {
        let cp = sample();
        let mut buf = Vec::new();
        cp.write(&mut buf).unwrap();
        let restored = Checkpoint::read(buf.as_slice()).unwrap();
        assert_eq!(restored, cp);
    }

    #[test]
    fn threshold_mode_roundtrip() {
        let cp = Checkpoint {
            config: CtupConfig {
                mode: QueryMode::Threshold(-4),
                doo_enabled: false,
                ..CtupConfig::paper_default()
            },
            ..sample()
        };
        let mut buf = Vec::new();
        cp.write(&mut buf).unwrap();
        assert_eq!(Checkpoint::read(buf.as_slice()).unwrap(), cp);
    }

    #[test]
    fn rejects_truncated_input() {
        let cp = sample();
        let mut buf = Vec::new();
        cp.write(&mut buf).unwrap();
        for cut in [0, 5, buf.len() / 2, buf.len() - 2] {
            let res = Checkpoint::read(&buf[..cut]);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_corrupt_fields() {
        let cp = sample();
        let mut buf = Vec::new();
        cp.write(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let corrupted = text.replacen("mode topk 7", "mode topk x", 1);
        assert!(Checkpoint::read(corrupted.as_bytes()).is_err());
        let corrupted = text.replacen(HEADER, "#wrong", 1);
        assert!(Checkpoint::read(corrupted.as_bytes()).is_err());
        let corrupted = text.replacen("gate 42 2", "gate 42 x", 1);
        assert!(Checkpoint::read(corrupted.as_bytes()).is_err());
        let corrupted = text.replacen("layout zorder", "layout hilbert", 1);
        assert!(Checkpoint::read(corrupted.as_bytes()).is_err());
    }

    #[test]
    fn both_layouts_roundtrip() {
        for layout in CellLayout::ALL {
            let cp = Checkpoint { layout, ..sample() };
            let mut buf = Vec::new();
            cp.write(&mut buf).unwrap();
            let restored = Checkpoint::read(buf.as_slice()).unwrap();
            assert_eq!(restored.layout, layout);
            assert_eq!(restored, cp);
        }
    }

    #[test]
    fn rejects_mismatched_version() {
        let cp = sample();
        let mut buf = Vec::new();
        cp.write(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let old = text.replacen("v4", "v3", 1);
        let error = Checkpoint::read(old.as_bytes()).unwrap_err();
        assert!(
            error.to_string().contains("unsupported checkpoint version"),
            "unexpected error: {error}"
        );
    }

    #[test]
    fn gateless_checkpoint_roundtrips() {
        let cp = Checkpoint {
            gate: None,
            ..sample()
        };
        let mut buf = Vec::new();
        cp.write(&mut buf).unwrap();
        assert_eq!(Checkpoint::read(buf.as_slice()).unwrap(), cp);
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let cp = sample();
        assert!(cp.validate(4).is_ok());
        // Wrong grid size.
        assert!(matches!(cp.validate(3), Err(CheckpointError::Invalid(_))));
        // DecHash pointing at a unit that does not exist.
        let bad = Checkpoint {
            dechash: vec![(UnitId(9), CellId(0))],
            ..sample()
        };
        assert!(matches!(bad.validate(4), Err(CheckpointError::Invalid(_))));
        // Maintained place in an out-of-range cell.
        let mut bad = sample();
        bad.maintained[0].2 = CellId(99);
        assert!(matches!(bad.validate(4), Err(CheckpointError::Invalid(_))));
        // Gate unit count disagreeing with the position table.
        let mut bad = sample();
        bad.gate.as_mut().unwrap().units.pop();
        assert!(matches!(bad.validate(4), Err(CheckpointError::Invalid(_))));
        // Non-finite unit position.
        let mut bad = sample();
        bad.unit_positions[0] = Point::new(f64::NAN, 0.0);
        assert!(matches!(bad.validate(4), Err(CheckpointError::Invalid(_))));
    }
}
