//! Cell → shard assignment for the sharded engine.
//!
//! The original engine hashed cells to shards with `cell.index() % N` —
//! cheap, but spatially blind: the cells a protecting circle touches land
//! on *every* shard, so each update fans out to all `N` workers. A
//! [`ShardMap`] makes the assignment a first-class object with two
//! construction policies:
//!
//! * [`ShardMap::modulo`] — the legacy striping, kept as the differential
//!   oracle and the default for row-major runs;
//! * [`ShardMap::layout_ranges`] — contiguous rank ranges of a
//!   [`CellLayout`], with boundaries placed by per-cell load so every
//!   shard owns roughly the same number of lower-level pages. Under
//!   [`CellLayout::ZOrder`] a range is a compact spatial blob, so the
//!   handful of cells an update touches usually live on one or two
//!   shards instead of all of them.
//!
//! Exactness does not depend on the policy: any function assigning every
//! cell to exactly one shard partitions the place universe, and the merge
//! argument of [`super::ShardedCtup`] only needs that. The policy only
//! moves *where* the work happens.

use ctup_spatial::{convert, CellId, CellLayout, Grid};

/// A total assignment of grid cells to `num_shards` shards.
#[derive(Debug, Clone)]
pub struct ShardMap {
    num_shards: u32,
    /// `None` — modulo striping; `Some` — per-cell table built from
    /// contiguous layout-rank ranges (indexed by `CellId::index()`).
    table: Option<Vec<u32>>,
}

impl ShardMap {
    /// The legacy striped assignment: cell `c` belongs to shard
    /// `c.index() % num_shards`.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero (construction-time configuration
    /// bug, like `config.validate()`).
    #[must_use]
    pub fn modulo(num_shards: u32) -> Self {
        assert!(num_shards >= 1, "at least one shard is required");
        ShardMap {
            num_shards,
            table: None,
        }
    }

    /// Carves the cells of `grid`, in `layout` rank order, into
    /// `num_shards` contiguous ranges whose boundaries balance the total
    /// per-cell `load` (e.g. lower-level pages per cell from
    /// [`ctup_storage::PlaceStore::cell_pages`]). Every cell lands in
    /// exactly one shard; cells adjacent in the layout order land in the
    /// same or adjacent shards. Zero loads are counted as one so empty
    /// cells still spread across shards instead of piling into the last
    /// range.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero.
    #[must_use]
    pub fn layout_ranges(
        grid: &Grid,
        layout: CellLayout,
        num_shards: u32,
        mut load: impl FnMut(CellId) -> u64,
    ) -> Self {
        assert!(num_shards >= 1, "at least one shard is required");
        let order = layout.order(grid);
        let loads: Vec<u64> = order.iter().map(|&c| load(c).max(1)).collect();
        let total: u128 = loads.iter().map(|&l| u128::from(l)).sum();
        let mut table = vec![0u32; grid.num_cells()];
        let mut cum: u128 = 0;
        for (&cell, &l) in order.iter().zip(&loads) {
            cum += u128::from(l);
            // The shard whose fair share [s·total/N, (s+1)·total/N) the
            // cumulative load (exclusive of this cell's tail) falls into:
            // contiguous and non-decreasing along the order, and each
            // share receives ~total/N of load.
            let s = ((cum - 1) * u128::from(num_shards)) / total.max(1);
            table[cell.index()] = u32::try_from(s).unwrap_or(u32::MAX).min(num_shards - 1);
        }
        ShardMap {
            num_shards,
            table: Some(table),
        }
    }

    /// Number of shards this map partitions cells into.
    #[must_use]
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// The shard owning `cell`. A cell outside the grid the map was built
    /// over (impossible through the engine, which shares one grid with the
    /// store) degrades to modulo striping rather than panicking.
    #[inline]
    #[must_use]
    pub fn shard_of(&self, cell: CellId) -> u32 {
        match &self.table {
            Some(table) => match table.get(cell.index()) {
                Some(&s) => s,
                None => convert::id32(cell.index() % convert::index(self.num_shards)),
            },
            None => convert::id32(cell.index() % convert::index(self.num_shards)),
        }
    }

    /// Whether `shard` owns `cell`.
    #[inline]
    #[must_use]
    pub fn owns(&self, shard: u32, cell: CellId) -> bool {
        self.shard_of(cell) == shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_reproduces_the_legacy_striping() {
        let grid = Grid::unit_square(8);
        for n in [1u32, 2, 3, 7] {
            let map = ShardMap::modulo(n);
            for cell in grid.cells() {
                assert_eq!(
                    map.shard_of(cell),
                    convert::id32(cell.index() % convert::index(n)),
                );
                assert!(map.owns(map.shard_of(cell), cell));
            }
        }
    }

    /// Satellite of the Z-order PR: every cell is owned by exactly one
    /// shard, for every shard count the parallel tests run at.
    #[test]
    fn layout_ranges_partition_every_cell_exactly_once() {
        for side in [4u32, 8, 10] {
            let grid = Grid::unit_square(side);
            for layout in CellLayout::ALL {
                for n in [1u32, 2, 3, 7] {
                    let map = ShardMap::layout_ranges(&grid, layout, n, |_| 1);
                    let mut counts = vec![0usize; convert::index(n)];
                    for cell in grid.cells() {
                        let s = map.shard_of(cell);
                        assert!(s < n, "cell {cell:?} mapped to shard {s} of {n}");
                        counts[convert::index(s)] += 1;
                        // Exactly-one: shard_of is a function, so it is
                        // enough that exactly one shard claims ownership.
                        let owners = (0..n).filter(|&sh| map.owns(sh, cell)).count();
                        assert_eq!(owners, 1, "cell {cell:?} owned by {owners} shards");
                    }
                    assert_eq!(counts.iter().sum::<usize>(), grid.num_cells());
                    // Uniform loads: ranges within one cell of each other.
                    let lo = counts.iter().min().copied().unwrap_or(0);
                    let hi = counts.iter().max().copied().unwrap_or(0);
                    assert!(
                        hi - lo <= 1,
                        "{side}x{side} {layout} x{n}: uneven ranges {counts:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn layout_ranges_are_contiguous_in_rank_order() {
        let grid = Grid::unit_square(10);
        for layout in CellLayout::ALL {
            let map = ShardMap::layout_ranges(&grid, layout, 4, |_| 1);
            let shards: Vec<u32> = layout
                .order(&grid)
                .into_iter()
                .map(|c| map.shard_of(c))
                .collect();
            for w in shards.windows(2) {
                assert!(w[0] <= w[1], "shard sequence not monotone: {shards:?}");
            }
        }
    }

    #[test]
    fn boundaries_balance_skewed_loads() {
        let grid = Grid::unit_square(4);
        // One heavy cell (16 pages) among 15 light ones (1 page each):
        // with 2 shards, the heavy range should stay small in cell count.
        let map = ShardMap::layout_ranges(&grid, CellLayout::ZOrder, 2, |c| {
            if c.index() == 0 {
                16
            } else {
                1
            }
        });
        let heavy_shard = map.shard_of(CellId(0));
        let heavy_count = grid
            .cells()
            .filter(|&c| map.shard_of(c) == heavy_shard)
            .count();
        // Fair share is (16 + 15) / 2 ≈ 15.5 pages; the heavy cell alone
        // is 16, so its range must hold strictly fewer cells than the
        // light range.
        assert!(
            heavy_count < grid.num_cells() - heavy_count,
            "heavy range holds {heavy_count} of {} cells",
            grid.num_cells()
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardMap::modulo(0);
    }
}
