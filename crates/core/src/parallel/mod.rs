//! Sharded parallel CTUP execution engine.
//!
//! Grid cells are partitioned across `N` worker shards by a [`ShardMap`]
//! — either the legacy striping (`cell.index() % N`) or contiguous
//! [`CellLayout`] rank ranges balanced by cell load, which under Z-order
//! keeps each update's touched cells on few shards
//! ([`ShardedCtup::new_with_layout`]). Each shard runs a full [`OptCtup`]
//! restricted to its own cells via [`OptCtup::new_with_shard_map`].
//! Location updates are ingested in batches and broadcast to every shard
//! — the unit table is global and O(1) per update to maintain — but all
//! per-cell work (bound maintenance, cell accesses, safety recomputation)
//! is done only by the owning shard, so the expensive part of the update
//! runs `N`-wide in parallel and simulated-disk latency is paid on `N`
//! spindles at once. On the Z-order engine, when the store has a warmable
//! cache, the coordinator additionally computes the batch's touched-cell
//! union up front and hands it to the store as one coalesced working-set
//! hint before the shards start ([`ctup_storage::PlaceStore::prefetch`]);
//! the row-major engine skips the pass and stays bit-for-bit the legacy
//! engine, serving as the differential oracle.
//!
//! **Exactness.** A shard is a sequential `OptCtup` over the sub-universe
//! of places in its cells, so its local result is the exact local top-k
//! (or threshold set). Every global top-k entry has at most `k − 1`
//! entries below it globally, hence at most `k − 1` below it in its own
//! shard — so it appears in that shard's local top-k, and the global
//! result is exactly the k smallest `(safety, place id)` pairs of the
//! concatenated local results: the canonical answer, with the canonical
//! `SK` as the k-th entry of the merged list. Against the sequential
//! `OptCtup` that means identical `SK`, identical safety sequence, and
//! identical entries strictly below `SK`; the tail tied *at* `SK` may be
//! a different (equally true) selection, because the sequential scheme
//! only maintains a place once its cell's bound falls strictly below
//! `SK` and so picks among `SK`-tied places by access history. Threshold
//! mode has no tie boundary and agrees exactly, as does any single-shard
//! run (DESIGN.md §13 gives the argument in full). One barrier per batch
//! keeps timestamps aligned: the engine reports only after every shard
//! has finished the batch.
//!
//! Threading is `std::thread` + `std::sync::mpsc` only, in keeping with
//! the workspace's zero-dependency discipline. Each shard owns an
//! [`AtomicHistogram`] latency channel; [`ShardedCtup::latency_snapshot`]
//! merges them into the unified [`ctup_obs::LatencySnapshot`].

mod shardmap;

pub use shardmap::ShardMap;

use crate::algorithm::{CtupAlgorithm, InitStats, UpdateStats};
use crate::cells::touched_cells;
use crate::config::{CtupConfig, QueryMode};
use crate::metrics::Metrics;
use crate::opt::OptCtup;
use crate::types::{LocationUpdate, Safety, TopKEntry, UnitId};
use ctup_obs::{now_nanos, AtomicHistogram, LatencySnapshot, SpanSink, Stage};
use ctup_spatial::{convert, CellId, CellLayout, Circle, Point};
use ctup_storage::{PlaceStore, StorageError};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Per-shard latency histograms, shared with the worker thread. Recorded
/// per update, merged into the unified snapshot on demand.
#[derive(Debug, Default)]
struct ShardLatency {
    update_total: AtomicHistogram,
    update_maintain: AtomicHistogram,
    update_access: AtomicHistogram,
}

/// Engine → shard messages.
enum ToShard {
    /// Process every update of the batch in order, then reply.
    Batch(Arc<Vec<LocationUpdate>>),
    /// Exit the worker loop.
    Shutdown,
}

/// Shard → engine reply, sent once after construction (with
/// `safeties_computed` set) and once per processed batch.
struct FromShard {
    shard: u32,
    /// First storage error hit, if any; the shard stops mid-batch on it.
    error: Option<StorageError>,
    /// The shard's local result (exact over its own cells), or `None` when
    /// it is unchanged since this shard's previous reply — the coordinator
    /// keeps the last copy, so an unchanged shard skips the clone and, when
    /// *no* shard changed, the whole merge is skipped.
    result: Option<Vec<TopKEntry>>,
    /// The shard's cumulative metrics.
    metrics: Metrics,
    /// Aggregated per-batch costs (zero in the init reply).
    stats: UpdateStats,
    /// Safeties computed during initialization (zero in batch replies).
    safeties_computed: u64,
}

struct ShardHandle {
    tx: Sender<ToShard>,
    join: Option<JoinHandle<()>>,
}

/// The sharded parallel CTUP engine. Implements [`CtupAlgorithm`] (one
/// update = a batch of one); [`ShardedCtup::handle_batch`] is the batched
/// ingest path that amortizes the per-batch barrier.
pub struct ShardedCtup {
    config: CtupConfig,
    store: Arc<dyn PlaceStore>,
    /// The cell → shard assignment every worker filters by.
    shards: Arc<ShardMap>,
    workers: Vec<ShardHandle>,
    reply_rx: Receiver<FromShard>,
    latencies: Vec<Arc<ShardLatency>>,
    /// Engine-side mirror of unit positions (each shard holds the same
    /// global unit table; this avoids a round-trip for `unit_position`).
    unit_positions: Vec<Point>,
    /// Whether this engine runs the per-batch touched-cell computation
    /// feeding [`PlaceStore::prefetch`] — true only for the Z-order
    /// engine over a store with a warmable cache.
    prefetch: bool,
    shard_metrics: Vec<Metrics>,
    /// Latest local result of every shard; replies carry `None` when a
    /// shard's result is unchanged, so the merge always reads from here.
    shard_results: Vec<Vec<TopKEntry>>,
    /// Batches whose merge was skipped because no shard's local result
    /// changed (the merged result is a pure function of the local ones).
    merge_skips: u64,
    last_result: Vec<TopKEntry>,
    last_sk: Option<Safety>,
    metrics: Metrics,
    init_stats: InitStats,
    /// Causal span sink for per-shard illumination/merge spans; attached
    /// via [`CtupAlgorithm::attach_span_recorder`].
    spans: Option<Arc<SpanSink>>,
    /// One-shot trace context armed by [`CtupAlgorithm::set_trace_context`]
    /// and consumed by the next batch.
    trace: u64,
}

impl std::fmt::Debug for ShardedCtup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCtup")
            .field("config", &self.config)
            .field("num_shards", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ShardedCtup {
    /// Builds the engine with `num_shards` workers over `store` under the
    /// legacy modulo striping (cell `c` on shard `c.index() % N`). Each
    /// worker constructs its shard-restricted [`OptCtup`] concurrently;
    /// a storage fault during any shard's initialization fails the whole
    /// construction (the other workers are shut down first).
    ///
    /// # Panics
    /// Panics if `num_shards` is zero, or if a worker thread cannot be
    /// spawned (OS resource exhaustion at construction time).
    pub fn new(
        config: CtupConfig,
        store: Arc<dyn PlaceStore>,
        initial_units: &[Point],
        num_shards: u32,
    ) -> Result<Self, StorageError> {
        Self::with_shard_map(
            config,
            store,
            initial_units,
            ShardMap::modulo(num_shards),
            false,
        )
    }

    /// Builds the engine partitioned by contiguous `layout` rank ranges,
    /// balanced by per-cell page load at build time
    /// ([`ShardMap::layout_ranges`]). [`CellLayout::RowMajor`] instead
    /// keeps the legacy modulo striping — it is the differential oracle,
    /// and contiguous row-major ranges would be strictly worse than both
    /// (whole grid rows per shard: every vertically-moving unit still
    /// fans out everywhere).
    ///
    /// # Panics
    /// Panics if `num_shards` is zero, or if a worker thread cannot be
    /// spawned.
    pub fn new_with_layout(
        config: CtupConfig,
        store: Arc<dyn PlaceStore>,
        initial_units: &[Point],
        num_shards: u32,
        layout: CellLayout,
    ) -> Result<Self, StorageError> {
        let map = match layout {
            CellLayout::RowMajor => ShardMap::modulo(num_shards),
            CellLayout::ZOrder => {
                ShardMap::layout_ranges(store.grid(), layout, num_shards, |c| store.cell_pages(c))
            }
        };
        // The coalesced batch prefetch is part of the Z-order fast path;
        // the row-major engine stays bit-for-bit the legacy (pre-layout)
        // engine so differential runs compare layouts, not feature sets.
        let prefetch = layout == CellLayout::ZOrder && store.wants_prefetch();
        Self::with_shard_map(config, store, initial_units, map, prefetch)
    }

    /// Builds the engine over an explicit cell → shard assignment.
    /// `prefetch` opts the coordinator into the batch working-set hint
    /// pass ([`PlaceStore::prefetch`]) — meaningful only when the store
    /// wants it.
    fn with_shard_map(
        config: CtupConfig,
        store: Arc<dyn PlaceStore>,
        initial_units: &[Point],
        map: ShardMap,
        prefetch: bool,
    ) -> Result<Self, StorageError> {
        config.validate();
        let shards = Arc::new(map);
        let num_shards = shards.num_shards();
        let start = Instant::now();
        let io_before = store.stats().snapshot();
        // ctup-lint: allow(L010, replies are barrier-paced: at most one FromShard per shard is in flight per batch)
        let (reply_tx, reply_rx) = std::sync::mpsc::channel::<FromShard>();
        let units: Arc<Vec<Point>> = Arc::new(initial_units.to_vec());

        let mut workers = Vec::with_capacity(convert::index(num_shards));
        let mut latencies = Vec::with_capacity(convert::index(num_shards));
        for shard in 0..num_shards {
            // ctup-lint: allow(L010, the coordinator sends one ToShard then blocks on the reply barrier, so depth <= 1)
            let (tx, rx) = std::sync::mpsc::channel::<ToShard>();
            let latency = Arc::new(ShardLatency::default());
            let worker_cfg = config.clone();
            let worker_store = store.clone();
            let worker_units = units.clone();
            let worker_latency = latency.clone();
            let worker_reply = reply_tx.clone();
            let worker_shards = shards.clone();
            #[allow(clippy::expect_used)]
            let join = std::thread::Builder::new()
                .name(format!("ctup-shard-{shard}"))
                .spawn(move || {
                    shard_worker(
                        shard,
                        worker_shards,
                        worker_cfg,
                        worker_store,
                        &worker_units,
                        rx,
                        worker_reply,
                        &worker_latency,
                    );
                })
                // ctup-lint: allow(L001, thread spawn fails only on OS resource exhaustion at construction — mirrors the supervisor's spawn)
                .expect("spawn ctup-shard worker thread");
            workers.push(ShardHandle {
                tx,
                join: Some(join),
            });
            latencies.push(latency);
        }

        let mut this = ShardedCtup {
            unit_positions: initial_units.to_vec(),
            prefetch,
            shard_metrics: vec![Metrics::default(); convert::index(num_shards)],
            shard_results: vec![Vec::new(); convert::index(num_shards)],
            merge_skips: 0,
            last_result: Vec::new(),
            last_sk: None,
            metrics: Metrics::default(),
            init_stats: InitStats::default(),
            spans: None,
            trace: 0,
            config,
            store,
            shards,
            workers,
            reply_rx,
            latencies,
        };

        // Init barrier: one reply per shard, carrying its initial local
        // result. A failed shard fails construction; Drop shuts the rest
        // down.
        let mut safeties_computed = 0u64;
        let mut first_err = None;
        for _ in 0..this.workers.len() {
            let reply = this.recv_reply();
            safeties_computed += reply.safeties_computed;
            if let Some(e) = reply.error {
                first_err.get_or_insert(e);
            }
            this.shard_metrics[convert::index(reply.shard)] = reply.metrics;
            if let Some(result) = reply.result {
                this.shard_results[convert::index(reply.shard)] = result;
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let merged: Vec<TopKEntry> = this.shard_results.iter().flatten().copied().collect();
        let (result, sk) = merge_results(merged, this.config.mode);
        this.last_result = result;
        this.last_sk = sk;
        this.rebuild_merged_metrics();
        this.init_stats = InitStats {
            wall: start.elapsed(),
            storage: this.store.stats().snapshot().since(&io_before),
            safeties_computed,
        };
        Ok(this)
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The cell → shard assignment the engine runs under (for fan-out
    /// accounting in benchmarks and tests).
    pub fn shard_map(&self) -> &ShardMap {
        &self.shards
    }

    /// Batches whose global merge was skipped because no shard's local
    /// result changed — the merged top-k is a pure function of the local
    /// results, so the previous one was reused verbatim.
    pub fn merge_skips(&self) -> u64 {
        self.merge_skips
    }

    /// The lower-level store the engine runs over.
    pub fn store(&self) -> Arc<dyn PlaceStore> {
        self.store.clone()
    }

    /// Processes a batch of updates: broadcast to every shard, one barrier,
    /// then an exact global merge. The returned [`UpdateStats`] aggregates
    /// the batch: `cells_accessed` sums over shards, the phase nanos are
    /// the slowest shard's (the critical path — the batch is not done
    /// before its slowest shard is), `result_changed` compares against the
    /// result of the previous batch.
    ///
    /// On a storage error the engine, like the sequential schemes, is left
    /// mid-batch and must be discarded.
    pub fn handle_batch(
        &mut self,
        updates: Vec<LocationUpdate>,
    ) -> Result<UpdateStats, StorageError> {
        if updates.is_empty() {
            return Ok(UpdateStats::default());
        }
        // The trace context is one-shot: consumed by this batch so a stale
        // id never leaks onto later untraced batches.
        let trace = std::mem::take(&mut self.trace);
        let sink = if trace != 0 { self.spans.clone() } else { None };
        let fanout_start = sink.as_ref().map(|_| now_nanos());
        let count = convert::count64(updates.len());
        // Mirror maintenance doubles as the prefetch scan: walking the
        // batch against the *pre-update* mirror yields exactly the cells
        // the shards are about to touch, so one coalesced prefetch warms
        // the store's cache before any worker pays a demand read.
        let radius = self.config.protection_radius;
        let mut prefetch_cells: Vec<CellId> = Vec::new();
        for update in &updates {
            let idx = update.unit.index();
            if idx < self.unit_positions.len() {
                if self.prefetch {
                    let old = self.unit_positions[idx];
                    prefetch_cells.extend(touched_cells(
                        self.store.grid(),
                        &Circle::new(old, radius),
                        &Circle::new(update.new, radius),
                    ));
                }
                self.unit_positions[idx] = update.new;
            }
        }
        if !prefetch_cells.is_empty() {
            prefetch_cells.sort_unstable();
            prefetch_cells.dedup();
            self.store.prefetch(&prefetch_cells);
        }
        let batch = Arc::new(updates);
        for worker in &self.workers {
            if worker.tx.send(ToShard::Batch(batch.clone())).is_err() {
                // ctup-lint: allow(L001, a shard death is a worker panic — propagating it trips the supervisor boundary exactly like a sequential worker panic)
                panic!("ctup shard worker died before the batch was sent");
            }
        }

        let mut any_changed = false;
        let mut batch_stats = UpdateStats::default();
        let mut first_err = None;
        for _ in 0..self.workers.len() {
            let reply = self.recv_reply();
            if let Some(e) = reply.error {
                first_err.get_or_insert(e);
            }
            batch_stats.cells_accessed += reply.stats.cells_accessed;
            batch_stats.maintain_nanos = batch_stats.maintain_nanos.max(reply.stats.maintain_nanos);
            batch_stats.access_nanos = batch_stats.access_nanos.max(reply.stats.access_nanos);
            if let (Some(s), Some(t0)) = (sink.as_deref(), fanout_start) {
                // Per-shard illumination span: the shard's measured
                // maintain+access window, reconstructed on the coordinator
                // from the reply (the worker threads stay span-free). The
                // shard index keys the span id, so the N spans of one
                // trace stay distinct.
                let phase = reply
                    .stats
                    .maintain_nanos
                    .saturating_add(reply.stats.access_nanos);
                s.record_stage(
                    trace,
                    Stage::ShardPhase,
                    reply.shard,
                    t0,
                    t0.saturating_add(phase),
                    true,
                );
            }
            self.shard_metrics[convert::index(reply.shard)] = reply.metrics;
            if let Some(result) = reply.result {
                any_changed = true;
                self.shard_results[convert::index(reply.shard)] = result;
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        // Merge skip: the merged result is a deterministic function of the
        // local results, so when every shard reported "unchanged" (no local
        // safety change at or below its SK view) the previous merged top-k
        // and SK are still exact — no sort, no truncate, no comparison.
        let merge_start = sink.as_ref().map(|_| now_nanos());
        let changed = if any_changed {
            let merged: Vec<TopKEntry> = self.shard_results.iter().flatten().copied().collect();
            let (result, sk) = merge_results(merged, self.config.mode);
            let changed = result != self.last_result;
            self.last_result = result;
            self.last_sk = sk;
            changed
        } else {
            self.merge_skips += 1;
            false
        };

        self.metrics.updates_processed += count;
        if changed {
            self.metrics.result_changes += 1;
        }
        self.rebuild_merged_metrics();
        batch_stats.result_changed = changed;
        if let (Some(s), Some(m0)) = (sink.as_deref(), merge_start) {
            s.record_stage(trace, Stage::Merge, 0, m0, now_nanos(), true);
        }
        Ok(batch_stats)
    }

    /// The per-shard latency histograms merged into one view, with the
    /// store's disk-read histogram joined in. Checkpoint timing stays
    /// empty — the engine does not checkpoint.
    pub fn latency_snapshot(&self) -> LatencySnapshot {
        let mut snap = self.shard_latency();
        snap.disk_read_nanos = self.store.stats().read_latency();
        snap
    }

    /// Just the merged per-shard update histograms (no disk-read series —
    /// callers building a unified snapshot fold that in themselves, and
    /// must not get it twice).
    fn shard_latency(&self) -> LatencySnapshot {
        let mut snap = LatencySnapshot::default();
        for shard in &self.latencies {
            snap.update_total_nanos
                .merge(&shard.update_total.snapshot());
            snap.update_maintain_nanos
                .merge(&shard.update_maintain.snapshot());
            snap.update_access_nanos
                .merge(&shard.update_access.snapshot());
        }
        snap
    }

    /// Receives one shard reply; a closed channel means every worker died
    /// without replying, which only a worker panic can cause.
    fn recv_reply(&self) -> FromShard {
        match self.reply_rx.recv() {
            Ok(reply) => reply,
            // ctup-lint: allow(L001, a closed reply channel is a shard panic — propagate it like any worker panic, to the supervisor boundary)
            Err(_) => panic!("ctup shard worker died without replying"),
        }
    }

    /// Recomputes the engine-level metrics view from the latest cumulative
    /// per-shard metrics: logical counters and phase nanos sum across
    /// shards (total work done), the gauges sum to the global state size,
    /// and `maintained_peak` tracks the peak of the summed gauge.
    /// `updates_processed`/`result_changes` are engine-owned (each update
    /// is one update, no matter how many shards saw it).
    fn rebuild_merged_metrics(&mut self) {
        let sum = |f: fn(&Metrics) -> u64| -> u64 {
            self.shard_metrics
                .iter()
                .map(f)
                .fold(0, u64::saturating_add)
        };
        self.metrics.cells_accessed = sum(|m| m.cells_accessed);
        self.metrics.places_loaded = sum(|m| m.places_loaded);
        self.metrics.lb_increments = sum(|m| m.lb_increments);
        self.metrics.lb_decrements = sum(|m| m.lb_decrements);
        self.metrics.lb_decrements_suppressed = sum(|m| m.lb_decrements_suppressed);
        self.metrics.cells_darkened = sum(|m| m.cells_darkened);
        self.metrics.maintain_nanos = sum(|m| m.maintain_nanos);
        self.metrics.access_nanos = sum(|m| m.access_nanos);
        self.metrics.dechash_len = sum(|m| m.dechash_len);
        self.metrics.set_maintained(sum(|m| m.maintained_now));
    }
}

impl Drop for ShardedCtup {
    fn drop(&mut self) {
        for worker in &self.workers {
            let _ = worker.tx.send(ToShard::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl CtupAlgorithm for ShardedCtup {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn config(&self) -> &CtupConfig {
        &self.config
    }

    fn handle_update(&mut self, update: LocationUpdate) -> Result<UpdateStats, StorageError> {
        self.handle_batch(vec![update])
    }

    fn result(&self) -> Vec<TopKEntry> {
        self.last_result.clone()
    }

    fn sk(&self) -> Option<Safety> {
        self.last_sk
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn init_stats(&self) -> &InitStats {
        &self.init_stats
    }

    fn unit_position(&self, unit: UnitId) -> Point {
        self.unit_positions[unit.index()]
    }

    fn num_units(&self) -> usize {
        self.unit_positions.len()
    }

    fn internal_latency(&self) -> Option<LatencySnapshot> {
        Some(self.shard_latency())
    }

    fn attach_span_recorder(&mut self, spans: Arc<SpanSink>) {
        self.spans = Some(spans);
    }

    fn set_trace_context(&mut self, trace: u64) {
        self.trace = trace;
    }

    fn records_spans(&self) -> bool {
        self.spans.is_some()
    }
}

/// Sorts the concatenated local results into the global `(safety, place)`
/// order and cuts them down to the query mode's result; returns the result
/// and the global `SK`.
///
/// Top-k: every global top-k entry appears in its shard's local top-k
/// (at most `k − 1` entries precede it anywhere, so at most `k − 1` in its
/// shard), hence the k smallest merged pairs are the canonical top-k —
/// the sequential result up to the choice of entries tied at `SK` (see
/// the module docs). The union holds at least `min(k, Σ nₛ)` entries, so
/// fewer than `k` merged entries means fewer than `k` places exist and
/// `SK` is `None`, also matching the sequential scheme. Threshold: local
/// threshold sets are disjoint and exact, so their sorted union is the
/// global set.
fn merge_results(mut merged: Vec<TopKEntry>, mode: QueryMode) -> (Vec<TopKEntry>, Option<Safety>) {
    merged.sort_unstable_by_key(|e| (e.safety, e.place));
    match mode {
        QueryMode::TopK(k) => {
            let sk = if merged.len() >= k {
                merged.get(k - 1).map(|e| e.safety)
            } else {
                None
            };
            merged.truncate(k);
            (merged, sk)
        }
        QueryMode::Threshold(_) => (merged, None),
    }
}

/// The worker loop: builds the shard-restricted `OptCtup`, replies with
/// the initial local state, then serves batches until shutdown.
#[allow(clippy::too_many_arguments)]
fn shard_worker(
    shard: u32,
    shards: Arc<ShardMap>,
    config: CtupConfig,
    store: Arc<dyn PlaceStore>,
    units: &[Point],
    rx: Receiver<ToShard>,
    tx: Sender<FromShard>,
    latency: &ShardLatency,
) {
    let mut alg = match OptCtup::new_with_shard_map(config, store, units, shard, shards) {
        Ok(alg) => {
            let init = FromShard {
                shard,
                error: None,
                result: Some(alg.result()),
                metrics: alg.metrics().clone(),
                stats: UpdateStats::default(),
                safeties_computed: alg.init_stats().safeties_computed,
            };
            if tx.send(init).is_err() {
                return; // engine dropped mid-construction
            }
            alg
        }
        Err(e) => {
            let _ = tx.send(FromShard {
                shard,
                error: Some(e),
                result: None,
                metrics: Metrics::default(),
                stats: UpdateStats::default(),
                safeties_computed: 0,
            });
            return;
        }
    };

    loop {
        match rx.recv() {
            Ok(ToShard::Batch(updates)) => {
                let mut stats = UpdateStats::default();
                let mut error = None;
                let mut changed = false;
                for &update in updates.iter() {
                    match alg.handle_update(update) {
                        Ok(s) => {
                            latency.update_total.record(s.total_nanos());
                            latency.update_maintain.record(s.maintain_nanos);
                            latency.update_access.record(s.access_nanos);
                            stats.maintain_nanos += s.maintain_nanos;
                            stats.access_nanos += s.access_nanos;
                            stats.cells_accessed += s.cells_accessed;
                            changed |= s.result_changed;
                        }
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                let reply = FromShard {
                    shard,
                    error,
                    // Unchanged local result ⇒ the coordinator's cached
                    // copy is still exact: skip the clone and signal that
                    // the merge may be skippable.
                    result: if changed { Some(alg.result()) } else { None },
                    metrics: alg.metrics().clone(),
                    stats,
                    safeties_computed: 0,
                };
                if tx.send(reply).is_err() {
                    return; // engine dropped mid-batch
                }
            }
            Ok(ToShard::Shutdown) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use crate::types::{Place, PlaceId};
    use ctup_spatial::Grid;
    use ctup_storage::CellLocalStore;

    /// Miri executes threads faithfully but slowly; keep the workload tiny
    /// there while CI and local runs get the full sweep.
    const STEPS: usize = if cfg!(miri) { 12 } else { 200 };

    fn grid_place_set() -> Vec<Place> {
        let mut places = Vec::new();
        for i in 0..8u32 {
            for j in 0..8u32 {
                let id = i * 8 + j;
                places.push(Place::point(
                    PlaceId(id),
                    Point::new(i as f64 / 8.0 + 0.06, j as f64 / 8.0 + 0.06),
                    1 + (id % 5),
                ));
            }
        }
        places
    }

    fn units() -> Vec<Point> {
        (0..10)
            .map(|i| Point::new(0.05 + 0.09 * i as f64, 0.95 - 0.085 * i as f64))
            .collect()
    }

    fn fresh_store() -> Arc<dyn PlaceStore> {
        Arc::new(CellLocalStore::build(
            Grid::unit_square(8),
            grid_place_set(),
        ))
    }

    fn updates(steps: usize, seed: u64) -> Vec<LocationUpdate> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..steps)
            .map(|_| LocationUpdate {
                unit: UnitId((next() * 10.0) as u32 % 10),
                new: Point::new(next(), next()),
            })
            .collect()
    }

    /// The module-doc contract: identical `SK`, identical safety
    /// sequence, identical entries strictly below `SK`; single-shard runs
    /// must be exactly equal. The tail tied at `SK` is checked against
    /// the oracle by the callers that track positions.
    fn assert_equivalent(seq: &OptCtup, sharded: &ShardedCtup, num_shards: u32, label: &str) {
        let sk = seq.sk();
        assert_eq!(sk, sharded.sk(), "{label}: SK");
        let seq_result = seq.result();
        let sharded_result = sharded.result();
        if num_shards <= 1 {
            assert_eq!(seq_result, sharded_result, "{label}: single shard");
            return;
        }
        let safeties = |r: &[TopKEntry]| r.iter().map(|e| e.safety).collect::<Vec<_>>();
        assert_eq!(
            safeties(&seq_result),
            safeties(&sharded_result),
            "{label}: safety sequence"
        );
        let strictly_below = |r: &[TopKEntry]| -> Vec<TopKEntry> {
            r.iter()
                .filter(|e| sk.is_none_or(|sk| e.safety < sk))
                .copied()
                .collect()
        };
        assert_eq!(
            strictly_below(&seq_result),
            strictly_below(&sharded_result),
            "{label}: entries strictly below SK"
        );
    }

    #[test]
    fn matches_sequential_opt_per_update() {
        for num_shards in [1u32, 2, 3, 7] {
            let config = CtupConfig::with_k(5);
            let oracle = Oracle::new(grid_place_set());
            let mut positions = units();
            let mut seq = OptCtup::new(config.clone(), fresh_store(), &positions).expect("init");
            let mut sharded =
                ShardedCtup::new(config, fresh_store(), &positions, num_shards).expect("init");
            assert_equivalent(&seq, &sharded, num_shards, "init");
            for update in updates(STEPS, 0x51ED + u64::from(num_shards)) {
                seq.handle_update(update).expect("seq update");
                sharded.handle_update(update).expect("sharded update");
                positions[update.unit.index()] = update.new;
                let label = format!("{num_shards} shards");
                assert_equivalent(&seq, &sharded, num_shards, &label);
            }
            oracle.assert_result_matches(&sharded.result(), &positions, 0.1, QueryMode::TopK(5));
        }
    }

    /// The tentpole differential: contiguous Z-order range sharding must
    /// stay oracle-exact against the sequential `OptCtup` after every
    /// update, at every shard count the modulo suite runs at.
    #[test]
    fn zorder_range_sharding_matches_sequential_per_update() {
        for num_shards in [1u32, 2, 3, 7] {
            let config = CtupConfig::with_k(5);
            let oracle = Oracle::new(grid_place_set());
            let mut positions = units();
            let mut seq = OptCtup::new(config.clone(), fresh_store(), &positions).expect("init");
            let mut sharded = ShardedCtup::new_with_layout(
                config,
                fresh_store(),
                &positions,
                num_shards,
                CellLayout::ZOrder,
            )
            .expect("init");
            assert_equivalent(&seq, &sharded, num_shards, "zorder init");
            for update in updates(STEPS, 0x20DE + u64::from(num_shards)) {
                seq.handle_update(update).expect("seq update");
                sharded.handle_update(update).expect("sharded update");
                positions[update.unit.index()] = update.new;
                let label = format!("zorder {num_shards} shards");
                assert_equivalent(&seq, &sharded, num_shards, &label);
            }
            oracle.assert_result_matches(&sharded.result(), &positions, 0.1, QueryMode::TopK(5));
        }
    }

    /// Merge-skip satellite: a batch in which no shard's local result
    /// changes reuses the previous merged top-k (and SK) without
    /// re-merging — and the reused result is still oracle-exact.
    #[test]
    fn unchanged_batches_reuse_the_merged_result() {
        let config = CtupConfig::with_k(5);
        let mut positions = units();
        let mut seq = OptCtup::new(config.clone(), fresh_store(), &positions).expect("init");
        let mut sharded = ShardedCtup::new(config, fresh_store(), &positions, 3).expect("init");
        for update in updates(STEPS.min(40), 0x5C1B) {
            seq.handle_update(update).expect("seq update");
            sharded.handle_update(update).expect("sharded update");
            positions[update.unit.index()] = update.new;
        }
        // Re-announcing every unit's current position moves nothing, so no
        // safety changes; by the second round the DecHash has absorbed the
        // decrease-once ops too and every shard reports "unchanged".
        let noop: Vec<LocationUpdate> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| LocationUpdate {
                unit: UnitId(convert::id32(i)),
                new: p,
            })
            .collect();
        for &u in &noop {
            seq.handle_update(u).expect("seq noop");
        }
        sharded.handle_batch(noop.clone()).expect("noop batch");
        let before = sharded.result();
        let sk_before = sharded.sk();
        let skips_before = sharded.merge_skips();
        for &u in &noop {
            seq.handle_update(u).expect("seq noop");
        }
        sharded.handle_batch(noop).expect("noop batch");
        assert!(
            sharded.merge_skips() > skips_before,
            "second no-op batch should skip the merge"
        );
        assert_eq!(sharded.result(), before, "reused result drifted");
        assert_eq!(sharded.sk(), sk_before, "reused SK drifted");
        assert_equivalent(&seq, &sharded, 3, "after skipped merges");
        let oracle = Oracle::new(grid_place_set());
        oracle.assert_result_matches(&sharded.result(), &positions, 0.1, QueryMode::TopK(5));
    }

    #[test]
    fn batched_ingest_matches_sequential_at_batch_boundaries() {
        let config = CtupConfig::with_k(5);
        let mut seq = OptCtup::new(config.clone(), fresh_store(), &units()).expect("init");
        let mut sharded = ShardedCtup::new(config, fresh_store(), &units(), 3).expect("init");
        for (batch_no, batch) in updates(STEPS, 0xBA7C).chunks(8).enumerate() {
            for &u in batch {
                seq.handle_update(u).expect("seq update");
            }
            sharded.handle_batch(batch.to_vec()).expect("batch");
            assert_equivalent(&seq, &sharded, 3, &format!("batch {batch_no}"));
        }
        assert_eq!(
            sharded.metrics().updates_processed,
            seq.metrics().updates_processed
        );
    }

    #[test]
    fn tracks_oracle_and_counts_work_once() {
        let oracle = Oracle::new(grid_place_set());
        let mut positions = units();
        let mut sharded =
            ShardedCtup::new(CtupConfig::with_k(5), fresh_store(), &positions, 4).expect("init");
        for update in updates(STEPS, 0x0AC1) {
            sharded.handle_update(update).expect("update");
            positions[update.unit.index()] = update.new;
            oracle.assert_result_matches(&sharded.result(), &positions, 0.1, QueryMode::TopK(5));
            assert_eq!(sharded.unit_position(update.unit), update.new);
        }
        assert_eq!(sharded.metrics().updates_processed, STEPS as u64);
        let lat = sharded.latency_snapshot();
        assert_eq!(lat.update_total_nanos.count(), STEPS as u64 * 4);
    }

    #[test]
    fn threshold_mode_matches_sequential() {
        let config = CtupConfig {
            mode: QueryMode::Threshold(-2),
            ..CtupConfig::paper_default()
        };
        let mut seq = OptCtup::new(config.clone(), fresh_store(), &units()).expect("init");
        let mut sharded = ShardedCtup::new(config, fresh_store(), &units(), 2).expect("init");
        for update in updates(STEPS, 0x7A0) {
            seq.handle_update(update).expect("seq update");
            sharded.handle_update(update).expect("sharded update");
            assert_eq!(seq.result(), sharded.result());
        }
    }

    /// With a recorder attached and a trace armed, one batch records one
    /// illumination span per shard (keyed by shard index) plus one merge
    /// span — and the trace context is one-shot, so the next batch records
    /// nothing.
    #[test]
    fn traced_batch_records_per_shard_and_merge_spans() {
        let sink = Arc::new(SpanSink::new(256));
        let mut sharded =
            ShardedCtup::new(CtupConfig::with_k(5), fresh_store(), &units(), 3).expect("init");
        sharded.attach_span_recorder(Arc::clone(&sink));
        assert!(sharded.records_spans());
        let trace = 0xABCD;
        sharded.set_trace_context(trace);
        sharded.handle_batch(updates(4, 0x5EED)).expect("batch");
        sharded
            .handle_batch(updates(4, 0x0DD))
            .expect("untraced batch");

        let snap = sink.snapshot();
        let shard_spans: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.stage == Stage::ShardPhase)
            .collect();
        assert_eq!(shard_spans.len(), 3, "one illumination span per shard");
        let mut ks: Vec<u32> = shard_spans.iter().map(|s| s.aux).collect();
        ks.sort_unstable();
        assert_eq!(ks, vec![0, 1, 2]);
        assert_eq!(
            snap.spans
                .iter()
                .filter(|s| s.stage == Stage::Merge)
                .count(),
            1,
            "exactly one merge span: the second batch ran untraced"
        );
        assert!(snap.spans.iter().all(|s| s.trace == trace));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut sharded =
            ShardedCtup::new(CtupConfig::with_k(3), fresh_store(), &units(), 2).expect("init");
        let before = sharded.result();
        let stats = sharded.handle_batch(Vec::new()).expect("empty batch");
        assert_eq!(stats, UpdateStats::default());
        assert_eq!(sharded.result(), before);
        assert_eq!(sharded.metrics().updates_processed, 0);
    }
}
