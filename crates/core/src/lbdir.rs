//! The lower-bound directory: per-cell lower bounds plus an ordering that
//! yields dark cells in increasing lower-bound order.
//!
//! Both schemes repeatedly need "the dark cell with the smallest lower
//! bound" (initialization illuminates in that order; updates access every
//! cell with `lb < SK`, cheapest first so `SK` can tighten between
//! accesses). Lower bounds change a handful of cells per update, so a
//! `BTreeSet<(lb, cell)>` mirror of the flat array is the right trade.

use crate::types::{Safety, LB_NONE};
use ctup_spatial::{convert, CellId};
use std::collections::BTreeSet;

/// Per-cell lower bounds with ordered iteration.
///
/// Cells may be *detached* (BasicCTUP removes illuminated cells from the
/// directory); detached cells keep no lower bound.
#[derive(Debug, Clone)]
pub struct LbDirectory {
    lbs: Vec<Safety>,
    attached: Vec<bool>,
    ordered: BTreeSet<(Safety, CellId)>,
}

impl LbDirectory {
    /// Creates a directory for `num_cells` cells, all attached with the
    /// empty-cell bound [`LB_NONE`].
    pub fn new(num_cells: usize) -> Self {
        let mut ordered = BTreeSet::new();
        for i in 0..num_cells {
            ordered.insert((LB_NONE, CellId(convert::id32(i))));
        }
        LbDirectory {
            lbs: vec![LB_NONE; num_cells],
            attached: vec![true; num_cells],
            ordered,
        }
    }

    /// Number of cells (attached or not).
    pub fn num_cells(&self) -> usize {
        self.lbs.len()
    }

    /// Whether `cell` is attached.
    pub fn is_attached(&self, cell: CellId) -> bool {
        self.attached[cell.index()]
    }

    /// The lower bound of an attached cell.
    ///
    /// # Panics
    /// Panics in debug builds when the cell is detached.
    pub fn get(&self, cell: CellId) -> Safety {
        debug_assert!(self.attached[cell.index()], "{cell:?} is detached");
        self.lbs[cell.index()]
    }

    /// Sets the lower bound of an attached cell.
    pub fn set(&mut self, cell: CellId, lb: Safety) {
        debug_assert!(self.attached[cell.index()], "{cell:?} is detached");
        let old = self.lbs[cell.index()];
        if old == lb {
            return;
        }
        let removed = self.ordered.remove(&(old, cell));
        debug_assert!(removed);
        self.ordered.insert((lb, cell));
        self.lbs[cell.index()] = lb;
    }

    /// Adds `delta` to the lower bound of an attached cell, saturating so
    /// the [`LB_NONE`] sentinel is preserved, and returns the new value.
    pub fn add(&mut self, cell: CellId, delta: Safety) -> Safety {
        let old = self.get(cell);
        let new = if old == LB_NONE {
            LB_NONE
        } else {
            old.saturating_add(delta)
        };
        self.set(cell, new);
        new
    }

    /// Detaches `cell` (BasicCTUP: the cell becomes illuminated).
    pub fn detach(&mut self, cell: CellId) {
        debug_assert!(self.attached[cell.index()], "{cell:?} already detached");
        let removed = self.ordered.remove(&(self.lbs[cell.index()], cell));
        debug_assert!(removed);
        self.attached[cell.index()] = false;
    }

    /// Re-attaches `cell` with lower bound `lb` (BasicCTUP: darkening).
    pub fn attach(&mut self, cell: CellId, lb: Safety) {
        debug_assert!(!self.attached[cell.index()], "{cell:?} already attached");
        self.attached[cell.index()] = true;
        self.lbs[cell.index()] = lb;
        self.ordered.insert((lb, cell));
    }

    /// The attached cell with the smallest lower bound.
    pub fn first(&self) -> Option<(Safety, CellId)> {
        self.ordered.first().copied()
    }

    /// Iterates attached cells in increasing lower-bound order.
    pub fn iter_increasing(&self) -> impl Iterator<Item = (Safety, CellId)> + '_ {
        self.ordered.iter().copied()
    }

    /// Checks internal consistency (mirror set matches the flat array);
    /// used by tests.
    pub fn check_invariants(&self) {
        let mut count = 0;
        for (i, (&lb, &attached)) in self.lbs.iter().zip(&self.attached).enumerate() {
            if attached {
                count += 1;
                assert!(
                    self.ordered.contains(&(lb, CellId(convert::id32(i)))),
                    "cell {i} missing from ordered mirror"
                );
            }
        }
        assert_eq!(count, self.ordered.len(), "stale entries in ordered mirror");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_directory_is_all_lb_none() {
        let d = LbDirectory::new(4);
        for i in 0..4 {
            assert_eq!(d.get(CellId(i)), LB_NONE);
            assert!(d.is_attached(CellId(i)));
        }
        d.check_invariants();
    }

    #[test]
    fn ordering_follows_lower_bounds() {
        let mut d = LbDirectory::new(4);
        d.set(CellId(0), -3);
        d.set(CellId(1), 5);
        d.set(CellId(2), -8);
        let order: Vec<CellId> = d.iter_increasing().map(|(_, c)| c).collect();
        assert_eq!(order, vec![CellId(2), CellId(0), CellId(1), CellId(3)]);
        assert_eq!(d.first(), Some((-8, CellId(2))));
        d.check_invariants();
    }

    #[test]
    fn add_saturates_at_lb_none() {
        let mut d = LbDirectory::new(2);
        assert_eq!(d.add(CellId(0), -1), LB_NONE); // empty cell stays empty
        d.set(CellId(0), 2);
        assert_eq!(d.add(CellId(0), -3), -1);
        assert_eq!(d.add(CellId(0), 1), 0);
        d.check_invariants();
    }

    #[test]
    fn detach_and_attach_roundtrip() {
        let mut d = LbDirectory::new(3);
        d.set(CellId(1), -5);
        d.detach(CellId(1));
        assert!(!d.is_attached(CellId(1)));
        assert_eq!(d.iter_increasing().count(), 2);
        d.attach(CellId(1), -2);
        assert_eq!(d.get(CellId(1)), -2);
        assert_eq!(d.first(), Some((-2, CellId(1))));
        d.check_invariants();
    }

    #[test]
    fn set_same_value_is_noop() {
        let mut d = LbDirectory::new(2);
        d.set(CellId(0), 7);
        d.set(CellId(0), 7);
        assert_eq!(d.get(CellId(0)), 7);
        d.check_invariants();
    }
}
