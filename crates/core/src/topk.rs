//! An ordered multiset of `(safety, place)` pairs.
//!
//! All schemes need "the k smallest safeties among the places currently
//! held in memory" (`SK`) and the corresponding top-k result. A `BTreeSet`
//! keyed by `(safety, place)` gives O(log n) updates and O(k) result
//! extraction; `k` is small (15 by default) so walking the prefix is cheap.

use crate::types::{PlaceId, Safety, TopKEntry};
use std::collections::BTreeSet;

/// Places ordered by `(safety, id)`.
#[derive(Debug, Default, Clone)]
pub struct SafetyOrdered {
    set: BTreeSet<(Safety, PlaceId)>,
}

impl SafetyOrdered {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked places.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no places are tracked.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Tracks `place` with `safety`.
    ///
    /// # Panics
    /// Panics in debug builds if the place is already tracked with this
    /// safety (every place must be tracked at most once).
    pub fn insert(&mut self, place: PlaceId, safety: Safety) {
        let fresh = self.set.insert((safety, place));
        debug_assert!(fresh, "{place:?} already tracked at safety {safety}");
    }

    /// Stops tracking `place`, which must currently have `safety`.
    pub fn remove(&mut self, place: PlaceId, safety: Safety) {
        let found = self.set.remove(&(safety, place));
        debug_assert!(found, "{place:?} not tracked at safety {safety}");
    }

    /// Moves `place` from `old` to `new` safety.
    pub fn update(&mut self, place: PlaceId, old: Safety, new: Safety) {
        if old != new {
            self.remove(place, old);
            self.insert(place, new);
        }
    }

    /// Safety of the k-th smallest entry (1-based `k`), i.e. the paper's
    /// `SK`; `None` when fewer than `k` places are tracked.
    pub fn kth_safety(&self, k: usize) -> Option<Safety> {
        debug_assert!(k > 0);
        self.set.iter().nth(k - 1).map(|&(s, _)| s)
    }

    /// The `k` smallest entries in `(safety, id)` order.
    pub fn top_k(&self, k: usize) -> Vec<TopKEntry> {
        self.set
            .iter()
            .take(k)
            .map(|&(safety, place)| TopKEntry { place, safety })
            .collect()
    }

    /// All entries with `safety < bound`, in `(safety, id)` order.
    pub fn below(&self, bound: Safety) -> Vec<TopKEntry> {
        self.set
            .iter()
            .take_while(|&&(s, _)| s < bound)
            .map(|&(safety, place)| TopKEntry { place, safety })
            .collect()
    }

    /// Iterates all `(safety, place)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (Safety, PlaceId)> + '_ {
        self.set.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> SafetyOrdered {
        let mut s = SafetyOrdered::new();
        for (id, safety) in [(0, -3), (1, 5), (2, -3), (3, 0), (4, -8)] {
            s.insert(PlaceId(id), safety);
        }
        s
    }

    #[test]
    fn kth_safety_is_sk() {
        let s = filled();
        assert_eq!(s.kth_safety(1), Some(-8));
        assert_eq!(s.kth_safety(3), Some(-3));
        assert_eq!(s.kth_safety(5), Some(5));
        assert_eq!(s.kth_safety(6), None);
    }

    #[test]
    fn top_k_orders_ties_by_id() {
        let s = filled();
        let top = s.top_k(3);
        assert_eq!(
            top,
            vec![
                TopKEntry {
                    place: PlaceId(4),
                    safety: -8
                },
                TopKEntry {
                    place: PlaceId(0),
                    safety: -3
                },
                TopKEntry {
                    place: PlaceId(2),
                    safety: -3
                },
            ]
        );
        // Asking for more than tracked returns everything.
        assert_eq!(s.top_k(100).len(), 5);
    }

    #[test]
    fn update_moves_entries() {
        let mut s = filled();
        s.update(PlaceId(1), 5, -10);
        assert_eq!(s.kth_safety(1), Some(-10));
        assert_eq!(s.top_k(1)[0].place, PlaceId(1));
        // No-op update.
        s.update(PlaceId(1), -10, -10);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn below_respects_strict_bound() {
        let s = filled();
        let entries = s.below(-3);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].place, PlaceId(4));
        assert_eq!(s.below(1).len(), 4);
        assert_eq!(s.below(Safety::MIN).len(), 0);
    }

    #[test]
    fn remove_then_empty() {
        let mut s = filled();
        for (safety, place) in s.iter().collect::<Vec<_>>() {
            s.remove(place, safety);
        }
        assert!(s.is_empty());
        assert_eq!(s.kth_safety(1), None);
    }
}
