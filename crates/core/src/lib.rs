//! # ctup-core — Continuous Top-k Unsafe Places query processing
//!
//! Reproduction of *"On Monitoring the top-k Unsafe Places"* (Zhang, Du,
//! Hu; ICDE 2008). Protecting units (police cars) move through a city and
//! stream location updates to a server; every place `p` has a required
//! protection `RP(p)`, its actual protection `AP(p)` is the number of units
//! within range, and `safety(p) = AP(p) − RP(p)`. The **CTUP query**
//! continuously reports the `k` places with the smallest safeties.
//!
//! Three processors implement the query behind one trait,
//! [`algorithm::CtupAlgorithm`]:
//!
//! * [`naive::NaiveRecompute`] / [`naive::NaiveIncremental`] — the
//!   baselines (§VI / §IV of the paper);
//! * [`basic::BasicCtup`] — grid cells that are dark (lower bound only) or
//!   illuminated (exact safeties), Table I bound maintenance;
//! * [`opt::OptCtup`] — all cells dark, selectively maintained unsafe
//!   places, Table II with the Decrease-Once Optimization and the Δ
//!   anti-flashing slack.
//!
//! The paper's future-work extensions live in [`ext`]: places with extent
//! (built into the protection predicate), threshold monitoring, decaying
//! protection, and predictive snapshots.
//!
//! ```
//! use ctup_core::algorithm::CtupAlgorithm;
//! use ctup_core::config::CtupConfig;
//! use ctup_core::opt::OptCtup;
//! use ctup_core::types::{LocationUpdate, Place, PlaceId, UnitId};
//! use ctup_spatial::{Grid, Point};
//! use ctup_storage::{CellLocalStore, PlaceStore};
//! use std::sync::Arc;
//!
//! let places = vec![
//!     Place::point(PlaceId(0), Point::new(0.2, 0.2), 2), // both need 2 units
//!     Place::point(PlaceId(1), Point::new(0.8, 0.8), 2),
//! ];
//! let store: Arc<dyn PlaceStore> =
//!     Arc::new(CellLocalStore::build(Grid::unit_square(10), places));
//! let mut monitor = OptCtup::new(
//!     CtupConfig::with_k(1),
//!     store,
//!     &[Point::new(0.2, 0.2)], // one unit, protecting place 0
//! )
//! .expect("clean store");
//! assert_eq!(monitor.result()[0].place, PlaceId(1)); // place 1 unprotected
//! monitor
//!     .handle_update(LocationUpdate { unit: UnitId(0), new: Point::new(0.8, 0.8) })
//!     .expect("clean store");
//! assert_eq!(monitor.result()[0].place, PlaceId(0)); // now place 0 is least safe
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod basic;
pub mod cells;
pub mod checkpoint;
pub mod config;
pub mod durable;
pub mod ext;
pub mod ingest;
pub mod lbdir;
pub mod maintained;
pub mod metrics;
pub mod naive;
pub mod net;
pub mod opt;
pub mod oracle;
pub mod parallel;
pub mod pipeline;
pub mod report;
pub mod server;
pub mod supervisor;
pub mod topk;
pub mod types;
pub mod units;

pub use algorithm::{CtupAlgorithm, InitStats, UpdateStats};
pub use basic::BasicCtup;
pub use checkpoint::{Checkpoint, CheckpointError, Checkpointable};
pub use config::{CtupConfig, QueryMode};
pub use durable::DurableState;
pub use ingest::{IngestConfig, IngestGate, RejectReason, StampedUpdate};
pub use metrics::{Metrics, ResilienceStats};
pub use naive::{NaiveIncremental, NaiveRecompute};
pub use net::{
    EngineSink, FeedClient, IngestServer, NetServerConfig, NetStatsSnapshot, PipelineSink,
    ShedReason,
};
pub use opt::OptCtup;
pub use oracle::Oracle;
pub use parallel::{ShardMap, ShardedCtup};
pub use pipeline::{EventBatch, Pipeline, PipelineReport, SendError};
pub use report::Snapshot;
pub use server::{MonitorEvent, Server};
pub use supervisor::{
    ResilienceConfig, SupervisedPipeline, SupervisedReport, FLIGHT_RECORDER_FILE,
};
pub use types::{LocationUpdate, Place, PlaceId, Safety, TopKEntry, Unit, UnitId};
