//! The monitoring server: wraps any [`CtupAlgorithm`] and turns result
//! changes into a stream of events, the way a dispatch center would consume
//! the CTUP query.

use crate::algorithm::{CtupAlgorithm, UpdateStats};
use crate::types::{LocationUpdate, PlaceId, Safety, TopKEntry};
use ctup_storage::StorageError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A change to the monitored result caused by one location update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MonitorEvent {
    /// A place entered the result (became top-k unsafe / crossed the
    /// threshold).
    Entered {
        /// The place.
        place: PlaceId,
        /// Its safety on entry.
        safety: Safety,
    },
    /// A place left the result.
    Left {
        /// The place.
        place: PlaceId,
    },
    /// A place stayed in the result with a different safety.
    SafetyChanged {
        /// The place.
        place: PlaceId,
        /// Safety before the update.
        old: Safety,
        /// Safety after the update.
        new: Safety,
    },
}

/// A CTUP monitoring server over an arbitrary algorithm.
pub struct Server<A: CtupAlgorithm> {
    algorithm: A,
    current: HashMap<PlaceId, Safety>,
    events_emitted: u64,
}

impl<A: CtupAlgorithm> std::fmt::Debug for Server<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("algorithm", &self.algorithm.name())
            .field("events_emitted", &self.events_emitted)
            .finish_non_exhaustive()
    }
}

impl<A: CtupAlgorithm> Server<A> {
    /// Wraps an initialized algorithm.
    pub fn new(algorithm: A) -> Self {
        let current = algorithm
            .result()
            .iter()
            .map(|e| (e.place, e.safety))
            .collect();
        Server {
            algorithm,
            current,
            events_emitted: 0,
        }
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// The wrapped algorithm, mutably — for out-of-band configuration like
    /// [`CtupAlgorithm::set_trace_context`]; updates go through
    /// [`Server::ingest`].
    pub fn algorithm_mut(&mut self) -> &mut A {
        &mut self.algorithm
    }

    /// Unwraps the server, returning the algorithm.
    pub fn into_algorithm(self) -> A {
        self.algorithm
    }

    /// The current monitored result.
    pub fn result(&self) -> Vec<TopKEntry> {
        self.algorithm.result()
    }

    /// Total events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Processes one location update and returns the result changes it
    /// caused, `Entered`/`SafetyChanged` first (sorted by place id), then
    /// `Left` (sorted by place id). A storage failure aborts the update
    /// before any event is emitted.
    pub fn ingest(
        &mut self,
        update: LocationUpdate,
    ) -> Result<(Vec<MonitorEvent>, UpdateStats), StorageError> {
        let stats = self.algorithm.handle_update(update)?;
        let mut events = Vec::new();
        if stats.result_changed {
            let fresh: HashMap<PlaceId, Safety> = self
                .algorithm
                .result()
                .iter()
                .map(|e| (e.place, e.safety))
                .collect();
            let mut entered_or_changed: Vec<MonitorEvent> = fresh
                .iter()
                .filter_map(|(&place, &safety)| match self.current.get(&place) {
                    None => Some(MonitorEvent::Entered { place, safety }),
                    Some(&old) if old != safety => Some(MonitorEvent::SafetyChanged {
                        place,
                        old,
                        new: safety,
                    }),
                    Some(_) => None,
                })
                .collect();
            entered_or_changed.sort_by_key(|e| match *e {
                MonitorEvent::Entered { place, .. } => place,
                MonitorEvent::SafetyChanged { place, .. } => place,
                MonitorEvent::Left { place } => place,
            });
            let mut left: Vec<PlaceId> = self
                .current
                .keys()
                .filter(|place| !fresh.contains_key(place))
                .copied()
                .collect();
            left.sort_unstable();
            events.extend(entered_or_changed);
            events.extend(left.into_iter().map(|place| MonitorEvent::Left { place }));
            self.current = fresh;
        }
        self.events_emitted += ctup_spatial::convert::count64(events.len());
        Ok((events, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CtupConfig;
    use crate::naive::NaiveRecompute;
    use crate::types::{Place, UnitId};
    use ctup_spatial::{Grid, Point};
    use ctup_storage::{CellLocalStore, PlaceStore};
    use std::sync::Arc;

    fn server() -> Server<NaiveRecompute> {
        let places = vec![
            Place::point(PlaceId(0), Point::new(0.2, 0.2), 2),
            Place::point(PlaceId(1), Point::new(0.8, 0.8), 2),
        ];
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(4), places));
        // One unit protecting place 0: result (k=1) is place 1 at -2.
        let alg = NaiveRecompute::new(CtupConfig::with_k(1), store, &[Point::new(0.2, 0.2)])
            .expect("init");
        Server::new(alg)
    }

    #[test]
    fn enter_and_leave_events() {
        let mut srv = server();
        assert_eq!(srv.result()[0].place, PlaceId(1));
        // Unit moves to protect place 1 instead: place 0 becomes the result.
        let (events, stats) = srv
            .ingest(LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.8, 0.8),
            })
            .expect("ingest");
        assert!(stats.result_changed);
        assert_eq!(
            events,
            vec![
                MonitorEvent::Entered {
                    place: PlaceId(0),
                    safety: -2
                },
                MonitorEvent::Left { place: PlaceId(1) },
            ]
        );
        assert_eq!(srv.events_emitted(), 2);
    }

    #[test]
    fn safety_change_event() {
        let mut srv = server();
        // Unit moves away from both places: place 1 stays the top-1 but the
        // set {place 1: -2} is unchanged, while place 0 drops to -2 as well;
        // with k=1 and id tiebreak place 0 now wins.
        let (events, _) = srv
            .ingest(LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.5, 0.5),
            })
            .expect("ingest");
        assert_eq!(
            events,
            vec![
                MonitorEvent::Entered {
                    place: PlaceId(0),
                    safety: -2
                },
                MonitorEvent::Left { place: PlaceId(1) },
            ]
        );
        // Unit returns next to place 0 but not within range: no change.
        let (events, stats) = srv
            .ingest(LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.45, 0.5),
            })
            .expect("ingest");
        assert!(events.is_empty());
        assert!(!stats.result_changed);
    }

    #[test]
    fn no_events_for_irrelevant_updates() {
        let mut srv = server();
        let (events, stats) = srv
            .ingest(LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.21, 0.2),
            })
            .expect("ingest");
        assert!(events.is_empty());
        assert!(!stats.result_changed);
        assert_eq!(srv.events_emitted(), 0);
    }
}
