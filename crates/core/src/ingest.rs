//! The ingest front-door: validation, dedup and unit liveness leases.
//!
//! The CTUP feed is a wireless link from moving units to a dispatch server,
//! so messages drop, duplicate, reorder and corrupt in flight. The
//! [`IngestGate`] sits between the receiver and the query processor and
//! turns the raw feed into an *effective* update sequence the algorithms
//! can trust:
//!
//! * every [`StampedUpdate`] is validated (finite coordinates inside the
//!   monitored space, known unit id) and deduplicated against the unit's
//!   per-feed sequence number — rejects carry a typed [`RejectReason`] and
//!   are counted in [`ResilienceStats`];
//! * a unit whose reports go silent past a configurable lease TTL has its
//!   protection retracted: the gate emits a synthetic update parking the
//!   unit far outside the space, so the places it guarded lose one
//!   protector and may (correctly) enter the top-k. The unit is reinstated
//!   by its next valid report. This degrades gracefully instead of
//!   silently overcounting protection from a dead radio.
//!
//! The gate's state is tiny (a few words per unit) and can be captured in a
//! [`GateState`] for checkpointing alongside the monitor state.

use crate::metrics::ResilienceStats;
use crate::types::{LocationUpdate, UnitId};
use ctup_spatial::{Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coordinate units are parked at when their lease expires: far enough
/// outside any realistic monitored space that they protect nothing, small
/// enough that every distance computation stays exact in `f64`.
pub const PARKED_COORD: f64 = 1.0e6;

/// The position an expired unit is parked at.
pub fn parked_position() -> Point {
    Point::new(PARKED_COORD, PARKED_COORD)
}

/// A location update as received from the wire: the bare [`LocationUpdate`]
/// plus the sender-side monotonic sequence number and report timestamp that
/// let the server detect duplicated, reordered and stale deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StampedUpdate {
    /// Per-unit monotonic sequence number assigned by the sender.
    pub seq: u64,
    /// Report timestamp in feed ticks (drives the liveness leases).
    pub ts: u64,
    /// The position report itself.
    pub update: LocationUpdate,
}

/// A [`StampedUpdate`] with its causal-trace context, the unit handed to
/// the engine sink. Never persisted (checkpoints and the WAL store bare
/// [`StampedUpdate`]s): the trace id travels on the wire, the hand-off
/// stamp is process-local.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracedReport {
    /// The stamped report itself.
    pub report: StampedUpdate,
    /// Causal trace id (0 = untraced; see `ctup_obs::span`).
    pub trace: u64,
    /// `ctup_obs::span::now_nanos` stamp of the pump hand-off, the start
    /// of the `engine-apply` span (0 when untraced).
    pub handed_nanos: u64,
}

impl TracedReport {
    /// Wraps a report with no trace context.
    pub fn untraced(report: StampedUpdate) -> Self {
        TracedReport {
            report,
            trace: 0,
            handed_nanos: 0,
        }
    }
}

/// Why the gate refused a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// A coordinate was NaN or infinite.
    NonFinite,
    /// The position lies outside the monitored space.
    OutOfSpace,
    /// The unit id is not in `0..|U|`.
    UnknownUnit,
    /// A newer report of this unit was already accepted.
    Stale,
    /// This exact sequence number of this unit was already accepted.
    Duplicate,
}

impl RejectReason {
    /// Stable snake_case label used by the flight recorder and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::NonFinite => "non_finite",
            RejectReason::OutOfSpace => "out_of_space",
            RejectReason::UnknownUnit => "unknown_unit",
            RejectReason::Stale => "stale",
            RejectReason::Duplicate => "duplicate",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            RejectReason::NonFinite => "non-finite coordinate",
            RejectReason::OutOfSpace => "position outside the monitored space",
            RejectReason::UnknownUnit => "unknown unit id",
            RejectReason::Stale => "stale report (newer one already accepted)",
            RejectReason::Duplicate => "duplicate report (same sequence number)",
        };
        f.write_str(text)
    }
}

/// Configuration of the ingest gate.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestConfig {
    /// The monitored space; positions outside it are rejected.
    pub space: Rect,
    /// Number of units `|U|`; ids at or above this are rejected.
    pub num_units: usize,
    /// Liveness lease TTL in feed ticks; `None` disables leases. A unit
    /// whose last accepted report is older than `now − ttl` is parked.
    pub lease_ttl: Option<u64>,
}

/// Per-unit gate state (serializable for checkpointing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateUnitState {
    /// Highest accepted sequence number, `None` before the first report.
    pub last_seq: Option<u64>,
    /// Tick of the last accepted report (0 = the initial position).
    pub last_seen: u64,
    /// Whether the unit currently holds a live lease.
    pub alive: bool,
}

/// Snapshot of the whole gate, stored inside a checkpoint so a standby
/// server resumes with the same dedup and lease decisions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateState {
    /// The feed clock (max timestamp seen).
    pub now: u64,
    /// Per-unit state in unit-id order.
    pub units: Vec<GateUnitState>,
}

/// The validation / dedup / lease front-door. See the module docs.
#[derive(Debug, Clone)]
pub struct IngestGate {
    config: IngestConfig,
    now: u64,
    units: Vec<GateUnitState>,
}

impl IngestGate {
    /// Creates a gate with every unit alive and last seen at tick 0 (the
    /// initial positions handed to the algorithm count as a report).
    pub fn new(config: IngestConfig) -> Self {
        let units = vec![
            GateUnitState {
                last_seq: None,
                last_seen: 0,
                alive: true
            };
            config.num_units
        ];
        IngestGate {
            config,
            now: 0,
            units,
        }
    }

    /// Rebuilds a gate from a checkpointed [`GateState`].
    ///
    /// # Panics
    /// Panics if the state's unit count differs from the config's.
    pub fn from_state(config: IngestConfig, state: GateState) -> Self {
        assert_eq!(
            state.units.len(),
            config.num_units,
            "gate state unit count mismatch"
        );
        IngestGate {
            config,
            now: state.now,
            units: state.units,
        }
    }

    /// Captures the gate for checkpointing.
    pub fn state(&self) -> GateState {
        GateState {
            now: self.now,
            units: self.units.clone(),
        }
    }

    /// The gate's configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// The current feed clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether `unit` currently holds a live lease.
    pub fn is_alive(&self, unit: UnitId) -> bool {
        self.units
            .get(unit.index())
            .map(|u| u.alive)
            .unwrap_or(false)
    }

    /// Validates one report. On acceptance returns the *effective* updates
    /// to feed the algorithm, in order: parks for any leases that expired
    /// as the clock advanced (unit-id order), then the accepted update
    /// itself (which also reinstates the reporting unit if it was parked).
    /// Rejections and drops return the typed reason and are counted in
    /// `stats`.
    pub fn admit(
        &mut self,
        report: StampedUpdate,
        stats: &mut ResilienceStats,
    ) -> Result<Vec<LocationUpdate>, RejectReason> {
        let p = report.update.new;
        if !(p.x.is_finite() && p.y.is_finite()) {
            stats.rejected_non_finite += 1;
            return Err(RejectReason::NonFinite);
        }
        if !self.config.space.contains_point(p) {
            stats.rejected_out_of_space += 1;
            return Err(RejectReason::OutOfSpace);
        }
        let Some(unit) = self.units.get_mut(report.update.unit.index()) else {
            stats.rejected_unknown_unit += 1;
            return Err(RejectReason::UnknownUnit);
        };
        match unit.last_seq {
            Some(last) if report.seq == last => {
                stats.duplicates_dropped += 1;
                return Err(RejectReason::Duplicate);
            }
            Some(last) if report.seq < last => {
                stats.stale_dropped += 1;
                return Err(RejectReason::Stale);
            }
            _ => {}
        }

        // Accept: bump the unit's bookkeeping, reinstate if parked.
        unit.last_seq = Some(report.seq);
        unit.last_seen = unit.last_seen.max(report.ts);
        if !unit.alive {
            unit.alive = true;
            stats.lease_reinstates += 1;
        }

        // Advance the clock and expire whoever else fell silent.
        let mut effective = self.advance_clock(report.ts, stats);
        effective.push(report.update);
        Ok(effective)
    }

    /// Advances the feed clock without a report (e.g. a timer tick on an
    /// idle link) and returns park updates for any leases that expired.
    pub fn tick(&mut self, now: u64, stats: &mut ResilienceStats) -> Vec<LocationUpdate> {
        self.advance_clock(now, stats)
    }

    fn advance_clock(&mut self, ts: u64, stats: &mut ResilienceStats) -> Vec<LocationUpdate> {
        if ts > self.now {
            self.now = ts;
        }
        let Some(ttl) = self.config.lease_ttl else {
            return Vec::new();
        };
        let deadline = match self.now.checked_sub(ttl) {
            Some(d) => d,
            None => return Vec::new(),
        };
        let mut parks = Vec::new();
        for (i, unit) in self.units.iter_mut().enumerate() {
            if unit.alive && unit.last_seen < deadline {
                unit.alive = false;
                stats.lease_expiries += 1;
                parks.push(LocationUpdate {
                    unit: UnitId(ctup_spatial::convert::id32(i)),
                    new: parked_position(),
                });
            }
        }
        parks
    }
}

/// Stamps a clean in-order update stream the way a well-behaved sender
/// fleet would: per-unit sequence numbers counting up from 1 and the global
/// arrival index (starting at 1) as the timestamp. Fault injection then
/// perturbs the stamped stream.
pub fn stamp_stream<I: IntoIterator<Item = LocationUpdate>>(updates: I) -> Vec<StampedUpdate> {
    let mut per_unit: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    updates
        .into_iter()
        .enumerate()
        .map(|(i, update)| {
            let seq = per_unit.entry(update.unit.0).or_insert(0);
            *seq += 1;
            StampedUpdate {
                seq: *seq,
                ts: ctup_spatial::convert::count64(i) + 1,
                update,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(ttl: Option<u64>) -> IngestGate {
        IngestGate::new(IngestConfig {
            space: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            num_units: 3,
            lease_ttl: ttl,
        })
    }

    fn report(unit: u32, seq: u64, ts: u64, x: f64, y: f64) -> StampedUpdate {
        StampedUpdate {
            seq,
            ts,
            update: LocationUpdate {
                unit: UnitId(unit),
                new: Point::new(x, y),
            },
        }
    }

    #[test]
    fn rejects_malformed_reports() {
        let mut g = gate(None);
        let mut stats = ResilienceStats::default();
        assert_eq!(
            g.admit(report(0, 1, 1, f64::NAN, 0.5), &mut stats),
            Err(RejectReason::NonFinite)
        );
        assert_eq!(
            g.admit(report(0, 1, 1, f64::INFINITY, 0.5), &mut stats),
            Err(RejectReason::NonFinite)
        );
        assert_eq!(
            g.admit(report(0, 1, 1, 1.5, 0.5), &mut stats),
            Err(RejectReason::OutOfSpace)
        );
        assert_eq!(
            g.admit(report(7, 1, 1, 0.5, 0.5), &mut stats),
            Err(RejectReason::UnknownUnit)
        );
        assert_eq!(stats.rejected_non_finite, 2);
        assert_eq!(stats.rejected_out_of_space, 1);
        assert_eq!(stats.rejected_unknown_unit, 1);
        assert_eq!(stats.rejected_total(), 4);
    }

    #[test]
    fn drops_duplicates_and_stale_reports() {
        let mut g = gate(None);
        let mut stats = ResilienceStats::default();
        assert!(g.admit(report(1, 5, 10, 0.2, 0.2), &mut stats).is_ok());
        assert_eq!(
            g.admit(report(1, 5, 10, 0.2, 0.2), &mut stats),
            Err(RejectReason::Duplicate)
        );
        assert_eq!(
            g.admit(report(1, 3, 8, 0.3, 0.3), &mut stats),
            Err(RejectReason::Stale)
        );
        assert!(g.admit(report(1, 6, 11, 0.4, 0.4), &mut stats).is_ok());
        assert_eq!(stats.duplicates_dropped, 1);
        assert_eq!(stats.stale_dropped, 1);
    }

    #[test]
    fn accepted_update_passes_through_unchanged() {
        let mut g = gate(None);
        let mut stats = ResilienceStats::default();
        let eff = g.admit(report(2, 1, 1, 0.25, 0.75), &mut stats).unwrap();
        assert_eq!(
            eff,
            vec![LocationUpdate {
                unit: UnitId(2),
                new: Point::new(0.25, 0.75)
            }]
        );
    }

    #[test]
    fn lease_expiry_parks_and_reinstates() {
        let mut g = gate(Some(5));
        let mut stats = ResilienceStats::default();
        // Unit 0 reports at tick 1; units 1 and 2 stay silent.
        assert_eq!(
            g.admit(report(0, 1, 1, 0.5, 0.5), &mut stats)
                .unwrap()
                .len(),
            1
        );
        // Unit 0 reports again at tick 7: 7 - 5 = 2 > 1 = last_seen of
        // units 1 and 2 is 0 < 2 -> both expire, parks first.
        let eff = g.admit(report(0, 2, 7, 0.6, 0.6), &mut stats).unwrap();
        assert_eq!(eff.len(), 3);
        assert_eq!(
            eff[0],
            LocationUpdate {
                unit: UnitId(1),
                new: parked_position()
            }
        );
        assert_eq!(
            eff[1],
            LocationUpdate {
                unit: UnitId(2),
                new: parked_position()
            }
        );
        assert_eq!(eff[2].unit, UnitId(0));
        assert!(!g.is_alive(UnitId(1)));
        assert!(g.is_alive(UnitId(0)));
        assert_eq!(stats.lease_expiries, 2);

        // Unit 1 comes back: reinstated by its own report.
        let eff = g.admit(report(1, 1, 8, 0.1, 0.1), &mut stats).unwrap();
        assert_eq!(
            eff,
            vec![LocationUpdate {
                unit: UnitId(1),
                new: Point::new(0.1, 0.1)
            }]
        );
        assert!(g.is_alive(UnitId(1)));
        assert_eq!(stats.lease_reinstates, 1);
    }

    #[test]
    fn tick_expires_without_a_report() {
        let mut g = gate(Some(3));
        let mut stats = ResilienceStats::default();
        assert!(g.tick(2, &mut stats).is_empty());
        let parks = g.tick(10, &mut stats);
        assert_eq!(parks.len(), 3);
        assert_eq!(stats.lease_expiries, 3);
        // Clock never goes backwards.
        assert!(g.tick(4, &mut stats).is_empty());
        assert_eq!(g.now(), 10);
    }

    #[test]
    fn state_roundtrip_preserves_decisions() {
        let mut g = gate(Some(5));
        let mut stats = ResilienceStats::default();
        g.admit(report(0, 3, 4, 0.5, 0.5), &mut stats).unwrap();
        g.admit(report(1, 9, 6, 0.5, 0.5), &mut stats).unwrap();
        let state = g.state();
        let mut restored = IngestGate::from_state(g.config().clone(), state.clone());
        assert_eq!(restored.state(), state);
        // The restored gate makes the same dedup decision.
        assert_eq!(
            restored.admit(report(0, 3, 7, 0.5, 0.5), &mut stats),
            Err(RejectReason::Duplicate)
        );
        assert_eq!(
            g.admit(report(0, 3, 7, 0.5, 0.5), &mut stats),
            Err(RejectReason::Duplicate)
        );
    }

    #[test]
    fn stamp_stream_is_per_unit_monotonic() {
        let updates = vec![
            LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.1, 0.1),
            },
            LocationUpdate {
                unit: UnitId(1),
                new: Point::new(0.2, 0.2),
            },
            LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.3, 0.3),
            },
        ];
        let stamped = stamp_stream(updates);
        assert_eq!(stamped[0].seq, 1);
        assert_eq!(stamped[1].seq, 1);
        assert_eq!(stamped[2].seq, 2);
        assert_eq!(stamped[2].ts, 3);
        // A gate accepts the whole clean stream.
        let mut g = gate(None);
        let mut stats = ResilienceStats::default();
        for r in stamped {
            assert!(g.admit(r, &mut stats).is_ok());
        }
        assert_eq!(stats, ResilienceStats::default());
    }

    #[test]
    fn parked_position_protects_nothing() {
        use crate::types::{protects, Place, PlaceId};
        let place = Place::point(PlaceId(0), Point::new(0.5, 0.5), 1);
        assert!(!protects(parked_position(), 0.1, &place));
    }
}
