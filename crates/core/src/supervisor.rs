//! Supervised ingestion: the degraded-feed hardening layer.
//!
//! [`SupervisedPipeline`] is the crash-tolerant sibling of
//! [`crate::pipeline::Pipeline`]. The worker thread runs the full
//! resilience stack:
//!
//! 1. every inbound [`StampedUpdate`] passes the [`IngestGate`]
//!    (validation, dedup, liveness leases — see [`crate::ingest`]);
//! 2. each *effective* update is applied inside
//!    [`std::panic::catch_unwind`], so a panicking query processor does not
//!    kill the worker; a [`StorageError`] surfaced by the processor (a read
//!    that exhausted its retries, a page whose checksum failed) is contained
//!    the same way;
//! 3. every `checkpoint_every` effective updates the worker snapshots a
//!    [`Checkpoint`] (monitor state plus [`GateState`]) in memory — and,
//!    when [`ResilienceConfig::state_dir`] is set, durably on disk via the
//!    A/B slot protocol of [`crate::durable`], with every accepted wire
//!    report journaled before it is applied;
//! 4. after a caught panic or contained storage error the worker restores
//!    the monitor from the latest checkpoint, replays the in-flight tail of
//!    effective updates while *suppressing* the
//!    [`MonitorEvent`](crate::server::MonitorEvent) batches the replay
//!    re-derives (they were already published), then retries the update
//!    that crashed. After `max_restarts` failed recoveries it gives up and
//!    reports so.
//!
//! After a *process* death (not just a worker panic),
//! [`SupervisedPipeline::recover_from_dir`] rebuilds the monitor from the
//! newest valid durable slot and replays the journaled tail through the
//! restored gate, whose dedup state makes the replay idempotent.
//!
//! Deterministic fault injection for tests and the `chaos` CLI command is
//! built in: [`ResilienceConfig::panic_at`] crashes the processor at chosen
//! effective sequence numbers, exactly once each, and
//! [`ResilienceConfig::kill_at`] halts the worker abruptly mid-stream the
//! way `kill -9` would, optionally tearing the newest durable slot to
//! exercise the A/B fallback.
//!
//! All decisions are counted in [`ResilienceStats`], folded into the final
//! [`Metrics`] of the [`SupervisedReport`].

use crate::checkpoint::{Checkpoint, Checkpointable};
use crate::durable::DurableState;
use crate::ingest::{IngestConfig, IngestGate, StampedUpdate, TracedReport};
use crate::metrics::{Metrics, ResilienceStats};
use crate::pipeline::{EventBatch, SendError};
use crate::server::Server;
use crate::types::{LocationUpdate, TopKEntry};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use ctup_obs::{
    now_nanos, LatencySnapshot, ObsHub, PhaseTimer, SpanSink, Stage, TraceEvent, TraceOutcome,
};
use ctup_spatial::convert;
use ctup_storage::PlaceStore;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Tuning of the resilience layer.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Liveness lease TTL in feed ticks; `None` disables leases (units
    /// never expire). See [`IngestConfig::lease_ttl`].
    pub lease_ttl: Option<u64>,
    /// Take an in-memory checkpoint every this many effective updates.
    /// `0` disables periodic checkpoints (the spawn-time snapshot remains
    /// the restart point).
    pub checkpoint_every: u64,
    /// How many restarts the supervisor attempts before giving up.
    pub max_restarts: u32,
    /// Deterministic fault injection: the processor panics when it is
    /// handed the effective update with each of these sequence numbers,
    /// once per entry.
    pub panic_at: Vec<u64>,
    /// Directory for the durable A/B checkpoint slots and the wire-report
    /// journal (see [`crate::durable`]); `None` keeps checkpoints in memory
    /// only, where they survive worker panics but not a process death.
    pub state_dir: Option<PathBuf>,
    /// Simulated process death: the worker halts abruptly — no final
    /// checkpoint, no cleanup — right before applying the effective update
    /// with this sequence number. Recovery is then exercised with
    /// [`SupervisedPipeline::recover_from_dir`].
    pub kill_at: Option<u64>,
    /// When the kill fires, additionally truncate the newest durable slot,
    /// simulating a death *mid-checkpoint-write*: recovery must fall back
    /// to the older slot and a longer journal tail.
    pub tear_slot_on_kill: bool,
    /// How many recent per-update trace events the flight recorder keeps
    /// in its ring; dumped as JSON Lines into `state_dir` (as
    /// [`FLIGHT_RECORDER_FILE`]) when the worker is killed or gives up.
    pub flight_recorder_capacity: usize,
    /// How many *rotated* flight-recorder dumps to keep next to the
    /// canonical [`FLIGHT_RECORDER_FILE`]. Before a new dump is written,
    /// an existing canonical file is renamed to `flight-recorder-<n>.jsonl`
    /// and the numbered set is pruned to this many files, always retaining
    /// the lowest index — so the *first* crash of a storm is never lost to
    /// later dumps overwriting it. `0` disables rotation (the canonical
    /// file is overwritten in place).
    pub flight_recorder_keep: usize,
    /// Causal span sink the worker records per-report pipeline spans into
    /// (engine-apply, shard-phase, merge, snapshot-publish, wal-append,
    /// checkpoint — see [`ctup_obs::span`]). Only reports handed over with
    /// a non-zero trace id via [`SupervisedPipeline::send_traced`] record
    /// spans; `None` disables recording entirely.
    pub spans: Option<Arc<SpanSink>>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            lease_ttl: None,
            checkpoint_every: 256,
            max_restarts: 8,
            panic_at: Vec::new(),
            state_dir: None,
            kill_at: None,
            tear_slot_on_kill: false,
            flight_recorder_capacity: 256,
            flight_recorder_keep: 4,
            spans: None,
        }
    }
}

/// File name of the newest flight-recorder dump inside
/// [`ResilienceConfig::state_dir`], next to the durable checkpoint slots.
/// Earlier dumps of a crash storm survive as `flight-recorder-<n>.jsonl`,
/// bounded by [`ResilienceConfig::flight_recorder_keep`].
pub const FLIGHT_RECORDER_FILE: &str = "flight-recorder.jsonl";

/// File-name prefix of rotated flight-recorder dumps (`<prefix><n>.jsonl`).
pub const FLIGHT_RECORDER_ROTATED_PREFIX: &str = "flight-recorder-";

/// Final accounting returned by [`SupervisedPipeline::shutdown`].
#[derive(Debug, Clone)]
pub struct SupervisedReport {
    /// Raw reports received from the feed (before the gate).
    pub reports_received: u64,
    /// Effective updates applied to the monitor (excluding replays).
    pub updates_processed: u64,
    /// Total events published (suppressed replay events not included).
    pub events_emitted: u64,
    /// Whether the worker exhausted `max_restarts` (or failed to restore)
    /// and stopped monitoring early. The counters above still describe
    /// everything processed up to that point.
    pub gave_up: bool,
    /// Whether the worker was halted by [`ResilienceConfig::kill_at`]
    /// (simulated process death). The monitor state died with it; recovery
    /// goes through [`SupervisedPipeline::recover_from_dir`].
    pub killed: bool,
    /// The monitored result at shutdown (empty if the worker gave up).
    pub final_result: Vec<TopKEntry>,
    /// The monitor's cumulative metrics with
    /// [`Metrics::resilience`] filled in by the supervisor.
    pub metrics: Metrics,
    /// Latency distributions observed by the worker (update phases,
    /// checkpoint writes) joined with the storage layer's disk-read
    /// histogram.
    pub latency: LatencySnapshot,
    /// Where the flight recorder was dumped, when the worker died with a
    /// `state_dir` configured (killed or gave up).
    pub flight_recorder_path: Option<PathBuf>,
}

/// A monitoring server on a supervised worker thread: validated ingest,
/// liveness leases, panic containment and checkpoint-restart.
pub struct SupervisedPipeline {
    reports_tx: Option<Sender<TracedReport>>,
    events_rx: Receiver<EventBatch>,
    worker: Option<JoinHandle<SupervisedReport>>,
    durable_mark: Arc<AtomicU64>,
}

impl std::fmt::Debug for SupervisedPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedPipeline")
            .field("worker_alive", &self.worker.is_some())
            .finish_non_exhaustive()
    }
}

impl SupervisedPipeline {
    /// Spawns the supervised worker around an initialized monitor. The
    /// ingest gate is derived from the monitor: the monitored space is the
    /// grid's space, the unit count the monitor's. `capacity` bounds both
    /// the inbound report queue and the outbound event queue.
    pub fn spawn<A>(algorithm: A, config: ResilienceConfig, capacity: usize) -> Self
    where
        A: Checkpointable + Send + 'static,
    {
        let gate = IngestGate::new(IngestConfig {
            space: *algorithm.store().grid().space(),
            num_units: algorithm.num_units(),
            lease_ttl: config.lease_ttl,
        });
        Self::spawn_with_gate(algorithm, gate, config, capacity)
    }

    /// Resumes monitoring from a checkpoint (cross-process failover): the
    /// monitor is restored from the checkpoint and the gate from its
    /// [`GateState`](crate::ingest::GateState) (fresh if the checkpoint
    /// predates the resilience layer), so dedup and lease decisions carry
    /// over to the standby.
    pub fn resume<A>(
        checkpoint: Checkpoint,
        store: Arc<dyn PlaceStore>,
        config: ResilienceConfig,
        capacity: usize,
    ) -> Result<Self, crate::checkpoint::CheckpointError>
    where
        A: Checkpointable + Send + 'static,
    {
        let ingest_config = IngestConfig {
            space: *store.grid().space(),
            num_units: checkpoint.unit_positions.len(),
            lease_ttl: config.lease_ttl,
        };
        let gate_state = checkpoint.gate.clone();
        // Restore (and validate) first: a checkpoint whose gate disagrees
        // with its unit table must surface as a typed error, not a panic in
        // the gate constructor below.
        let algorithm = A::restore(checkpoint, store)?;
        let gate = match gate_state {
            Some(state) => IngestGate::from_state(ingest_config, state),
            None => IngestGate::new(ingest_config),
        };
        Ok(Self::spawn_with_gate(algorithm, gate, config, capacity))
    }

    /// Recovers after a process death: loads the newest valid durable slot
    /// from `dir` (see [`crate::durable`]), restores the monitor and the
    /// ingest gate from it, replays the journaled wire reports through the
    /// restored gate — its dedup state silently drops everything the slot
    /// already covers, so the replay is idempotent even when recovery fell
    /// back to the older slot — and resumes supervised monitoring with
    /// durable checkpointing re-enabled in the same directory.
    pub fn recover_from_dir<A>(
        dir: impl AsRef<Path>,
        store: Arc<dyn PlaceStore>,
        config: ResilienceConfig,
        capacity: usize,
    ) -> Result<Self, crate::checkpoint::CheckpointError>
    where
        A: Checkpointable + Send + 'static,
    {
        let (checkpoint, journal) = DurableState::load(&dir)?;
        let ingest_config = IngestConfig {
            space: *store.grid().space(),
            num_units: checkpoint.unit_positions.len(),
            lease_ttl: config.lease_ttl,
        };
        let gate_state = checkpoint.gate.clone();
        let mut algorithm = A::restore(checkpoint, store)?;
        let mut gate = match gate_state {
            Some(state) => IngestGate::from_state(ingest_config, state),
            None => IngestGate::new(ingest_config),
        };
        // Replay rejections are recovery bookkeeping (the slot already
        // covered those reports), not feed defects: they go to a scratch
        // counter and only the replayed-update count is carried forward.
        let mut scratch = ResilienceStats::default();
        let mut seed = ResilienceStats::default();
        for report in journal {
            let Ok(effective) = gate.admit(report, &mut scratch) else {
                continue;
            };
            for update in effective {
                algorithm.handle_update(update).map_err(|e| {
                    crate::checkpoint::CheckpointError::Invalid(format!(
                        "storage fault while replaying the journal: {e}"
                    ))
                })?;
                seed.updates_replayed += 1;
            }
        }
        let config = ResilienceConfig {
            state_dir: Some(dir.as_ref().to_path_buf()),
            ..config
        };
        Ok(Self::spawn_seeded(algorithm, gate, config, capacity, seed))
    }

    fn spawn_with_gate<A>(
        algorithm: A,
        gate: IngestGate,
        config: ResilienceConfig,
        capacity: usize,
    ) -> Self
    where
        A: Checkpointable + Send + 'static,
    {
        Self::spawn_seeded(
            algorithm,
            gate,
            config,
            capacity,
            ResilienceStats::default(),
        )
    }

    fn spawn_seeded<A>(
        algorithm: A,
        gate: IngestGate,
        config: ResilienceConfig,
        capacity: usize,
        initial_stats: ResilienceStats,
    ) -> Self
    where
        A: Checkpointable + Send + 'static,
    {
        assert!(capacity > 0, "capacity must be positive");
        let (reports_tx, reports_rx) = bounded::<TracedReport>(capacity);
        let (events_tx, events_rx) = bounded::<EventBatch>(capacity);
        let durable_mark = Arc::new(AtomicU64::new(0));
        let worker_mark = Arc::clone(&durable_mark);
        #[allow(clippy::expect_used)]
        let worker = std::thread::Builder::new()
            .name("ctup-supervisor".into())
            .spawn(move || {
                supervise(
                    algorithm,
                    gate,
                    config,
                    initial_stats,
                    reports_rx,
                    events_tx,
                    worker_mark,
                )
            })
            // ctup-lint: allow(L001, thread spawn fails only on OS resource exhaustion at construction — there is no monitor to degrade to yet)
            .expect("spawn ctup-supervisor thread");
        SupervisedPipeline {
            reports_tx: Some(reports_tx),
            events_rx,
            worker: Some(worker),
            durable_mark,
        }
    }

    /// Sends one stamped report, blocking while the queue is full. Returns
    /// [`SendError::WorkerDied`] once the worker has stopped (gave up, or a
    /// defect outside the contained region killed it).
    pub fn send(&self, report: StampedUpdate) -> Result<(), SendError> {
        self.send_traced(TracedReport::untraced(report))
    }

    /// Sends one report with its causal trace context, blocking while the
    /// queue is full. The worker records per-stage spans for it when
    /// [`ResilienceConfig::spans`] is set and the trace id is non-zero.
    pub fn send_traced(&self, report: TracedReport) -> Result<(), SendError> {
        let Some(tx) = self.reports_tx.as_ref() else {
            return Err(SendError::WorkerDied); // only after shutdown() took the sender
        };
        tx.send(report).map_err(|_| SendError::WorkerDied)
    }

    /// Sends one stamped report without blocking; [`SendError::Full`] under
    /// backpressure, [`SendError::WorkerDied`] once the worker stopped.
    pub fn try_send(&self, report: StampedUpdate) -> Result<(), SendError> {
        self.try_send_traced(TracedReport::untraced(report))
    }

    /// Non-blocking variant of [`SupervisedPipeline::send_traced`].
    pub fn try_send_traced(&self, report: TracedReport) -> Result<(), SendError> {
        let Some(tx) = self.reports_tx.as_ref() else {
            return Err(SendError::WorkerDied); // only after shutdown() took the sender
        };
        match tx.try_send(report) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(SendError::Full),
            Err(TrySendError::Disconnected(_)) => Err(SendError::WorkerDied),
        }
    }

    /// Whether the worker thread has stopped (killed, gave up, or was shut
    /// down). Unlike [`SupervisedPipeline::try_send`] this is a pure probe:
    /// callers with nothing to send can still detect a silent death — an
    /// engine that died after the last report was handed off would
    /// otherwise be noticed only when the next report arrives.
    pub fn worker_dead(&self) -> bool {
        self.worker.as_ref().is_none_or(JoinHandle::is_finished)
    }

    /// The event stream. Batch `seq` numbers are *effective* update
    /// sequence numbers; across a restart no batch is duplicated.
    pub fn events(&self) -> &Receiver<EventBatch> {
        &self.events_rx
    }

    /// How many reports (in channel order, counted from this pipeline's
    /// spawn) the worker has taken *durable ownership* of: journaled to the
    /// write-ahead log when a `state_dir` is configured, or terminally
    /// rejected by the gate. A report covered by this mark survives a
    /// process death — [`recover_from_dir`](Self::recover_from_dir) replays
    /// it — so the front door acks a report only once the mark covers it:
    /// acks never run ahead of the journal. Without a `state_dir` the mark
    /// advances on receipt (there is no durability contract to wait for).
    pub fn durable_mark(&self) -> u64 {
        self.durable_mark.load(Ordering::Acquire)
    }

    /// Closes the report channel, drains the worker and returns its report.
    pub fn shutdown(mut self) -> SupervisedReport {
        self.reports_tx.take();
        // `worker` is `Some` until this method consumes `self`, so the
        // `None` arm is unreachable; it degrades like a defective worker.
        let outcome = self.worker.take().map(|w| w.join());
        match outcome {
            Some(Ok(report)) => report,
            // The supervisor contains processor panics; reaching this arm
            // means the supervision loop itself is defective. Degrade to a
            // gave-up report rather than propagating.
            _ => SupervisedReport {
                reports_received: 0,
                updates_processed: 0,
                events_emitted: 0,
                gave_up: true,
                killed: false,
                final_result: Vec::new(),
                metrics: Metrics::default(),
                latency: LatencySnapshot::default(),
                flight_recorder_path: None,
            },
        }
    }
}

impl Drop for SupervisedPipeline {
    fn drop(&mut self) {
        self.reports_tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The worker loop. Runs on the supervisor thread until the report channel
/// closes or recovery is exhausted.
fn supervise<A>(
    mut algorithm: A,
    mut gate: IngestGate,
    config: ResilienceConfig,
    initial_stats: ResilienceStats,
    reports_rx: Receiver<TracedReport>,
    events_tx: Sender<EventBatch>,
    durable_mark: Arc<AtomicU64>,
) -> SupervisedReport
where
    A: Checkpointable,
{
    if let Some(sink) = config.spans.as_ref() {
        // Engines with internal phase structure (the sharded engine)
        // record their own per-shard illumination/merge spans; the
        // supervisor then skips its aggregate shard-phase/merge spans.
        algorithm.attach_span_recorder(Arc::clone(sink));
    }
    let store = algorithm.store();
    let mut base = {
        let mut c = algorithm.checkpoint();
        c.gate = Some(gate.state());
        c
    };
    let mut server = Server::new(algorithm);
    let mut stats = initial_stats;
    let mut tail: Vec<LocationUpdate> = Vec::new();
    let mut panic_at: HashSet<u64> = config.panic_at.iter().copied().collect();
    let mut eff_seq = 0u64;
    let mut reports_received = 0u64;
    let mut events_emitted = 0u64;
    let mut restarts_left = config.max_restarts;
    let mut gave_up = false;
    let mut killed = false;
    let mut obs = ObsHub::new(config.flight_recorder_capacity);

    // Durable persistence: open (or create) the state directory and write
    // the spawn-time base as the first slot, so there is always a valid
    // recovery point on disk. A failure to persist is a broken durability
    // contract — the worker stops instead of running with silent
    // non-durability.
    let mut durable = match config.state_dir.as_deref().map(DurableState::open) {
        None => None,
        Some(Ok(mut d)) => match d.checkpoint(&base) {
            Ok(()) => Some(d),
            Err(_) => {
                gave_up = true;
                None
            }
        },
        Some(Err(_)) => {
            gave_up = true;
            None
        }
    };
    if gave_up {
        return SupervisedReport {
            reports_received: 0,
            updates_processed: 0,
            events_emitted: 0,
            gave_up: true,
            killed: false,
            final_result: Vec::new(),
            metrics: Metrics {
                resilience: stats,
                ..Metrics::default()
            },
            latency: obs.snapshot(store.stats().read_latency()),
            flight_recorder_path: None,
        };
    }

    'recv: for traced in reports_rx.iter() {
        let TracedReport {
            report,
            trace,
            handed_nanos,
        } = traced;
        // Span recording is armed per report: a sink must be configured
        // and the report must carry a trace id. Gate-rejected replays fall
        // through untraced below — a deduplicated redelivery must not
        // re-record the engine-apply span its first delivery produced.
        let sink = if trace != 0 {
            config.spans.as_deref()
        } else {
            None
        };
        let apply_start = sink.map(|_| {
            if handed_nanos != 0 {
                handed_nanos
            } else {
                now_nanos()
            }
        });
        reports_received += 1;
        let effective = match gate.admit(report, &mut stats) {
            Ok(effective) => effective,
            Err(reason) => {
                // Counted under its RejectReason by the gate; traced so a
                // post-mortem sees the rejected tail of a degraded feed.
                obs.record_update(TraceEvent {
                    seq: eff_seq,
                    unit: report.update.unit.0,
                    maintain_nanos: 0,
                    access_nanos: 0,
                    cells_accessed: 0,
                    result_changed: false,
                    outcome: TraceOutcome::Rejected(reason.label()),
                });
                // A gate rejection is terminal: the report needs no
                // durability, so the ack watermark advances past it.
                durable_mark.fetch_add(1, Ordering::Release);
                continue;
            }
        };
        if let Some(d) = durable.as_mut() {
            // Write-ahead: the accepted wire report hits the journal before
            // it touches the monitor, so a crash between the two replays it.
            let wal_start = sink.map(|_| now_nanos());
            let appended = d.append(report);
            if let (Some(s), Some(w0)) = (sink, wal_start) {
                s.record_stage(trace, Stage::WalAppend, 0, w0, now_nanos(), true);
            }
            if appended.is_err() {
                gave_up = true;
                break 'recv;
            }
        }
        // The report is now recoverable (journaled, or in-memory-only by
        // configuration): the front door may ack it. This happens *before*
        // the apply below, so a kill mid-apply loses nothing acked.
        durable_mark.fetch_add(1, Ordering::Release);
        // One accepted report can expand to several effective updates
        // (lease parks precede the accepted position). Spans attach to the
        // *last* — the accepted report itself — so one trace records one
        // engine-apply chain and deterministic span ids never collide.
        let last_idx = effective.len().saturating_sub(1);
        for (idx, update) in effective.into_iter().enumerate() {
            let sink = sink.filter(|_| idx == last_idx);
            // Simulated process death: stop mid-stream with no final
            // checkpoint, optionally tearing the newest slot the way a
            // death mid-checkpoint-write would.
            if config.kill_at == Some(eff_seq) {
                killed = true;
                obs.record_update(TraceEvent {
                    seq: eff_seq,
                    unit: update.unit.0,
                    maintain_nanos: 0,
                    access_nanos: 0,
                    cells_accessed: 0,
                    result_changed: false,
                    outcome: TraceOutcome::Killed,
                });
                if config.tear_slot_on_kill {
                    if let Some(d) = durable.as_ref() {
                        let _ = d.tear_newest_slot();
                    }
                }
                break 'recv;
            }
            loop {
                // One-shot injected fault: consumed even if recovery later
                // fails, so a retry of the same seq proceeds normally.
                let inject = panic_at.remove(&eff_seq);
                if sink.is_some() {
                    server.algorithm_mut().set_trace_context(trace);
                }
                let t0 = sink.map(|_| now_nanos());
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if inject {
                        // ctup-lint: allow(L001, deliberate fault injection — this panic exists to exercise the catch_unwind/recovery path around it)
                        panic!("injected fault at effective update {eff_seq}");
                    }
                    server.ingest(update)
                }));
                match outcome {
                    Ok(Ok((events, update_stats))) => {
                        obs.record_update(TraceEvent {
                            seq: eff_seq,
                            unit: update.unit.0,
                            maintain_nanos: update_stats.maintain_nanos,
                            access_nanos: update_stats.access_nanos,
                            cells_accessed: update_stats.cells_accessed,
                            result_changed: update_stats.result_changed,
                            outcome: TraceOutcome::Applied,
                        });
                        let publish_start = match (sink, t0, apply_start) {
                            (Some(s), Some(t0), Some(a0)) => {
                                let t1 = now_nanos();
                                // Engine-apply covers hand-off (channel
                                // wait, gate, journal) up to the successful
                                // apply attempt; retries after a contained
                                // crash fold into it.
                                s.record_stage(trace, Stage::EngineApply, 0, a0, t0, true);
                                if !server.algorithm().records_spans() {
                                    // Aggregate phase split for engines
                                    // without internal span recording: the
                                    // measured maintain+access window is
                                    // the illumination phase, the rest of
                                    // the ingest (result diff, event
                                    // derivation) the merge.
                                    let phase = update_stats
                                        .maintain_nanos
                                        .saturating_add(update_stats.access_nanos);
                                    let mid = t0.saturating_add(phase).min(t1);
                                    s.record_stage(trace, Stage::ShardPhase, 0, t0, mid, true);
                                    s.record_stage(trace, Stage::Merge, 0, mid, t1, true);
                                }
                                Some(t1)
                            }
                            _ => None,
                        };
                        if !events.is_empty() {
                            events_emitted += convert::count64(events.len());
                            // Consumers hanging up must not stop monitoring.
                            let _ = events_tx.send(EventBatch {
                                seq: eff_seq,
                                events,
                            });
                        }
                        if let (Some(s), Some(p0)) = (sink, publish_start) {
                            // Recorded even for an empty batch: the publish
                            // span closes the causal chain whether or not
                            // this update changed the top-k.
                            s.record_stage(trace, Stage::SnapshotPublish, 0, p0, now_nanos(), true);
                        }
                        eff_seq += 1;
                        tail.push(update);
                        if config.checkpoint_every > 0
                            && convert::count64(tail.len()) >= config.checkpoint_every
                        {
                            let ckpt_start = sink.map(|_| now_nanos());
                            let mut timer = PhaseTimer::start();
                            let mut c = server.algorithm().checkpoint();
                            c.gate = Some(gate.state());
                            if let Some(d) = durable.as_mut() {
                                if d.checkpoint(&c).is_err() {
                                    gave_up = true;
                                    break 'recv;
                                }
                            }
                            obs.record_checkpoint(eff_seq, timer.lap());
                            if let (Some(s), Some(c0)) = (sink, ckpt_start) {
                                // The update that tripped the periodic
                                // checkpoint carries its cost as a span.
                                s.record_stage(trace, Stage::Checkpoint, 0, c0, now_nanos(), true);
                            }
                            base = c;
                            tail.clear();
                            stats.checkpoints_taken += 1;
                        }
                        break; // next effective update
                    }
                    crashed => {
                        // A panic (`Err`) and a surfaced storage error
                        // (`Ok(Err)`) are contained identically: either way
                        // the processor may be mid-update, so restore from
                        // the latest checkpoint and replay.
                        if crashed.is_err() {
                            stats.worker_panics += 1;
                        } else {
                            stats.storage_errors += 1;
                        }
                        obs.record_update(TraceEvent {
                            seq: eff_seq,
                            unit: update.unit.0,
                            maintain_nanos: 0,
                            access_nanos: 0,
                            cells_accessed: 0,
                            result_changed: false,
                            outcome: if crashed.is_err() {
                                TraceOutcome::Panicked
                            } else {
                                TraceOutcome::StorageError
                            },
                        });
                        if restarts_left == 0 {
                            gave_up = true;
                            break 'recv;
                        }
                        restarts_left -= 1;
                        stats.worker_restarts += 1;
                        // Restore from the latest checkpoint and replay the
                        // tail, discarding (suppressing) the event batches
                        // the replay re-derives — they were already
                        // published before the crash. The live gate is kept:
                        // its state is ahead of the checkpointed one and the
                        // gate is outside the contained region.
                        match recover::<A>(base.clone(), store.clone(), &tail) {
                            Ok((recovered, suppressed)) => {
                                server = recovered;
                                if let Some(sink) = config.spans.as_ref() {
                                    // The restored engine starts without a
                                    // recorder; re-arm it.
                                    server
                                        .algorithm_mut()
                                        .attach_span_recorder(Arc::clone(sink));
                                }
                                stats.updates_replayed += convert::count64(tail.len());
                                stats.events_suppressed += suppressed;
                                // ...then retry the crashing update.
                            }
                            Err(_) => {
                                gave_up = true;
                                break 'recv;
                            }
                        }
                    }
                }
            }
        }
    }

    if gave_up {
        obs.record_update(TraceEvent {
            seq: eff_seq,
            unit: 0,
            maintain_nanos: 0,
            access_nanos: 0,
            cells_accessed: 0,
            result_changed: false,
            outcome: TraceOutcome::GaveUp,
        });
    }
    // Post-mortem dump: the worker is dying (killed or gave up), so write
    // the ring next to the checkpoint slots. Best-effort — a dump failure
    // must not mask the report of the death itself. An existing dump from
    // an earlier crash is rotated aside first, never clobbered.
    let flight_recorder_path = if gave_up || killed {
        config.state_dir.as_deref().and_then(|dir| {
            rotate_flight_dumps(dir, config.flight_recorder_keep);
            let path = dir.join(FLIGHT_RECORDER_FILE);
            obs.recorder.dump_to(&path).ok().map(|()| path)
        })
    } else {
        None
    };

    let (final_result, metrics) = if gave_up || killed {
        // The monitor state is suspect after an unrecovered crash — and
        // gone entirely after a simulated process death: report the
        // resilience counters but no result.
        (
            Vec::new(),
            Metrics {
                resilience: stats,
                ..Metrics::default()
            },
        )
    } else {
        let mut metrics = server.algorithm().metrics().clone();
        metrics.resilience = stats;
        (server.result(), metrics)
    };
    SupervisedReport {
        reports_received,
        updates_processed: eff_seq,
        events_emitted,
        gave_up,
        killed,
        final_result,
        metrics,
        latency: obs.snapshot(store.stats().read_latency()),
        flight_recorder_path,
    }
}

/// Rotates an existing canonical flight-recorder dump aside before a new
/// one is written: the previous [`FLIGHT_RECORDER_FILE`] becomes
/// `flight-recorder-<n>.jsonl` with `n` one past the highest existing
/// index, and the numbered set is pruned to `keep` files. The lowest index
/// — the first crash of a storm — is always among the survivors; beyond
/// that the most recent rotations win. Best-effort: any filesystem error
/// degrades to the pre-rotation overwrite behavior.
fn rotate_flight_dumps(dir: &Path, keep: usize) {
    let canonical = dir.join(FLIGHT_RECORDER_FILE);
    if keep == 0 || !canonical.exists() {
        return;
    }
    let mut indices: Vec<u64> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(n) = name
                .strip_prefix(FLIGHT_RECORDER_ROTATED_PREFIX)
                .and_then(|rest| rest.strip_suffix(".jsonl"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                indices.push(n);
            }
        }
    }
    indices.sort_unstable();
    let start = indices.last().map_or(1, |n| n.saturating_add(1));
    let Some((next, rotated)) = reserve_rotation_slot(dir, start) else {
        return;
    };
    if std::fs::rename(&canonical, &rotated).is_err() {
        // The dump never moved; release the claimed (empty) slot.
        let _ = std::fs::remove_file(&rotated);
        return;
    }
    indices.push(next);
    while indices.len() > keep {
        // Position 0 holds the oldest dump — the storm's first crash —
        // which is sacred; evict the oldest of the remainder.
        let victim = indices.remove(1);
        let _ = std::fs::remove_file(
            dir.join(format!("{FLIGHT_RECORDER_ROTATED_PREFIX}{victim}.jsonl")),
        );
    }
}

/// Claims the first free rotation index at or above `start` by creating
/// `flight-recorder-<n>.jsonl` exclusively, returning the claimed index
/// and path. Two rotations racing in the same directory — a self-heal
/// respawn dumping while its dying sibling still is, within the same
/// second — both scan the same highest index; the directory scan alone
/// would send both to the same path and the later `rename` would clobber
/// the earlier dump. `create_new` is atomic, so the loser observes
/// `AlreadyExists` and advances to the next index: the sequence suffix is
/// monotonic per directory even under concurrent rotations.
fn reserve_rotation_slot(dir: &Path, start: u64) -> Option<(u64, PathBuf)> {
    let mut next = start.max(1);
    loop {
        let candidate = dir.join(format!("{FLIGHT_RECORDER_ROTATED_PREFIX}{next}.jsonl"));
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&candidate)
        {
            Ok(_) => return Some((next, candidate)),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                next = next.checked_add(1)?;
            }
            Err(_) => return None,
        }
    }
}

/// Restores a monitor from `base` and replays `tail` on it, all inside
/// `catch_unwind` (a deterministic defect would otherwise crash recovery
/// itself). Returns the recovered server and the number of suppressed
/// replay events.
fn recover<A>(
    base: Checkpoint,
    store: Arc<dyn PlaceStore>,
    tail: &[LocationUpdate],
) -> Result<(Server<A>, u64), ()>
where
    A: Checkpointable,
{
    catch_unwind(AssertUnwindSafe(|| {
        let algorithm = A::restore(base, store).map_err(|_| ())?;
        let mut server = Server::new(algorithm);
        let mut suppressed = 0u64;
        for &update in tail {
            // A storage fault during replay fails the whole recovery: the
            // supervisor then gives up rather than resume from a state that
            // silently skipped part of the tail.
            let (events, _) = server.ingest(update).map_err(|_| ())?;
            suppressed += convert::count64(events.len());
        }
        Ok((server, suppressed))
    }))
    .unwrap_or(Err(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CtupConfig;
    use crate::ingest::stamp_stream;
    use crate::opt::OptCtup;
    use crate::pipeline::EventBatch;
    use crate::types::{LocationUpdate, Place, PlaceId, UnitId};
    use ctup_spatial::{Grid, Point};
    use ctup_storage::{CellLocalStore, PlaceStore};
    use std::sync::Arc;

    fn places() -> Vec<Place> {
        (0..30)
            .map(|i| {
                Place::point(
                    PlaceId(i),
                    Point::new((i % 6) as f64 / 6.0 + 0.05, (i / 6) as f64 / 5.0 + 0.05),
                    1 + i % 3,
                )
            })
            .collect()
    }

    fn monitor(units: &[Point]) -> OptCtup {
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(6), places()));
        OptCtup::new(CtupConfig::with_k(5), store, units).expect("init")
    }

    fn unit_points(n: u32) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i as f64 + 0.5) / n as f64, 0.5))
            .collect()
    }

    fn updates(n: usize, num_units: u32) -> Vec<LocationUpdate> {
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| LocationUpdate {
                unit: UnitId((next() * num_units as f64) as u32 % num_units),
                new: Point::new(next() * 0.999, next() * 0.999),
            })
            .collect()
    }

    /// Baseline: with a clean feed and no faults the supervised pipeline
    /// publishes exactly what a direct server run derives.
    #[test]
    fn clean_feed_matches_direct_run() {
        let units = unit_points(4);
        let stream = updates(150, 4);

        let mut direct = Server::new(monitor(&units));
        let mut direct_batches = Vec::new();
        for (seq, &u) in stream.iter().enumerate() {
            let (events, _) = direct.ingest(u).expect("ingest");
            if !events.is_empty() {
                direct_batches.push(EventBatch {
                    seq: seq as u64,
                    events,
                });
            }
        }

        let pipeline =
            SupervisedPipeline::spawn(monitor(&units), ResilienceConfig::default(), 1024);
        let events_rx = pipeline.events().clone();
        for report in stamp_stream(stream) {
            pipeline.send(report).expect("worker alive");
        }
        let report = pipeline.shutdown();
        let piped: Vec<EventBatch> = events_rx.try_iter().collect();

        assert!(!report.gave_up);
        assert_eq!(report.reports_received, 150);
        assert_eq!(report.updates_processed, 150);
        assert_eq!(piped, direct_batches);
        assert_eq!(report.final_result, direct.result());
        assert_eq!(report.metrics.resilience.worker_panics, 0);
        // A healthy run fills the latency histograms but dumps nothing.
        assert_eq!(report.latency.update_total_nanos.count(), 150);
        assert!(report.flight_recorder_path.is_none());
    }

    /// The dedicated restart test: one injected panic mid-run forces
    /// exactly one restart, and the published event stream is *identical*
    /// to the crash-free run — zero duplicated, zero missing batches.
    #[test]
    fn one_restart_zero_duplicate_events() {
        let units = unit_points(4);
        let stream = updates(200, 4);

        let mut direct = Server::new(monitor(&units));
        let mut direct_batches = Vec::new();
        for (seq, &u) in stream.iter().enumerate() {
            let (events, _) = direct.ingest(u).expect("ingest");
            if !events.is_empty() {
                direct_batches.push(EventBatch {
                    seq: seq as u64,
                    events,
                });
            }
        }

        let config = ResilienceConfig {
            checkpoint_every: 64,
            panic_at: vec![100],
            ..ResilienceConfig::default()
        };
        let pipeline = SupervisedPipeline::spawn(monitor(&units), config, 1024);
        let events_rx = pipeline.events().clone();
        for report in stamp_stream(stream) {
            pipeline.send(report).expect("worker alive");
        }
        let report = pipeline.shutdown();
        let piped: Vec<EventBatch> = events_rx.try_iter().collect();

        assert!(!report.gave_up);
        assert_eq!(report.metrics.resilience.worker_panics, 1);
        assert_eq!(report.metrics.resilience.worker_restarts, 1);
        // Checkpoints at eff 64 and 128; the panic at eff 100 replays the
        // 36-update tail 64..100.
        assert_eq!(report.metrics.resilience.updates_replayed, 36);
        assert!(report.metrics.resilience.checkpoints_taken >= 2);
        assert_eq!(report.updates_processed, 200);
        assert_eq!(piped, direct_batches, "no duplicated or missing batches");
        assert_eq!(report.final_result, direct.result());
    }

    /// Every recovery consumes a restart budget slot; once exhausted the
    /// worker reports `gave_up` instead of looping forever.
    #[test]
    fn gives_up_after_max_restarts() {
        let units = unit_points(2);
        let config = ResilienceConfig {
            max_restarts: 2,
            panic_at: vec![0, 1, 2, 3],
            ..ResilienceConfig::default()
        };
        let pipeline = SupervisedPipeline::spawn(monitor(&units), config, 64);
        for report in stamp_stream(updates(40, 2)) {
            if pipeline.send(report).is_err() {
                break; // worker already gave up and hung up the channel
            }
        }
        let report = pipeline.shutdown();
        assert!(report.gave_up);
        assert_eq!(report.metrics.resilience.worker_panics, 3);
        assert_eq!(report.metrics.resilience.worker_restarts, 2);
        assert!(report.final_result.is_empty());
    }

    /// Malformed and replayed wire reports are filtered by the gate and
    /// never reach the monitor; counters record each reason.
    #[test]
    fn gate_rejections_are_counted_not_fatal() {
        let units = unit_points(2);
        let pipeline = SupervisedPipeline::spawn(monitor(&units), ResilienceConfig::default(), 64);
        let good = StampedUpdate {
            seq: 1,
            ts: 1,
            update: LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.3, 0.3),
            },
        };
        pipeline.send(good).expect("worker alive");
        pipeline.send(good).expect("worker alive"); // duplicate
        pipeline
            .send(StampedUpdate {
                seq: 2,
                ts: 2,
                update: LocationUpdate {
                    unit: UnitId(0),
                    new: Point::new(f64::NAN, 0.3),
                },
            })
            .expect("worker alive");
        pipeline
            .send(StampedUpdate {
                seq: 1,
                ts: 2,
                update: LocationUpdate {
                    unit: UnitId(9),
                    new: Point::new(0.5, 0.5),
                },
            })
            .expect("worker alive");
        let report = pipeline.shutdown();
        assert!(!report.gave_up);
        assert_eq!(report.reports_received, 4);
        assert_eq!(report.updates_processed, 1);
        let r = &report.metrics.resilience;
        assert_eq!(r.duplicates_dropped, 1);
        assert_eq!(r.rejected_non_finite, 1);
        assert_eq!(r.rejected_unknown_unit, 1);
    }

    /// Leases flow through the pipeline: a silent unit is parked (its
    /// protection retracted) and reinstated when it reports again, with the
    /// park/reinstate visible in the monitor's final unit positions.
    #[test]
    fn leases_retract_and_reinstate_protection() {
        use crate::algorithm::CtupAlgorithm;
        use crate::ingest::parked_position;

        let units = unit_points(2);
        let config = ResilienceConfig {
            lease_ttl: Some(5),
            ..ResilienceConfig::default()
        };

        // Unit 1 never reports; unit 0 keeps reporting until the clock
        // passes tick 5 and unit 1's lease expires.
        let pipeline = SupervisedPipeline::spawn(monitor(&units), config.clone(), 64);
        for ts in 1..=8u64 {
            pipeline
                .send(StampedUpdate {
                    seq: ts,
                    ts,
                    update: LocationUpdate {
                        unit: UnitId(0),
                        new: Point::new(0.4, 0.4),
                    },
                })
                .expect("worker alive");
        }
        let report = pipeline.shutdown();
        assert!(!report.gave_up);
        assert_eq!(report.metrics.resilience.lease_expiries, 1);
        assert_eq!(report.metrics.resilience.lease_reinstates, 0);
        // 8 accepted reports + 1 park.
        assert_eq!(report.updates_processed, 9);

        // Same feed, but unit 1 reports at the end: reinstated.
        let pipeline = SupervisedPipeline::spawn(monitor(&units), config, 64);
        for ts in 1..=8u64 {
            pipeline
                .send(StampedUpdate {
                    seq: ts,
                    ts,
                    update: LocationUpdate {
                        unit: UnitId(0),
                        new: Point::new(0.4, 0.4),
                    },
                })
                .expect("worker alive");
        }
        pipeline
            .send(StampedUpdate {
                seq: 1,
                ts: 9,
                update: LocationUpdate {
                    unit: UnitId(1),
                    new: Point::new(0.6, 0.6),
                },
            })
            .expect("worker alive");
        let report = pipeline.shutdown();
        assert_eq!(report.metrics.resilience.lease_expiries, 1);
        assert_eq!(report.metrics.resilience.lease_reinstates, 1);

        // Sanity: a directly-driven monitor agrees a parked unit protects
        // nothing and a reinstated one protects again.
        let mut direct = monitor(&units);
        direct
            .handle_update(LocationUpdate {
                unit: UnitId(1),
                new: parked_position(),
            })
            .expect("update");
        assert_eq!(direct.unit_position(UnitId(1)), parked_position());
    }

    /// Cross-process failover: resume from a checkpoint whose gate state
    /// carries dedup decisions — the standby rejects replayed reports.
    #[test]
    fn resume_carries_gate_decisions() {
        let units = unit_points(2);
        let first = SupervisedPipeline::spawn(monitor(&units), ResilienceConfig::default(), 64);
        let report = StampedUpdate {
            seq: 7,
            ts: 3,
            update: LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.3, 0.3),
            },
        };
        first.send(report).expect("worker alive");
        first.shutdown();

        // Simulate the primary's periodic checkpoint.
        let alg = monitor(&units);
        let mut checkpoint = Checkpointable::checkpoint(&alg);
        let mut gate = IngestGate::new(IngestConfig {
            space: *alg.store().grid().space(),
            num_units: 2,
            lease_ttl: None,
        });
        let mut stats = ResilienceStats::default();
        gate.admit(report, &mut stats).expect("accepted");
        checkpoint.gate = Some(gate.state());

        let standby = SupervisedPipeline::resume::<OptCtup>(
            checkpoint,
            alg.store(),
            ResilienceConfig::default(),
            64,
        )
        .expect("resume");
        standby.send(report).expect("worker alive"); // replayed delivery
        let out = standby.shutdown();
        assert_eq!(out.metrics.resilience.duplicates_dropped, 1);
        assert_eq!(out.updates_processed, 0);
    }

    /// A store whose `read_cell` fails exactly once, on a chosen call
    /// number — the deterministic stand-in for a disk read that exhausted
    /// its retry budget.
    struct FailingStore {
        inner: CellLocalStore,
        fail_on: std::sync::atomic::AtomicU64,
        calls: std::sync::atomic::AtomicU64,
    }

    impl PlaceStore for FailingStore {
        fn grid(&self) -> &Grid {
            self.inner.grid()
        }
        fn num_places(&self) -> usize {
            self.inner.num_places()
        }
        fn read_cell(
            &self,
            cell: ctup_spatial::CellId,
        ) -> Result<std::borrow::Cow<'_, [Place]>, ctup_storage::StorageError> {
            use std::sync::atomic::Ordering;
            let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
            if n == self.fail_on.load(Ordering::Relaxed) {
                return Err(ctup_storage::StorageError::Io {
                    page: 0,
                    attempts: 4,
                });
            }
            self.inner.read_cell(cell)
        }
        fn cell_extent_margin(&self, cell: ctup_spatial::CellId) -> f64 {
            self.inner.cell_extent_margin(cell)
        }
        fn stats(&self) -> &ctup_storage::StorageStats {
            self.inner.stats()
        }
        fn for_each_place(
            &self,
            f: &mut dyn FnMut(&Place),
        ) -> Result<(), ctup_storage::StorageError> {
            self.inner.for_each_place(f)
        }
    }

    /// A storage error surfaced mid-update is contained exactly like a
    /// panic: counted under `storage_errors`, recovered via
    /// checkpoint-restart, and the final result is unaffected because the
    /// retry of the same update succeeds.
    #[test]
    fn storage_error_is_contained_like_a_panic() {
        let units = unit_points(4);
        let stream = updates(150, 4);

        let mut direct = Server::new(monitor(&units));
        for &u in &stream {
            direct.ingest(u).expect("ingest");
        }

        let store = Arc::new(FailingStore {
            inner: CellLocalStore::build(Grid::unit_square(6), places()),
            fail_on: std::sync::atomic::AtomicU64::new(0),
            calls: std::sync::atomic::AtomicU64::new(0),
        });
        let alg = OptCtup::new(CtupConfig::with_k(5), store.clone(), &units).expect("init");
        // Arm the one-shot failure for the first post-init cell read.
        let armed = store.calls.load(std::sync::atomic::Ordering::Relaxed) + 1;
        store
            .fail_on
            .store(armed, std::sync::atomic::Ordering::Relaxed);

        let pipeline = SupervisedPipeline::spawn(alg, ResilienceConfig::default(), 1024);
        for report in stamp_stream(stream) {
            pipeline.send(report).expect("worker alive");
        }
        let report = pipeline.shutdown();
        assert!(!report.gave_up);
        assert_eq!(report.metrics.resilience.storage_errors, 1);
        assert_eq!(report.metrics.resilience.worker_panics, 0);
        assert_eq!(report.metrics.resilience.worker_restarts, 1);
        assert_eq!(report.final_result, direct.result());
    }

    fn temp_state_dir() -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ctup-supervisor-{}-{n}", std::process::id()))
    }

    /// A killed worker leaves a parseable flight-recorder dump next to the
    /// checkpoint slots: JSON Lines, one object per recent event, closing
    /// with the `killed` event at the kill sequence number.
    #[test]
    #[cfg_attr(miri, ignore)] // the dump lives on the real filesystem
    fn kill_dumps_flight_recorder_jsonl() {
        let dir = temp_state_dir();
        let units = unit_points(4);
        let config = ResilienceConfig {
            checkpoint_every: 16,
            state_dir: Some(dir.clone()),
            kill_at: Some(50),
            flight_recorder_capacity: 32,
            ..ResilienceConfig::default()
        };
        let pipeline = SupervisedPipeline::spawn(monitor(&units), config, 1024);
        for report in stamp_stream(updates(80, 4)) {
            if pipeline.send(report).is_err() {
                break; // the worker died at the kill point
            }
        }
        let report = pipeline.shutdown();
        assert!(report.killed);
        let path = report.flight_recorder_path.expect("dump written");
        assert_eq!(path, dir.join(FLIGHT_RECORDER_FILE));
        let dump = std::fs::read_to_string(&path).expect("read dump");
        let lines: Vec<&str> = dump.lines().collect();
        assert!(!lines.is_empty() && lines.len() <= 32);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"seq\":"));
            assert!(line.contains("\"outcome\":"));
        }
        let last = lines.last().expect("non-empty dump");
        assert!(last.contains("\"outcome\":\"killed\""));
        assert!(last.contains("\"seq\":50,"));
        // Latency still describes the 50 updates applied before the kill.
        assert_eq!(report.latency.update_total_nanos.count(), 50);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A worker that exhausts its restart budget also dumps, with the
    /// trace recording the panics and the terminal `gave_up` event.
    #[test]
    #[cfg_attr(miri, ignore)] // the dump lives on the real filesystem
    fn give_up_dumps_flight_recorder_jsonl() {
        let dir = temp_state_dir();
        let units = unit_points(2);
        let config = ResilienceConfig {
            max_restarts: 1,
            panic_at: vec![0, 1],
            state_dir: Some(dir.clone()),
            ..ResilienceConfig::default()
        };
        let pipeline = SupervisedPipeline::spawn(monitor(&units), config, 64);
        for report in stamp_stream(updates(20, 2)) {
            if pipeline.send(report).is_err() {
                break;
            }
        }
        let report = pipeline.shutdown();
        assert!(report.gave_up);
        let path = report.flight_recorder_path.expect("dump written");
        let dump = std::fs::read_to_string(&path).expect("read dump");
        assert!(dump.contains("\"outcome\":\"panicked\""));
        assert!(dump
            .lines()
            .last()
            .expect("lines")
            .contains("\"outcome\":\"gave_up\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A crash storm must not clobber its own evidence: each dump rotates
    /// the previous one aside, the numbered set stays bounded, and the
    /// *first* crash's dump survives the whole storm.
    #[test]
    #[cfg_attr(miri, ignore)] // the dumps live on the real filesystem
    fn crash_storm_rotates_dumps_and_keeps_the_first() {
        let dir = temp_state_dir();
        let units = unit_points(4);
        let keep = 3usize;
        for round in 0..6u64 {
            let config = ResilienceConfig {
                checkpoint_every: 16,
                state_dir: Some(dir.clone()),
                // Kill at a round-dependent point so each dump's last line
                // is distinguishable.
                kill_at: Some(10 + round),
                flight_recorder_capacity: 32,
                flight_recorder_keep: keep,
                ..ResilienceConfig::default()
            };
            let pipeline = SupervisedPipeline::spawn(monitor(&units), config, 1024);
            for report in stamp_stream(updates(40, 4)) {
                if pipeline.send(report).is_err() {
                    break;
                }
            }
            let report = pipeline.shutdown();
            assert!(report.killed, "round {round} must die at its kill point");
            assert_eq!(
                report.flight_recorder_path,
                Some(dir.join(FLIGHT_RECORDER_FILE)),
                "the newest dump always lands at the canonical path"
            );
        }
        // The canonical file holds the newest crash (kill at seq 15).
        let newest = std::fs::read_to_string(dir.join(FLIGHT_RECORDER_FILE)).expect("newest");
        assert!(newest
            .lines()
            .last()
            .expect("lines")
            .contains("\"seq\":15,"));
        // Exactly `keep` rotated dumps survive, and index 1 — the first
        // crash of the storm, kill at seq 10 — is among them.
        let mut rotated: Vec<u64> = std::fs::read_dir(&dir)
            .expect("read dir")
            .flatten()
            .filter_map(|e| {
                e.file_name()
                    .to_str()?
                    .strip_prefix(FLIGHT_RECORDER_ROTATED_PREFIX)?
                    .strip_suffix(".jsonl")?
                    .parse::<u64>()
                    .ok()
            })
            .collect();
        rotated.sort_unstable();
        assert_eq!(rotated.len(), keep, "numbered dumps are bounded");
        assert_eq!(rotated[0], 1, "the first crash's dump is never lost");
        let first =
            std::fs::read_to_string(dir.join(format!("{FLIGHT_RECORDER_ROTATED_PREFIX}1.jsonl")))
                .expect("first dump");
        assert!(first.lines().last().expect("lines").contains("\"seq\":10,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Two rotations that scanned the directory at the same instant (a
    /// self-heal respawn dumping while its dying sibling still is, within
    /// the same second) must claim distinct sequence suffixes — before the
    /// atomic reservation both computed the same index and the later
    /// rename clobbered the earlier dump.
    #[test]
    #[cfg_attr(miri, ignore)] // the reservation files live on the real filesystem
    fn same_second_rotations_claim_distinct_paths() {
        let dir = temp_state_dir();
        std::fs::create_dir_all(&dir).expect("create dir");
        // Both racers scanned an empty directory and start at index 1.
        let (a, path_a) = reserve_rotation_slot(&dir, 1).expect("first slot");
        let (b, path_b) = reserve_rotation_slot(&dir, 1).expect("second slot");
        assert_eq!((a, b), (1, 2), "the loser advances past the claimed index");
        assert_ne!(path_a, path_b);
        // Each racer's rename lands on its own slot: both dumps survive.
        std::fs::write(&path_a, "first\n").expect("write a");
        std::fs::write(&path_b, "second\n").expect("write b");
        assert_eq!(std::fs::read_to_string(&path_a).expect("a"), "first\n");
        assert_eq!(std::fs::read_to_string(&path_b).expect("b"), "second\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The reservation is race-free under real concurrency: N threads all
    /// starting from the same stale scan claim N distinct indices.
    #[test]
    #[cfg_attr(miri, ignore)] // the reservation files live on the real filesystem
    fn rotation_reservation_is_race_free_across_threads() {
        let dir = temp_state_dir();
        std::fs::create_dir_all(&dir).expect("create dir");
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let dir = dir.clone();
                std::thread::spawn(move || reserve_rotation_slot(&dir, 1).expect("slot").0)
            })
            .collect();
        let mut got: Vec<u64> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, (1..=8).collect::<Vec<u64>>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A traced report records the full supervisor-side causal chain —
    /// wal-append, engine-apply, shard-phase, merge, snapshot-publish —
    /// under its trace id, with parent links intact; untraced reports
    /// record nothing.
    #[test]
    #[cfg_attr(miri, ignore)] // durable state lives on the real filesystem
    fn traced_report_records_causal_chain() {
        use ctup_obs::{span_id, SpanSink};

        let dir = temp_state_dir();
        let sink = Arc::new(SpanSink::new(1024));
        let units = unit_points(2);
        let config = ResilienceConfig {
            state_dir: Some(dir.clone()),
            spans: Some(Arc::clone(&sink)),
            ..ResilienceConfig::default()
        };
        let pipeline = SupervisedPipeline::spawn(monitor(&units), config, 64);
        let stamped = stamp_stream(updates(2, 2));
        let trace = 0xFACE_FEEDu64;
        pipeline
            .send_traced(TracedReport {
                report: stamped[0],
                trace,
                handed_nanos: ctup_obs::now_nanos(),
            })
            .expect("worker alive");
        pipeline.send(stamped[1]).expect("worker alive"); // untraced
        pipeline.shutdown();

        let snap = sink.snapshot();
        let stages: Vec<Stage> = snap.spans.iter().map(|s| s.stage).collect();
        for stage in [
            Stage::WalAppend,
            Stage::EngineApply,
            Stage::ShardPhase,
            Stage::Merge,
            Stage::SnapshotPublish,
        ] {
            assert!(stages.contains(&stage), "missing {stage:?}");
        }
        for span in &snap.spans {
            assert_eq!(span.trace, trace, "untraced report must record nothing");
            assert!(span.end >= span.start);
        }
        // Parent links follow the canonical chain: merge hangs off
        // engine-apply, the publish off the merge.
        let merge = snap
            .spans
            .iter()
            .find(|s| s.stage == Stage::Merge)
            .expect("merge span");
        assert_eq!(merge.parent, span_id(trace, Stage::EngineApply, 0));
        let publish = snap
            .spans
            .iter()
            .find(|s| s.stage == Stage::SnapshotPublish)
            .expect("publish span");
        assert_eq!(publish.parent, span_id(trace, Stage::Merge, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The durable mark is the ack watermark: it covers a report once the
    /// worker has journaled (or terminally rejected) it, and at quiescence
    /// it equals the number of reports received.
    #[test]
    fn durable_mark_tracks_terminal_ownership() {
        let units = unit_points(2);
        let pipeline = SupervisedPipeline::spawn(monitor(&units), ResilienceConfig::default(), 64);
        assert_eq!(pipeline.durable_mark(), 0);
        let good = StampedUpdate {
            seq: 1,
            ts: 1,
            update: LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.3, 0.3),
            },
        };
        pipeline.send(good).expect("worker alive");
        pipeline.send(good).expect("worker alive"); // duplicate: rejected, still terminal
                                                    // The worker drains asynchronously; poll briefly for quiescence.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pipeline.durable_mark() < 2 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pipeline.durable_mark(), 2);
        let report = pipeline.shutdown();
        assert_eq!(report.reports_received, 2);
    }

    /// With a state dir, the mark must not run ahead of the journal: after
    /// a kill, every report the mark covered is recoverable from disk.
    #[test]
    #[cfg_attr(miri, ignore)] // durable state lives on the real filesystem
    fn durable_mark_never_outruns_the_journal() {
        let dir = temp_state_dir();
        let units = unit_points(4);
        // No periodic checkpoints: the journal then holds *every* appended
        // report since spawn, so the write-ahead claim is exactly
        // checkable: mark <= journal length at all times.
        let config = ResilienceConfig {
            checkpoint_every: 0,
            state_dir: Some(dir.clone()),
            kill_at: Some(30),
            ..ResilienceConfig::default()
        };
        let pipeline = SupervisedPipeline::spawn(monitor(&units), config, 1024);
        for report in stamp_stream(updates(60, 4)) {
            if pipeline.send(report).is_err() {
                break;
            }
        }
        // The worker drains asynchronously; wait for it to have journaled
        // at least one report before sampling the mark. Sampling the mark
        // BEFORE reading the journal keeps the check sound: the journal
        // only grows, so `mark <= journal` read in this order never
        // passes spuriously.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut marked = pipeline.durable_mark();
        while marked == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
            marked = pipeline.durable_mark();
        }
        let report = pipeline.shutdown();
        assert!(report.killed);
        assert!(marked > 0, "the worker journaled something before dying");
        let (_, journal) = DurableState::load(&dir).expect("load");
        let journaled = convert::count64(journal.len());
        assert!(
            marked <= journaled,
            "mark {marked} covered more than the {journaled} journaled reports"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The full kill-and-restart drill: the worker dies abruptly mid-stream
    /// *while tearing the newest slot* (death mid-checkpoint-write);
    /// recovery falls back to the older slot, replays the journaled tail,
    /// and — after the full feed is re-delivered with the gate dropping
    /// what was already applied — lands on exactly the direct run's result.
    #[test]
    #[cfg_attr(miri, ignore)] // durable state lives on the real filesystem
    fn kill_and_recover_resumes_oracle_exact() {
        let dir = temp_state_dir();
        let units = unit_points(4);
        let stream = updates(200, 4);

        let mut direct = Server::new(monitor(&units));
        for &u in &stream {
            direct.ingest(u).expect("ingest");
        }

        let config = ResilienceConfig {
            checkpoint_every: 32,
            state_dir: Some(dir.clone()),
            kill_at: Some(120),
            tear_slot_on_kill: true,
            ..ResilienceConfig::default()
        };
        let pipeline = SupervisedPipeline::spawn(monitor(&units), config, 1024);
        let stamped = stamp_stream(stream);
        for &report in &stamped {
            if pipeline.send(report).is_err() {
                break; // the worker died at the kill point
            }
        }
        let report = pipeline.shutdown();
        assert!(report.killed);
        assert!(!report.gave_up);
        assert_eq!(report.updates_processed, 120);
        assert!(report.final_result.is_empty());

        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(6), places()));
        let recovered = SupervisedPipeline::recover_from_dir::<OptCtup>(
            &dir,
            store,
            ResilienceConfig {
                checkpoint_every: 32,
                ..ResilienceConfig::default()
            },
            1024,
        )
        .expect("recover");
        // Re-deliver the whole feed: the restored gate rejects everything
        // already applied before the kill, then the remainder flows.
        for &report in &stamped {
            recovered.send(report).expect("worker alive");
        }
        let out = recovered.shutdown();
        assert!(!out.gave_up);
        assert!(!out.killed);
        // The torn newest slot forced fallback to the older one (state as
        // of effective update 64), so the journal replay had real work to
        // do: reports 65..=121 — report 121 was journaled (write-ahead)
        // but never applied before the kill at effective update 120.
        assert_eq!(out.metrics.resilience.updates_replayed, 57);
        assert_eq!(out.updates_processed, 79);
        assert_eq!(out.final_result, direct.result());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
