//! A threaded ingestion pipeline around the monitoring server.
//!
//! In a deployment the wireless front-end receives location updates on one
//! thread while dispatchers consume alerts on another. [`Pipeline`] spawns
//! a worker that owns the query processor, ingests updates from a bounded
//! channel (providing backpressure towards the receiver), and publishes a
//! batch of [`MonitorEvent`]s for every update that changed the result.

use crate::algorithm::CtupAlgorithm;
use crate::metrics::Metrics;
use crate::server::{MonitorEvent, Server};
use crate::types::LocationUpdate;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::thread::JoinHandle;

/// The result changes caused by one ingested update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventBatch {
    /// 0-based sequence number of the update that caused the changes.
    pub seq: u64,
    /// The changes, in [`Server::ingest`] order.
    pub events: Vec<MonitorEvent>,
}

/// Final accounting returned by [`Pipeline::shutdown`].
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Updates processed by the worker.
    pub updates_processed: u64,
    /// Total events published.
    pub events_emitted: u64,
    /// The algorithm's cumulative metrics at shutdown.
    pub metrics: Metrics,
}

/// A monitoring server running on its own worker thread.
pub struct Pipeline {
    updates_tx: Option<Sender<LocationUpdate>>,
    events_rx: Receiver<EventBatch>,
    worker: Option<JoinHandle<PipelineReport>>,
}

/// Error returned by [`Pipeline::try_send`] when the update channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelFull;

impl Pipeline {
    /// Spawns the worker around an initialized algorithm. `capacity` bounds
    /// both the inbound update queue and the outbound event queue.
    pub fn spawn<A>(algorithm: A, capacity: usize) -> Self
    where
        A: CtupAlgorithm + Send + 'static,
    {
        assert!(capacity > 0, "capacity must be positive");
        let (updates_tx, updates_rx) = bounded::<LocationUpdate>(capacity);
        let (events_tx, events_rx) = bounded::<EventBatch>(capacity);
        let worker = std::thread::Builder::new()
            .name("ctup-monitor".into())
            .spawn(move || {
                let mut server = Server::new(algorithm);
                let mut seq = 0u64;
                for update in updates_rx.iter() {
                    let (events, _) = server.ingest(update);
                    if !events.is_empty() {
                        // If every consumer hung up, keep monitoring anyway:
                        // the final report still carries the totals.
                        let _ = events_tx.send(EventBatch { seq, events });
                    }
                    seq += 1;
                }
                PipelineReport {
                    updates_processed: seq,
                    events_emitted: server.events_emitted(),
                    metrics: server.algorithm().metrics().clone(),
                }
            })
            .expect("spawn ctup-monitor thread");
        Pipeline { updates_tx: Some(updates_tx), events_rx, worker: Some(worker) }
    }

    /// Sends one update, blocking while the queue is full.
    ///
    /// # Panics
    /// Panics if the worker has terminated (it only terminates on
    /// [`Pipeline::shutdown`]).
    pub fn send(&self, update: LocationUpdate) {
        self.updates_tx
            .as_ref()
            .expect("pipeline active")
            .send(update)
            .expect("worker alive");
    }

    /// Sends one update without blocking; returns [`ChannelFull`] when the
    /// queue is saturated (caller may drop or retry — position updates are
    /// refreshed by the next report anyway).
    pub fn try_send(&self, update: LocationUpdate) -> Result<(), ChannelFull> {
        match self.updates_tx.as_ref().expect("pipeline active").try_send(update) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(ChannelFull),
            Err(TrySendError::Disconnected(_)) => panic!("worker terminated unexpectedly"),
        }
    }

    /// The event stream. Batches arrive in update order.
    pub fn events(&self) -> &Receiver<EventBatch> {
        &self.events_rx
    }

    /// Closes the update channel, drains the worker and returns its report.
    /// Pending events can still be read from [`Pipeline::events`] until the
    /// receiver is empty.
    pub fn shutdown(mut self) -> PipelineReport {
        self.updates_tx.take(); // close the channel -> worker loop ends
        self.worker
            .take()
            .expect("shutdown called once")
            .join()
            .expect("worker panicked")
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        self.updates_tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CtupConfig;
    use crate::opt::OptCtup;
    use crate::types::{Place, PlaceId, UnitId};
    use ctup_spatial::{Grid, Point};
    use ctup_storage::{CellLocalStore, PlaceStore};
    use std::sync::Arc;

    fn places() -> Vec<Place> {
        (0..20)
            .map(|i| {
                Place::point(
                    PlaceId(i),
                    Point::new((i % 5) as f64 / 5.0 + 0.1, (i / 5) as f64 / 4.0 + 0.1),
                    1 + i % 3,
                )
            })
            .collect()
    }

    fn monitor(units: &[Point]) -> OptCtup {
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(5), places()));
        OptCtup::new(CtupConfig::with_k(4), store, units)
    }

    fn updates(n: usize) -> Vec<LocationUpdate> {
        let mut state = 0xFEEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| LocationUpdate {
                unit: UnitId((next() * 3.0) as u32 % 3),
                new: Point::new(next(), next()),
            })
            .collect()
    }

    #[test]
    fn pipeline_matches_direct_server_run() {
        let units = [Point::new(0.1, 0.1), Point::new(0.5, 0.5), Point::new(0.9, 0.9)];
        let stream = updates(200);

        // Direct run.
        let mut direct = Server::new(monitor(&units));
        let mut direct_batches = Vec::new();
        for (seq, &u) in stream.iter().enumerate() {
            let (events, _) = direct.ingest(u);
            if !events.is_empty() {
                direct_batches.push(EventBatch { seq: seq as u64, events });
            }
        }

        // Pipelined run: keep a clone of the event receiver so batches
        // survive shutdown, and use a queue large enough that the sender
        // never blocks on the event side.
        let pipeline = Pipeline::spawn(monitor(&units), 256);
        let events_rx = pipeline.events().clone();
        for &u in &stream {
            pipeline.send(u);
        }
        let report = pipeline.shutdown();
        let piped_batches: Vec<EventBatch> = events_rx.try_iter().collect();
        assert_eq!(report.updates_processed, 200);
        assert_eq!(piped_batches, direct_batches);
        assert_eq!(report.events_emitted, direct.events_emitted());
    }

    #[test]
    fn try_send_reports_backpressure() {
        let units = [Point::new(0.1, 0.1)];
        let pipeline = Pipeline::spawn(monitor(&units), 1);
        // Saturate: with capacity 1, eventually try_send must fail at least
        // once while the worker is busy.
        let mut saw_full = false;
        for u in updates(5_000) {
            match pipeline.try_send(u) {
                Ok(()) => {}
                Err(ChannelFull) => {
                    saw_full = true;
                    break;
                }
            }
        }
        let report = pipeline.shutdown();
        assert!(report.updates_processed > 0);
        // Either the worker kept up with everything (possible on a fast
        // machine) or backpressure was observed; both are valid, but the
        // pipeline must never lose accepted updates.
        if !saw_full {
            assert_eq!(report.updates_processed, 5_000);
        }
    }

    #[test]
    fn drop_without_shutdown_joins_cleanly() {
        let units = [Point::new(0.1, 0.1)];
        let pipeline = Pipeline::spawn(monitor(&units), 8);
        pipeline.send(LocationUpdate { unit: UnitId(0), new: Point::new(0.2, 0.2) });
        drop(pipeline); // must not hang or panic
    }
}
