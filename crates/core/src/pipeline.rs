//! A threaded ingestion pipeline around the monitoring server.
//!
//! In a deployment the wireless front-end receives location updates on one
//! thread while dispatchers consume alerts on another. [`Pipeline`] spawns
//! a worker that owns the query processor, ingests updates from a bounded
//! channel (providing backpressure towards the receiver), and publishes a
//! batch of [`MonitorEvent`]s for every update that changed the result.

use crate::algorithm::CtupAlgorithm;
use crate::metrics::Metrics;
use crate::server::{MonitorEvent, Server};
use crate::types::LocationUpdate;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use ctup_obs::LatencySnapshot;
use ctup_storage::StorageError;
use std::thread::JoinHandle;

/// The result changes caused by one ingested update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventBatch {
    /// 0-based sequence number of the update that caused the changes.
    pub seq: u64,
    /// The changes, in [`Server::ingest`] order.
    pub events: Vec<MonitorEvent>,
}

/// Final accounting returned by [`Pipeline::shutdown`].
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Updates processed by the worker.
    pub updates_processed: u64,
    /// Total events published.
    pub events_emitted: u64,
    /// The algorithm's cumulative metrics at shutdown.
    pub metrics: Metrics,
    /// Whether the worker died of a panic instead of a clean shutdown (the
    /// counters above are lost — zero — when it did; a caller that needs
    /// to survive worker crashes should run the supervised pipeline,
    /// [`crate::supervisor::SupervisedPipeline`], instead).
    pub worker_panicked: bool,
    /// The storage error that stopped the worker, if one did. The plain
    /// pipeline has no checkpoint to fall back to, so the first exhausted
    /// retry or detected corruption ends the run (counters up to that
    /// point are preserved); the supervised pipeline restarts instead.
    pub storage_error: Option<StorageError>,
    /// Per-update latency distributions of the run. The plain pipeline has
    /// no store handle, so `disk_read_nanos` stays empty here; the
    /// supervised pipeline fills it.
    pub latency: LatencySnapshot,
}

/// A monitoring server running on its own worker thread.
pub struct Pipeline {
    updates_tx: Option<Sender<LocationUpdate>>,
    events_rx: Receiver<EventBatch>,
    worker: Option<JoinHandle<PipelineReport>>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("worker_alive", &self.worker.is_some())
            .finish_non_exhaustive()
    }
}

/// Errors returned by the pipeline send paths. Both are recoverable: a
/// `Full` caller may retry or drop the report (the next report refreshes
/// the position anyway); a `WorkerDied` caller should drain
/// [`Pipeline::events`] and call [`Pipeline::shutdown`] for the final
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The bounded update queue is full (backpressure; `try_send` only).
    Full,
    /// The worker terminated — it panicked, because a clean shutdown only
    /// happens through [`Pipeline::shutdown`] which consumes the pipeline.
    WorkerDied,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Full => f.write_str("update queue is full"),
            SendError::WorkerDied => f.write_str("monitor worker terminated"),
        }
    }
}

impl std::error::Error for SendError {}

impl Pipeline {
    /// Spawns the worker around an initialized algorithm. `capacity` bounds
    /// both the inbound update queue and the outbound event queue.
    pub fn spawn<A>(algorithm: A, capacity: usize) -> Self
    where
        A: CtupAlgorithm + Send + 'static,
    {
        assert!(capacity > 0, "capacity must be positive");
        let (updates_tx, updates_rx) = bounded::<LocationUpdate>(capacity);
        let (events_tx, events_rx) = bounded::<EventBatch>(capacity);
        #[allow(clippy::expect_used)]
        let worker = std::thread::Builder::new()
            .name("ctup-monitor".into())
            .spawn(move || {
                let mut server = Server::new(algorithm);
                let mut seq = 0u64;
                let mut storage_error = None;
                let mut latency = LatencySnapshot::default();
                for update in updates_rx.iter() {
                    match server.ingest(update) {
                        Ok((events, stats)) => {
                            latency.update_maintain_nanos.record(stats.maintain_nanos);
                            latency.update_access_nanos.record(stats.access_nanos);
                            latency
                                .update_total_nanos
                                .record(stats.maintain_nanos.saturating_add(stats.access_nanos));
                            if !events.is_empty() {
                                // If every consumer hung up, keep monitoring
                                // anyway: the final report still carries the
                                // totals.
                                let _ = events_tx.send(EventBatch { seq, events });
                            }
                            seq += 1;
                        }
                        Err(e) => {
                            storage_error = Some(e);
                            break;
                        }
                    }
                }
                PipelineReport {
                    updates_processed: seq,
                    events_emitted: server.events_emitted(),
                    metrics: server.algorithm().metrics().clone(),
                    worker_panicked: false,
                    storage_error,
                    latency,
                }
            })
            // ctup-lint: allow(L001, thread spawn fails only on OS resource exhaustion at construction — there is no monitor to degrade to yet)
            .expect("spawn ctup-monitor thread");
        Pipeline {
            updates_tx: Some(updates_tx),
            events_rx,
            worker: Some(worker),
        }
    }

    /// Sends one update, blocking while the queue is full. Returns
    /// [`SendError::WorkerDied`] if the worker has panicked — the caller
    /// can keep draining events and recover the final report via
    /// [`Pipeline::shutdown`].
    pub fn send(&self, update: LocationUpdate) -> Result<(), SendError> {
        let Some(tx) = self.updates_tx.as_ref() else {
            return Err(SendError::WorkerDied); // only after shutdown() took the sender
        };
        tx.send(update).map_err(|_| SendError::WorkerDied)
    }

    /// Sends one update without blocking; returns [`SendError::Full`] when
    /// the queue is saturated (caller may drop or retry — position updates
    /// are refreshed by the next report anyway) and
    /// [`SendError::WorkerDied`] when the worker has panicked.
    pub fn try_send(&self, update: LocationUpdate) -> Result<(), SendError> {
        let Some(tx) = self.updates_tx.as_ref() else {
            return Err(SendError::WorkerDied); // only after shutdown() took the sender
        };
        match tx.try_send(update) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(SendError::Full),
            Err(TrySendError::Disconnected(_)) => Err(SendError::WorkerDied),
        }
    }

    /// The event stream. Batches arrive in update order.
    pub fn events(&self) -> &Receiver<EventBatch> {
        &self.events_rx
    }

    /// Closes the update channel, drains the worker and returns its report.
    /// Pending events can still be read from [`Pipeline::events`] until the
    /// receiver is empty. If the worker died of a panic, the report carries
    /// `worker_panicked: true` (with zeroed counters) instead of
    /// propagating the panic to the caller.
    pub fn shutdown(mut self) -> PipelineReport {
        self.updates_tx.take(); // close the channel -> worker loop ends
                                // `worker` is `Some` until this method consumes `self`, so the else
                                // arm is unreachable; degrade like a dead worker instead of
                                // panicking at the one place callers collect their final report.
        let report = self.worker.take().map(|w| w.join());
        match report {
            Some(Ok(report)) => report,
            _ => PipelineReport {
                updates_processed: 0,
                events_emitted: 0,
                metrics: Metrics::default(),
                worker_panicked: true,
                storage_error: None,
                latency: LatencySnapshot::default(),
            },
        }
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        self.updates_tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CtupConfig;
    use crate::opt::OptCtup;
    use crate::types::{Place, PlaceId, UnitId};
    use ctup_spatial::{Grid, Point};
    use ctup_storage::{CellLocalStore, PlaceStore};
    use std::sync::Arc;

    fn places() -> Vec<Place> {
        (0..20)
            .map(|i| {
                Place::point(
                    PlaceId(i),
                    Point::new((i % 5) as f64 / 5.0 + 0.1, (i / 5) as f64 / 4.0 + 0.1),
                    1 + i % 3,
                )
            })
            .collect()
    }

    fn monitor(units: &[Point]) -> OptCtup {
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(5), places()));
        OptCtup::new(CtupConfig::with_k(4), store, units).expect("init")
    }

    fn updates(n: usize) -> Vec<LocationUpdate> {
        let mut state = 0xFEEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| LocationUpdate {
                unit: UnitId((next() * 3.0) as u32 % 3),
                new: Point::new(next(), next()),
            })
            .collect()
    }

    #[test]
    fn pipeline_matches_direct_server_run() {
        let units = [
            Point::new(0.1, 0.1),
            Point::new(0.5, 0.5),
            Point::new(0.9, 0.9),
        ];
        let stream = updates(200);

        // Direct run.
        let mut direct = Server::new(monitor(&units));
        let mut direct_batches = Vec::new();
        for (seq, &u) in stream.iter().enumerate() {
            let (events, _) = direct.ingest(u).expect("ingest");
            if !events.is_empty() {
                direct_batches.push(EventBatch {
                    seq: seq as u64,
                    events,
                });
            }
        }

        // Pipelined run: keep a clone of the event receiver so batches
        // survive shutdown, and use a queue large enough that the sender
        // never blocks on the event side.
        let pipeline = Pipeline::spawn(monitor(&units), 256);
        let events_rx = pipeline.events().clone();
        for &u in &stream {
            pipeline.send(u).expect("worker alive");
        }
        let report = pipeline.shutdown();
        let piped_batches: Vec<EventBatch> = events_rx.try_iter().collect();
        assert_eq!(report.updates_processed, 200);
        assert_eq!(piped_batches, direct_batches);
        assert_eq!(report.events_emitted, direct.events_emitted());
        // Every processed update fed the latency histograms.
        assert_eq!(report.latency.update_total_nanos.count(), 200);
        assert_eq!(report.latency.update_maintain_nanos.count(), 200);
        assert!(report.latency.disk_read_nanos.is_empty());
    }

    #[test]
    fn try_send_reports_backpressure() {
        let units = [Point::new(0.1, 0.1)];
        let pipeline = Pipeline::spawn(monitor(&units), 1);
        // Saturate: with capacity 1, eventually try_send must fail at least
        // once while the worker is busy.
        let mut saw_full = false;
        for u in updates(5_000) {
            match pipeline.try_send(u) {
                Ok(()) => {}
                Err(SendError::Full) => {
                    saw_full = true;
                    break;
                }
                Err(SendError::WorkerDied) => panic!("worker died unexpectedly"),
            }
        }
        let report = pipeline.shutdown();
        assert!(report.updates_processed > 0);
        // Either the worker kept up with everything (possible on a fast
        // machine) or backpressure was observed; both are valid, but the
        // pipeline must never lose accepted updates.
        if !saw_full {
            assert_eq!(report.updates_processed, 5_000);
        }
    }

    #[test]
    fn drop_without_shutdown_joins_cleanly() {
        let units = [Point::new(0.1, 0.1)];
        let pipeline = Pipeline::spawn(monitor(&units), 8);
        pipeline
            .send(LocationUpdate {
                unit: UnitId(0),
                new: Point::new(0.2, 0.2),
            })
            .expect("worker alive");
        drop(pipeline); // must not hang or panic
    }

    /// A panicking algorithm must surface as typed errors on the send path
    /// and a `worker_panicked` report — never as a panic in the caller.
    #[test]
    fn dead_worker_yields_typed_errors() {
        struct Bomb(OptCtup);
        impl CtupAlgorithm for Bomb {
            fn name(&self) -> &'static str {
                "bomb"
            }
            fn config(&self) -> &CtupConfig {
                self.0.config()
            }
            fn handle_update(
                &mut self,
                _update: LocationUpdate,
            ) -> Result<crate::UpdateStats, StorageError> {
                panic!("boom");
            }
            fn result(&self) -> Vec<crate::TopKEntry> {
                self.0.result()
            }
            fn sk(&self) -> Option<crate::Safety> {
                self.0.sk()
            }
            fn metrics(&self) -> &Metrics {
                self.0.metrics()
            }
            fn init_stats(&self) -> &crate::InitStats {
                self.0.init_stats()
            }
            fn unit_position(&self, unit: UnitId) -> Point {
                self.0.unit_position(unit)
            }
            fn num_units(&self) -> usize {
                self.0.num_units()
            }
        }

        let units = [Point::new(0.1, 0.1)];
        let pipeline = Pipeline::spawn(Bomb(monitor(&units)), 8);
        let update = LocationUpdate {
            unit: UnitId(0),
            new: Point::new(0.2, 0.2),
        };
        // The first send reaches the worker, which dies processing it.
        // Eventually the channel disconnects and sends report WorkerDied.
        let mut died = false;
        for _ in 0..1_000 {
            match pipeline.send(update) {
                Ok(()) => std::thread::yield_now(),
                Err(SendError::WorkerDied) => {
                    died = true;
                    break;
                }
                Err(SendError::Full) => unreachable!("blocking send never reports Full"),
            }
        }
        assert!(died, "send never observed the dead worker");
        let report = pipeline.shutdown();
        assert!(report.worker_panicked);
    }
}
