//! The paper's future-work extensions (§VII), all implemented:
//!
//! 1. **Places with extent** — built directly into the protection
//!    predicate ([`crate::types::protects`]) and the margin-aware cell
//!    classification ([`crate::cells::classify_with_margin`]); every
//!    algorithm in this crate handles extended places transparently.
//! 2. **Decaying protection** — [`decay`]: protection as a monotone
//!    decreasing kernel of distance instead of a 0/1 indicator.
//! 3. **Threshold monitoring** — [`threshold`]: report *all* places with
//!    safety below a threshold instead of the top-k.
//! 4. **Prediction** — [`predict`]: dead-reckon unit trajectories and
//!    answer snapshot CTUP queries about the near future.

pub mod decay;
pub mod predict;
pub mod threshold;
