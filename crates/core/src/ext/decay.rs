//! Decaying protection (future work #2): "the protection of a unit to a
//! place can be modeled as a decaying function, i.e. the farther away, the
//! less protected."
//!
//! Protection becomes `AP(p) = Σ_u w(dist(u, p))` for a monotone
//! non-increasing kernel `w` with bounded support, and safeties become
//! reals. The grid machinery generalizes: when a unit moves from `old` to
//! `new`, any place in cell `C` changes by at least
//! `w(maxdist(new, C)) − w(mindist(old, C))`, which is the sound per-cell
//! lower-bound delta. The Δ slack and access loop carry over; DOO does not
//! (contributions are no longer 0/1), which is why this module exists as a
//! separate monitor rather than a mode of `OptCtup`.

use crate::types::{Place, PlaceId};
use ctup_spatial::{convert, CellId, Circle, Grid, Point, UnitGridIndex};
use ctup_storage::{PlaceStore, StorageError};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// `f64` with the total order, usable as a BTree key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TotalF64(f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A monotone non-increasing protection kernel with bounded support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecayKernel {
    /// The paper's original 0/1 model: weight 1 within `radius`, else 0.
    Step {
        /// Protection range.
        radius: f64,
    },
    /// Linear decay: `w(d) = max(0, 1 − d/radius)`.
    Cone {
        /// Distance at which protection reaches zero.
        radius: f64,
    },
    /// Gaussian decay truncated at `cutoff`: `w(d) = exp(−d²/2σ²)` for
    /// `d ≤ cutoff`, else 0.
    Gaussian {
        /// Standard deviation of the bell.
        sigma: f64,
        /// Hard support cutoff.
        cutoff: f64,
    },
}

impl DecayKernel {
    /// The protection weight at distance `d`.
    pub fn weight(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        match *self {
            DecayKernel::Step { radius } => {
                if d <= radius {
                    1.0
                } else {
                    0.0
                }
            }
            DecayKernel::Cone { radius } => (1.0 - d / radius).max(0.0),
            DecayKernel::Gaussian { sigma, cutoff } => {
                if d <= cutoff {
                    (-d * d / (2.0 * sigma * sigma)).exp()
                } else {
                    0.0
                }
            }
        }
    }

    /// Distance beyond which the weight is zero.
    pub fn support(&self) -> f64 {
        match *self {
            DecayKernel::Step { radius } | DecayKernel::Cone { radius } => radius,
            DecayKernel::Gaussian { cutoff, .. } => cutoff,
        }
    }
}

/// What the decayed monitor reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecayMode {
    /// The `k` places with the smallest decayed safeties.
    TopK(usize),
    /// All places with decayed safety below the bound.
    Threshold(f64),
}

/// One entry of the decayed result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayEntry {
    /// The place.
    pub place: PlaceId,
    /// Its decayed safety `Σ w(dist) − RP`.
    pub safety: f64,
}

/// Configuration of [`DecayCtup`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayConfig {
    /// The protection kernel.
    pub kernel: DecayKernel,
    /// Query mode.
    pub mode: DecayMode,
    /// Anti-flashing slack, the analogue of the paper's `Δ` in safety
    /// units.
    pub delta: f64,
}

/// Brute-force ground truth for the decayed model.
#[derive(Debug, Clone)]
pub struct DecayOracle {
    places: Vec<Place>,
    kernel: DecayKernel,
}

impl DecayOracle {
    /// Creates the oracle.
    pub fn new(places: Vec<Place>, kernel: DecayKernel) -> Self {
        DecayOracle { places, kernel }
    }

    /// Exact decayed safety of one place.
    pub fn safety_of(&self, place: &Place, units: &[Point]) -> f64 {
        let ap: f64 = units
            .iter()
            .map(|u| self.kernel.weight(u.dist(place.pos)))
            .sum();
        ap - place.rp as f64
    }

    /// The exact result under `mode`, sorted by `(safety, id)`.
    pub fn result(&self, units: &[Point], mode: DecayMode) -> Vec<DecayEntry> {
        let mut entries: Vec<DecayEntry> = self
            .places
            .iter()
            .map(|p| DecayEntry {
                place: p.id,
                safety: self.safety_of(p, units),
            })
            .collect();
        entries.sort_by(|a, b| a.safety.total_cmp(&b.safety).then(a.place.cmp(&b.place)));
        match mode {
            DecayMode::TopK(k) => {
                entries.truncate(k);
                entries
            }
            DecayMode::Threshold(tau) => {
                entries.retain(|e| e.safety < tau);
                entries
            }
        }
    }
}

struct MaintainedDecay {
    place: Place,
    safety: f64,
}

/// The grid-based continuous monitor for the decayed model.
pub struct DecayCtup {
    config: DecayConfig,
    store: Arc<dyn PlaceStore>,
    grid: Grid,
    positions: Vec<Point>,
    index: UnitGridIndex<u32>,
    lbs: Vec<f64>,
    lb_order: BTreeSet<(TotalF64, CellId)>,
    maintained: HashMap<PlaceId, MaintainedDecay>,
    by_cell: HashMap<CellId, Vec<PlaceId>>,
    ordered: BTreeSet<(TotalF64, PlaceId)>,
    /// Cells accessed since construction (diagnostics).
    pub cells_accessed: u64,
}

impl std::fmt::Debug for DecayCtup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecayCtup")
            .field("config", &self.config)
            .field("cells_accessed", &self.cells_accessed)
            .finish_non_exhaustive()
    }
}

impl DecayCtup {
    /// Builds the monitor and initializes it (exact per-cell bounds, then
    /// accesses in increasing bound order). Fails if a cell read hits a
    /// storage fault.
    pub fn new(
        config: DecayConfig,
        store: Arc<dyn PlaceStore>,
        initial_units: &[Point],
    ) -> Result<Self, StorageError> {
        assert!(
            config.kernel.support() > 0.0,
            "kernel must have positive support"
        );
        assert!(config.delta >= 0.0, "delta must be non-negative");
        if let DecayMode::TopK(k) = config.mode {
            assert!(k > 0, "k must be at least 1");
        }
        let grid = store.grid().clone();
        let mut index = UnitGridIndex::new(grid.clone());
        for (i, &p) in initial_units.iter().enumerate() {
            index.insert(convert::id32(i), p);
        }
        let num_cells = grid.num_cells();
        let mut this = DecayCtup {
            config,
            store,
            grid,
            positions: initial_units.to_vec(),
            index,
            lbs: vec![f64::INFINITY; num_cells],
            lb_order: (0..num_cells)
                .map(|i| (TotalF64(f64::INFINITY), CellId(convert::id32(i))))
                .collect(),
            maintained: HashMap::new(),
            by_cell: HashMap::new(),
            ordered: BTreeSet::new(),
            cells_accessed: 0,
        };
        // Exact bounds per cell.
        for cell in this.grid.cells() {
            let records = this.store.read_cell(cell)?.into_owned();
            let mut min = f64::INFINITY;
            for record in &records {
                min = min.min(this.safety_of(record));
            }
            this.set_lb(cell, min);
        }
        this.access_loop()?;
        Ok(this)
    }

    /// Exact decayed safety from the unit index.
    fn safety_of(&self, place: &Place) -> f64 {
        let mut ap = 0.0;
        let probe = Circle::new(place.pos, self.config.kernel.support());
        self.index.for_each_within(&probe, |_, unit_pos| {
            ap += self.config.kernel.weight(unit_pos.dist(place.pos));
        });
        ap - place.rp as f64
    }

    fn set_lb(&mut self, cell: CellId, lb: f64) {
        let old = self.lbs[cell.index()];
        if old.total_cmp(&lb).is_eq() {
            return;
        }
        let removed = self.lb_order.remove(&(TotalF64(old), cell));
        debug_assert!(removed);
        self.lb_order.insert((TotalF64(lb), cell));
        self.lbs[cell.index()] = lb;
    }

    fn sk_eff(&self) -> f64 {
        match self.config.mode {
            DecayMode::TopK(k) => self
                .ordered
                .iter()
                .nth(k - 1)
                .map(|&(TotalF64(s), _)| s)
                .unwrap_or(f64::INFINITY),
            DecayMode::Threshold(tau) => tau,
        }
    }

    fn remove_cell_places(&mut self, cell: CellId) {
        if let Some(ids) = self.by_cell.remove(&cell) {
            for id in ids {
                let Some(entry) = self.maintained.remove(&id) else {
                    debug_assert!(false, "{id:?} in by_cell but not maintained");
                    continue;
                };
                self.ordered.remove(&(TotalF64(entry.safety), id));
            }
        }
    }

    fn access_cell(&mut self, cell: CellId) -> Result<(), StorageError> {
        let records = self.store.read_cell(cell)?.into_owned();
        self.cells_accessed += 1;
        self.remove_cell_places(cell);
        for record in records {
            let safety = self.safety_of(&record);
            let id = record.id;
            self.ordered.insert((TotalF64(safety), id));
            self.by_cell.entry(cell).or_default().push(id);
            self.maintained.insert(
                id,
                MaintainedDecay {
                    place: record,
                    safety,
                },
            );
        }
        // Never evict at or below SK itself (with Δ = 0 that would evict
        // the k-th place and loop forever re-accessing the cell).
        let sk = self.sk_eff();
        let keep_below = sk + self.config.delta;
        let mut lb = f64::INFINITY;
        if let Some(ids) = self.by_cell.remove(&cell) {
            let mut kept = Vec::new();
            for id in ids {
                let safety = self.maintained[&id].safety;
                if safety >= keep_below && safety > sk {
                    let Some(entry) = self.maintained.remove(&id) else {
                        debug_assert!(false, "{id:?} indexed but not maintained");
                        continue;
                    };
                    self.ordered.remove(&(TotalF64(entry.safety), id));
                    lb = lb.min(safety);
                } else {
                    kept.push(id);
                }
            }
            if !kept.is_empty() {
                self.by_cell.insert(cell, kept);
            }
        }
        self.set_lb(cell, lb);
        Ok(())
    }

    fn access_loop(&mut self) -> Result<u64, StorageError> {
        let mut count = 0;
        loop {
            let sk = self.sk_eff();
            match self.lb_order.first() {
                Some(&(TotalF64(lb0), cell)) if lb0 < sk => {
                    self.access_cell(cell)?;
                    count += 1;
                }
                _ => break,
            }
        }
        Ok(count)
    }

    /// Processes one location update; returns the number of cells accessed.
    /// Fails only on a storage fault.
    pub fn handle_update(&mut self, unit: u32, new: Point) -> Result<u64, StorageError> {
        let old = self.positions[convert::index(unit)];
        self.index.relocate(unit, old, new);
        self.positions[convert::index(unit)] = new;
        let kernel = self.config.kernel;
        let support = kernel.support();

        // Step 1: exact maintained safeties.
        let mut changes = Vec::new();
        for (&id, entry) in self.maintained.iter_mut() {
            let dw =
                kernel.weight(new.dist(entry.place.pos)) - kernel.weight(old.dist(entry.place.pos));
            // Skip-if-unchanged is an optimization, not a tolerance test:
            // `abs() > 0.0` is exact for finite weights and also skips NaN.
            if dw.abs() > 0.0 {
                changes.push((id, entry.safety, entry.safety + dw));
                entry.safety += dw;
            }
        }
        for (id, before, after) in changes {
            let removed = self.ordered.remove(&(TotalF64(before), id));
            debug_assert!(removed);
            self.ordered.insert((TotalF64(after), id));
        }

        // Step 2: sound lower-bound deltas.
        let old_region = Circle::new(old, support);
        let new_region = Circle::new(new, support);
        let cells = crate::cells::touched_cells(&self.grid, &old_region, &new_region);
        for cell in cells {
            let lb = self.lbs[cell.index()];
            if lb.is_infinite() {
                continue; // no non-maintained places in the cell
            }
            let rect = self.grid.cell_rect(cell);
            let max_loss = kernel.weight(rect.min_dist2(old).sqrt());
            let min_gain = kernel.weight(rect.max_dist2(new).sqrt());
            let delta = min_gain - max_loss;
            if delta.abs() > 0.0 {
                self.set_lb(cell, lb + delta);
            }
        }

        // Step 3: access cells whose bound fell below SK.
        self.access_loop()
    }

    /// The current result, sorted by `(safety, id)`.
    pub fn result(&self) -> Vec<DecayEntry> {
        let take: Box<dyn Iterator<Item = &(TotalF64, PlaceId)>> = match self.config.mode {
            DecayMode::TopK(k) => Box::new(self.ordered.iter().take(k)),
            DecayMode::Threshold(tau) => Box::new(
                self.ordered
                    .iter()
                    .take_while(move |&&(TotalF64(s), _)| s < tau),
            ),
        };
        take.map(|&(TotalF64(safety), place)| DecayEntry { place, safety })
            .collect()
    }

    /// Number of maintained places.
    pub fn maintained_places(&self) -> usize {
        self.maintained.len()
    }

    /// Asserts the soundness invariant `lb(C) ≤ fsafety(p) + tol` for every
    /// non-maintained place; test/diagnostic use.
    pub fn check_lb_invariant(&self, tol: f64) {
        for cell in self.grid.cells() {
            let lb = self.lbs[cell.index()];
            if lb.is_infinite() {
                continue;
            }
            let records = self
                .store
                .read_cell(cell)
                // ctup-lint: allow(L001, the invariant checker is an assertion harness — an unreadable cell must fail the calling test)
                .unwrap_or_else(|e| panic!("invariant check could not read {cell:?}: {e}"));
            for record in records.iter() {
                if self.maintained.contains_key(&record.id) {
                    continue;
                }
                let truth = self.safety_of(record);
                assert!(
                    lb <= truth + tol,
                    "cell {cell:?}: lb {lb} exceeds decayed safety {truth} of {:?}",
                    record.id
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctup_spatial::Grid;
    use ctup_storage::CellLocalStore;

    #[test]
    fn kernels_are_monotone_and_bounded() {
        let kernels = [
            DecayKernel::Step { radius: 0.1 },
            DecayKernel::Cone { radius: 0.2 },
            DecayKernel::Gaussian {
                sigma: 0.05,
                cutoff: 0.2,
            },
        ];
        for kernel in kernels {
            let mut prev = f64::INFINITY;
            for i in 0..=100 {
                let d = i as f64 * 0.004;
                let w = kernel.weight(d);
                assert!((0.0..=1.0).contains(&w), "{kernel:?} at {d}: {w}");
                assert!(w <= prev + 1e-12, "{kernel:?} not monotone at {d}");
                prev = w;
            }
            assert_eq!(kernel.weight(kernel.support() + 1e-9), 0.0);
        }
    }

    fn place_set() -> Vec<Place> {
        let mut places = Vec::new();
        for i in 0..6u32 {
            for j in 0..6u32 {
                places.push(Place::point(
                    PlaceId(i * 6 + j),
                    Point::new(i as f64 / 6.0 + 0.08, j as f64 / 6.0 + 0.08),
                    1 + (i * j) % 3,
                ));
            }
        }
        places
    }

    fn assert_results_match(got: &[DecayEntry], want: &[DecayEntry], tol: f64) {
        assert_eq!(got.len(), want.len(), "got {got:?}\nwant {want:?}");
        for (g, w) in got.iter().zip(want) {
            assert!(
                (g.safety - w.safety).abs() <= tol,
                "safety mismatch: got {got:?}\nwant {want:?}"
            );
        }
    }

    fn run(kernel: DecayKernel, mode: DecayMode, steps: usize, seed: u64) {
        let places = place_set();
        let oracle = DecayOracle::new(places.clone(), kernel);
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(6), places));
        let mut units: Vec<Point> = (0..8)
            .map(|i| Point::new(0.1 + 0.1 * i as f64, 0.45))
            .collect();
        let config = DecayConfig {
            kernel,
            mode,
            delta: 0.5,
        };
        let mut monitor = DecayCtup::new(config, store, &units).expect("init");
        assert_results_match(&monitor.result(), &oracle.result(&units, mode), 1e-9);

        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for step in 0..steps {
            let unit = (next() * 8.0) as usize % 8;
            let new = Point::new(next(), next());
            monitor.handle_update(unit as u32, new).expect("update");
            units[unit] = new;
            assert_results_match(&monitor.result(), &oracle.result(&units, mode), 1e-6);
            if step % 40 == 0 {
                monitor.check_lb_invariant(1e-6);
            }
        }
        monitor.check_lb_invariant(1e-6);
    }

    #[test]
    fn cone_kernel_tracks_oracle_topk() {
        run(
            DecayKernel::Cone { radius: 0.15 },
            DecayMode::TopK(5),
            150,
            0x11,
        );
    }

    #[test]
    fn gaussian_kernel_tracks_oracle_topk() {
        run(
            DecayKernel::Gaussian {
                sigma: 0.06,
                cutoff: 0.2,
            },
            DecayMode::TopK(4),
            150,
            0x22,
        );
    }

    #[test]
    fn step_kernel_reduces_to_integer_model() {
        run(
            DecayKernel::Step { radius: 0.1 },
            DecayMode::TopK(5),
            100,
            0x33,
        );
    }

    #[test]
    fn threshold_mode_tracks_oracle() {
        run(
            DecayKernel::Cone { radius: 0.2 },
            DecayMode::Threshold(-0.5),
            100,
            0x44,
        );
    }

    #[test]
    fn larger_delta_buys_fewer_accesses() {
        // Under continuous jiggling the per-cell bound loses up to
        // w(mindist) − w(maxdist) per update; a larger Δ slack lets the
        // bound absorb more updates between accesses.
        let run_with_delta = |delta: f64| {
            let places = place_set();
            let store: Arc<dyn PlaceStore> =
                Arc::new(CellLocalStore::build(Grid::unit_square(6), places));
            let units: Vec<Point> = (0..8)
                .map(|i| Point::new(0.1 + 0.1 * i as f64, 0.45))
                .collect();
            let config = DecayConfig {
                kernel: DecayKernel::Cone { radius: 0.15 },
                mode: DecayMode::TopK(5),
                delta,
            };
            let mut monitor = DecayCtup::new(config, store, &units).expect("init");
            let before = monitor.cells_accessed;
            for i in 0..100 {
                monitor
                    .handle_update(0, Point::new(0.1 + 1e-7 * i as f64, 0.45))
                    .expect("update");
            }
            monitor.cells_accessed - before
        };
        let tight = run_with_delta(0.05);
        let slack = run_with_delta(3.0);
        assert!(
            slack < tight,
            "delta=3.0 accessed {slack} cells, delta=0.05 accessed {tight}"
        );
    }
}
