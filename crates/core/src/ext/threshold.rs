//! Threshold monitoring (future work #3): continuously report **all**
//! places with `safety < τ`.
//!
//! The OptCTUP machinery carries over unchanged with `SK` replaced by the
//! constant `τ`: cells whose lower bound falls below `τ` are accessed, and
//! places with `safety < τ + Δ` stay maintained so near-threshold places do
//! not cause flashing.

use crate::algorithm::{CtupAlgorithm, UpdateStats};
use crate::config::{CtupConfig, QueryMode};
use crate::opt::OptCtup;
use crate::types::{LocationUpdate, Safety, TopKEntry};
use ctup_spatial::Point;
use ctup_storage::{PlaceStore, StorageError};
use std::sync::Arc;

/// A continuous "all places below threshold" monitor.
pub struct ThresholdMonitor {
    inner: OptCtup,
    threshold: Safety,
}

impl std::fmt::Debug for ThresholdMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThresholdMonitor")
            .field("threshold", &self.threshold)
            .finish_non_exhaustive()
    }
}

impl ThresholdMonitor {
    /// Builds the monitor. `base` supplies radius and Δ; its query mode is
    /// overridden with `Threshold(threshold)`. Fails if the underlying
    /// initialization hits a storage fault.
    pub fn new(
        threshold: Safety,
        base: CtupConfig,
        store: Arc<dyn PlaceStore>,
        initial_units: &[Point],
    ) -> Result<Self, StorageError> {
        let config = CtupConfig {
            mode: QueryMode::Threshold(threshold),
            ..base
        };
        Ok(ThresholdMonitor {
            inner: OptCtup::new(config, store, initial_units)?,
            threshold,
        })
    }

    /// The monitored threshold `τ`.
    pub fn threshold(&self) -> Safety {
        self.threshold
    }

    /// Every place currently below the threshold, most unsafe first.
    pub fn unsafe_places(&self) -> Vec<TopKEntry> {
        self.inner.result()
    }

    /// Number of places currently below the threshold.
    pub fn alarm_count(&self) -> usize {
        self.inner.result().len()
    }

    /// Processes one location update. Fails only on a storage fault.
    pub fn handle_update(&mut self, update: LocationUpdate) -> Result<UpdateStats, StorageError> {
        self.inner.handle_update(update)
    }

    /// The underlying OptCTUP processor (metrics, diagnostics).
    pub fn inner(&self) -> &OptCtup {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use crate::types::{Place, PlaceId, UnitId};
    use ctup_spatial::Grid;
    use ctup_storage::CellLocalStore;

    fn setup(threshold: Safety) -> (ThresholdMonitor, Oracle, Vec<Point>) {
        let mut places = Vec::new();
        for i in 0..6u32 {
            for j in 0..6u32 {
                places.push(Place::point(
                    PlaceId(i * 6 + j),
                    Point::new(i as f64 / 6.0 + 0.08, j as f64 / 6.0 + 0.08),
                    1 + (i + j) % 4,
                ));
            }
        }
        let oracle = Oracle::new(places.clone());
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(6), places));
        let units: Vec<Point> = (0..8)
            .map(|i| Point::new(0.1 + 0.1 * i as f64, 0.5))
            .collect();
        let monitor = ThresholdMonitor::new(threshold, CtupConfig::paper_default(), store, &units)
            .expect("init");
        (monitor, oracle, units)
    }

    #[test]
    fn reports_exactly_the_places_below_threshold() {
        let (monitor, oracle, units) = setup(-1);
        oracle.assert_result_matches(
            &monitor.unsafe_places(),
            &units,
            0.1,
            QueryMode::Threshold(-1),
        );
        assert_eq!(monitor.alarm_count(), monitor.unsafe_places().len());
        assert_eq!(monitor.threshold(), -1);
    }

    #[test]
    fn tracks_oracle_through_updates() {
        let (mut monitor, oracle, mut units) = setup(0);
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..150 {
            let unit = (next() * 8.0) as usize % 8;
            let new = Point::new(next(), next());
            monitor
                .handle_update(LocationUpdate {
                    unit: UnitId(unit as u32),
                    new,
                })
                .expect("update");
            units[unit] = new;
            oracle.assert_result_matches(
                &monitor.unsafe_places(),
                &units,
                0.1,
                QueryMode::Threshold(0),
            );
        }
        monitor.inner().check_lb_invariant();
    }

    #[test]
    fn extreme_thresholds() {
        // Threshold below any reachable safety: nothing is reported.
        let (monitor, _, _) = setup(-100);
        assert_eq!(monitor.alarm_count(), 0);
        // Threshold above everything: every place is reported.
        let (monitor, oracle, units) = setup(100);
        assert_eq!(monitor.alarm_count(), 36);
        oracle.assert_result_matches(
            &monitor.unsafe_places(),
            &units,
            0.1,
            QueryMode::Threshold(100),
        );
    }
}
