//! Predictive CTUP (future work #4): "instead of monitoring, the user may
//! want the system to continuously predict the unsafe places in the near
//! future."
//!
//! Units stream positions; a [`VelocityTracker`] estimates each unit's
//! velocity from its last two reports (dead reckoning), and
//! [`PredictiveCtup`] answers snapshot top-k/threshold queries against the
//! extrapolated positions.

use crate::config::QueryMode;
use crate::oracle::Oracle;
use crate::types::{LocationUpdate, Place, TopKEntry, UnitId};
use ctup_spatial::{Point, Rect};
use ctup_storage::{PlaceStore, StorageError};

/// Dead-reckoning velocity estimates from consecutive location reports.
///
/// Velocities are expressed per report interval: a horizon of `h` predicts
/// `pos + h · (pos − previous_pos)`.
#[derive(Debug, Clone)]
pub struct VelocityTracker {
    current: Vec<Point>,
    previous: Vec<Option<Point>>,
}

impl VelocityTracker {
    /// Starts tracking with every unit at its initial position and no
    /// velocity information.
    pub fn new(initial: &[Point]) -> Self {
        VelocityTracker {
            current: initial.to_vec(),
            previous: vec![None; initial.len()],
        }
    }

    /// Number of tracked units.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// Whether no units are tracked.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Ingests one location update.
    pub fn observe(&mut self, update: LocationUpdate) {
        let i = update.unit.index();
        self.previous[i] = Some(self.current[i]);
        self.current[i] = update.new;
    }

    /// Current position of a unit.
    pub fn position(&self, unit: UnitId) -> Point {
        self.current[unit.index()]
    }

    /// Estimated velocity (displacement per report) of a unit; zero before
    /// the second report.
    pub fn velocity(&self, unit: UnitId) -> (f64, f64) {
        match self.previous[unit.index()] {
            Some(prev) => {
                let cur = self.current[unit.index()];
                (cur.x - prev.x, cur.y - prev.y)
            }
            None => (0.0, 0.0),
        }
    }

    /// Positions extrapolated `horizon` report-intervals ahead, clamped to
    /// `space`.
    pub fn predicted_positions(&self, horizon: f64, space: &Rect) -> Vec<Point> {
        (0..self.current.len())
            .map(|i| {
                let unit = UnitId(ctup_spatial::convert::id32(i));
                let pos = self.current[i];
                let (vx, vy) = self.velocity(unit);
                Point::new(
                    (pos.x + vx * horizon).clamp(space.lo.x, space.hi.x),
                    (pos.y + vy * horizon).clamp(space.lo.y, space.hi.y),
                )
            })
            .collect()
    }
}

/// Snapshot CTUP queries over predicted unit positions.
pub struct PredictiveCtup {
    oracle: Oracle,
    tracker: VelocityTracker,
    space: Rect,
    radius: f64,
}

impl std::fmt::Debug for PredictiveCtup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictiveCtup")
            .field("space", &self.space)
            .field("radius", &self.radius)
            .finish_non_exhaustive()
    }
}

impl PredictiveCtup {
    /// Builds the predictor over the full place set of `store`. Fails if
    /// the store's bulk scan hits a storage fault.
    pub fn new(
        store: &dyn PlaceStore,
        initial_units: &[Point],
        radius: f64,
    ) -> Result<Self, StorageError> {
        assert!(radius > 0.0);
        Ok(PredictiveCtup {
            oracle: Oracle::from_store(store)?,
            tracker: VelocityTracker::new(initial_units),
            space: *store.grid().space(),
            radius,
        })
    }

    /// Ingests one location update (keeps velocity estimates fresh).
    pub fn observe(&mut self, update: LocationUpdate) {
        self.tracker.observe(update);
    }

    /// The velocity tracker.
    pub fn tracker(&self) -> &VelocityTracker {
        &self.tracker
    }

    /// The places predicted to be unsafe `horizon` report-intervals from
    /// now: the exact result of the query evaluated on extrapolated unit
    /// positions. `horizon = 0` queries the present.
    pub fn predict(&self, horizon: f64, mode: QueryMode) -> Vec<TopKEntry> {
        let predicted = self.tracker.predicted_positions(horizon, &self.space);
        self.oracle.result(&predicted, self.radius, mode)
    }

    /// The place set used for prediction.
    pub fn places(&self) -> &[Place] {
        self.oracle.places()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PlaceId;
    use ctup_spatial::Grid;
    use ctup_storage::CellLocalStore;

    fn store() -> CellLocalStore {
        let places = vec![
            Place::point(PlaceId(0), Point::new(0.2, 0.5), 1),
            Place::point(PlaceId(1), Point::new(0.8, 0.5), 1),
        ];
        CellLocalStore::build(Grid::unit_square(10), places)
    }

    #[test]
    fn velocity_is_zero_before_second_report() {
        let tracker = VelocityTracker::new(&[Point::new(0.5, 0.5)]);
        assert_eq!(tracker.velocity(UnitId(0)), (0.0, 0.0));
        assert_eq!(tracker.len(), 1);
    }

    #[test]
    fn velocity_follows_last_displacement() {
        let mut tracker = VelocityTracker::new(&[Point::new(0.5, 0.5)]);
        tracker.observe(LocationUpdate {
            unit: UnitId(0),
            new: Point::new(0.6, 0.5),
        });
        let (vx, vy) = tracker.velocity(UnitId(0));
        assert!((vx - 0.1).abs() < 1e-12);
        assert_eq!(vy, 0.0);
        let space = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let predicted = tracker.predicted_positions(2.0, &space);
        assert!((predicted[0].x - 0.8).abs() < 1e-9);
        // Clamping at the space boundary.
        let far = tracker.predicted_positions(10.0, &space);
        assert_eq!(far[0].x, 1.0);
    }

    #[test]
    fn predicts_future_unsafe_place() {
        let st = store();
        // Unit starts at place 0 and moves towards place 1.
        let mut pred = PredictiveCtup::new(&st, &[Point::new(0.2, 0.5)], 0.1).expect("init");
        pred.observe(LocationUpdate {
            unit: UnitId(0),
            new: Point::new(0.35, 0.5),
        });
        // Now: neither place protected (unit at 0.35 is 0.15 from place 0).
        let now = pred.predict(0.0, QueryMode::TopK(1));
        assert_eq!(now[0].safety, -1);
        // In three more reports the unit reaches 0.8: place 1 protected,
        // place 0 is the predicted unsafe one.
        let future = pred.predict(3.0, QueryMode::TopK(2));
        assert_eq!(future[0].place, PlaceId(0));
        assert_eq!(future[0].safety, -1);
        assert_eq!(future[1].place, PlaceId(1));
        assert_eq!(future[1].safety, 0);
    }

    #[test]
    fn zero_horizon_matches_current_truth() {
        let st = store();
        let units = vec![Point::new(0.8, 0.5)];
        let pred = PredictiveCtup::new(&st, &units, 0.1).expect("init");
        let got = pred.predict(0.0, QueryMode::TopK(2));
        let oracle = Oracle::from_store(&st).expect("oracle");
        oracle.assert_result_matches(&got, &units, 0.1, QueryMode::TopK(2));
    }
}
