//! Core domain types of the CTUP query.

use ctup_spatial::{Circle, Point};
use serde::{Deserialize, Serialize};

pub use ctup_storage::{PlaceId, PlaceRecord as Place};

/// Safety values are small integers (`AP − RP`), but intermediate lower
/// bounds take sentinel values, hence a wide signed type.
pub type Safety = i64;

/// Lower bound of an empty cell / a cell with no non-maintained places:
/// nothing in it can ever be unsafe.
pub const LB_NONE: Safety = Safety::MAX;

/// Identifier of a protecting unit, dense in `0..|U|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UnitId(pub u32);

impl UnitId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        ctup_spatial::convert::index(self.0)
    }
}

/// A protecting unit: its identifier and last reported location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Unit {
    /// Identifier.
    pub id: UnitId,
    /// Last reported location.
    pub pos: Point,
}

impl Unit {
    /// The unit's protecting region for a given protection range.
    #[inline]
    pub fn region(&self, radius: f64) -> Circle {
        Circle::new(self.pos, radius)
    }
}

/// A location update received by the server: unit `unit` is now at `new`.
/// The previous position is resolved by the server from its unit table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationUpdate {
    /// The reporting unit.
    pub unit: UnitId,
    /// Its new position.
    pub new: Point,
}

/// One entry of the continuously monitored result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopKEntry {
    /// The unsafe place.
    pub place: PlaceId,
    /// Its current safety.
    pub safety: Safety,
}

/// Whether a unit at `unit_pos` with protection range `radius` protects
/// `place` (paper Definition 1; for extended places, the whole extent must
/// lie inside the protecting region — the conservative reading of the
/// future-work extension).
#[inline]
pub fn protects(unit_pos: Point, radius: f64, place: &Place) -> bool {
    match &place.extent {
        None => unit_pos.dist2(place.pos) <= radius * radius,
        Some(extent) => Circle::new(unit_pos, radius).contains_rect(extent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctup_spatial::Rect;

    #[test]
    fn point_place_protection_is_distance_based() {
        let place = Place::point(PlaceId(0), Point::new(0.5, 0.5), 1);
        assert!(protects(Point::new(0.5, 0.58), 0.1, &place));
        assert!(protects(Point::new(0.5, 0.6), 0.1, &place)); // boundary
        assert!(!protects(Point::new(0.5, 0.61), 0.1, &place));
    }

    #[test]
    fn extended_place_needs_full_containment() {
        let extent = Rect::from_coords(0.45, 0.45, 0.55, 0.55);
        let place = Place::extended(PlaceId(0), Point::new(0.5, 0.5), 1, extent);
        // Center within range but a corner sticks out.
        assert!(!protects(Point::new(0.5, 0.52), 0.07, &place));
        // Whole extent within range.
        assert!(protects(Point::new(0.5, 0.5), 0.1, &place));
    }

    #[test]
    fn unit_region() {
        let u = Unit {
            id: UnitId(3),
            pos: Point::new(0.2, 0.3),
        };
        let r = u.region(0.1);
        assert_eq!(r.center, u.pos);
        assert_eq!(r.radius, 0.1);
    }
}
