//! Crash-consistent on-disk persistence for the supervised pipeline.
//!
//! The in-memory checkpoint of [`crate::supervisor::SupervisedPipeline`]
//! survives a worker panic but not a process death. This module makes the
//! restart point durable:
//!
//! * **A/B checkpoint slots** — every periodic checkpoint is written to a
//!   temp file, fsynced, renamed over the *older* of two slot files
//!   (`slot-a.ckpt` / `slot-b.ckpt`), and the directory is fsynced. Each
//!   slot carries an outer header with the format version, a monotonic slot
//!   sequence number, and a CRC32 over the checkpoint body. A crash at any
//!   byte of a slot write therefore leaves the *other* slot untouched and
//!   valid; a torn or bit-flipped slot fails its CRC and is ignored.
//! * **A journaled update tail** — every wire report the ingest gate
//!   accepts is appended (with a per-line CRC32) to the current journal
//!   segment *before* it is applied, so the updates between the newest
//!   durable checkpoint and a crash can be replayed. Segments rotate with
//!   checkpoints (`journal-<slot seq>.wal` starts when slot `<slot seq>` is
//!   written) and segments older than the oldest valid slot are pruned.
//! * **Recovery** — [`DurableState::load`] picks the valid slot with the
//!   highest sequence number and returns every journaled report from the
//!   surviving segments, tolerating a torn final line. Replaying those
//!   reports through the gate restored from the slot is idempotent: the
//!   gate's per-unit sequence numbers reject everything the slot already
//!   covers, so over-replay (e.g. after falling back to the older slot)
//!   converges to the exact pre-crash state.

use crate::checkpoint::{Checkpoint, CheckpointError, FORMAT_VERSION};
use crate::ingest::StampedUpdate;
use crate::types::{LocationUpdate, UnitId};
use ctup_spatial::Point;
use ctup_storage::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

const SLOT_FILES: [&str; 2] = ["slot-a.ckpt", "slot-b.ckpt"];
const SLOT_TMP: &str = "slot.tmp";
const SLOT_MAGIC: &str = "#ctup-slot";
const JOURNAL_PREFIX: &str = "journal-";
const JOURNAL_SUFFIX: &str = ".wal";

/// Handle to a state directory: writes checkpoints into alternating A/B
/// slots and appends accepted wire reports to the current journal segment.
#[derive(Debug)]
pub struct DurableState {
    dir: PathBuf,
    /// Sequence number the *next* checkpoint will be written under.
    next_slot_seq: u64,
    /// Open journal segment; `None` until the first checkpoint creates one.
    journal: Option<File>,
}

impl DurableState {
    /// Opens (creating if necessary) a state directory. The next checkpoint
    /// continues the slot sequence found on disk.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let newest = SLOT_FILES
            .iter()
            .filter_map(|name| read_slot(&dir.join(name)).map(|(seq, _)| seq))
            .max()
            .unwrap_or(0);
        Ok(DurableState {
            dir,
            next_slot_seq: newest + 1,
            journal: None,
        })
    }

    /// The directory this state lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durably writes `checkpoint` into the older slot (write temp, fsync,
    /// rename, fsync directory), starts a fresh journal segment for the
    /// updates that will follow it, and prunes segments no surviving slot
    /// needs.
    pub fn checkpoint(&mut self, checkpoint: &Checkpoint) -> io::Result<()> {
        let seq = self.next_slot_seq;
        let mut body = Vec::new();
        checkpoint.write(&mut body)?;

        let tmp = self.dir.join(SLOT_TMP);
        {
            let mut f = File::create(&tmp)?;
            writeln!(
                f,
                "{SLOT_MAGIC} v{FORMAT_VERSION} {seq} {} {}",
                crc32(&body),
                body.len()
            )?;
            f.write_all(&body)?;
            f.sync_all()?;
        }
        // Alternate slots by sequence parity so consecutive checkpoints
        // never overwrite each other.
        let slot = if seq % 2 == 1 {
            SLOT_FILES[0]
        } else {
            SLOT_FILES[1]
        };
        fs::rename(&tmp, self.dir.join(slot))?;
        sync_dir(&self.dir)?;

        // Rotate the journal: updates after this checkpoint land in the new
        // segment, tagged with the slot they extend.
        let segment = self
            .dir
            .join(format!("{JOURNAL_PREFIX}{seq}{JOURNAL_SUFFIX}"));
        let f = OpenOptions::new().create(true).append(true).open(segment)?;
        f.sync_all()?;
        sync_dir(&self.dir)?;
        self.journal = Some(f);
        self.next_slot_seq = seq + 1;
        self.prune_segments();
        Ok(())
    }

    /// Appends one accepted wire report to the current journal segment and
    /// syncs it — called *before* the report is applied, so a crash between
    /// append and apply replays it on recovery.
    pub fn append(&mut self, report: StampedUpdate) -> io::Result<()> {
        let Some(journal) = self.journal.as_mut() else {
            // No checkpoint has been written yet; the caller writes a base
            // checkpoint at startup, so this is a protocol violation.
            return Err(io::Error::other(
                "journal append before the first checkpoint",
            ));
        };
        let payload = format!(
            "{} {} {} {} {}",
            report.seq, report.ts, report.update.unit.0, report.update.new.x, report.update.new.y
        );
        writeln!(journal, "{payload} {}", crc32(payload.as_bytes()))?;
        journal.sync_data()
    }

    /// Deletes journal segments older than the oldest valid slot: no
    /// recovery path can need them. Best-effort; a leftover segment is
    /// harmless (replay through the gate is idempotent).
    fn prune_segments(&self) {
        let valid: Vec<u64> = SLOT_FILES
            .iter()
            .filter_map(|name| read_slot(&self.dir.join(name)).map(|(seq, _)| seq))
            .collect();
        let Some(&keep_from) = valid.iter().min() else {
            return;
        };
        for (seq, path) in journal_segments(&self.dir) {
            if seq < keep_from {
                let _ = fs::remove_file(path);
            }
        }
    }

    /// Simulates a torn slot write (for crash testing): truncates the file
    /// of the newest valid slot to half its length, leaving the older slot
    /// as the only recovery point.
    pub fn tear_newest_slot(&self) -> io::Result<()> {
        let newest = SLOT_FILES
            .iter()
            .filter_map(|name| {
                let path = self.dir.join(name);
                read_slot(&path).map(|(seq, _)| (seq, path))
            })
            .max_by_key(|(seq, _)| *seq);
        let Some((_, path)) = newest else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no valid slot to tear",
            ));
        };
        let f = OpenOptions::new().write(true).open(&path)?;
        let len = f.metadata()?.len();
        f.set_len(len / 2)?;
        f.sync_all()
    }

    /// Loads the newest valid checkpoint slot and the journaled wire
    /// reports from every surviving segment, in append order. Fails only if
    /// *no* slot is valid; torn journal tails are tolerated (the journal is
    /// truncated at the first undecodable line of each segment).
    pub fn load(
        dir: impl AsRef<Path>,
    ) -> Result<(Checkpoint, Vec<StampedUpdate>), CheckpointError> {
        let dir = dir.as_ref();
        let newest = SLOT_FILES
            .iter()
            .filter_map(|name| read_slot(&dir.join(name)))
            .max_by_key(|(seq, _)| *seq);
        let Some((_, checkpoint)) = newest else {
            return Err(CheckpointError::Invalid(format!(
                "no valid checkpoint slot in {}",
                dir.display()
            )));
        };
        let mut reports = Vec::new();
        for (_, path) in journal_segments(dir) {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            for line in text.lines() {
                match parse_journal_line(line) {
                    Some(report) => reports.push(report),
                    // A bad line means the tail of this segment was torn
                    // mid-append: everything after it was never applied.
                    None => break,
                }
            }
        }
        Ok((checkpoint, reports))
    }
}

/// Fsyncs a directory so a completed rename survives power loss. Directory
/// handles cannot be opened for syncing on every platform; failures there
/// degrade to rename-without-dir-sync, which every tier-1 platform already
/// orders correctly.
fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all().or(Ok(())),
        Err(_) => Ok(()),
    }
}

/// Reads and validates one slot file: header, version, CRC, body. Any
/// failure (missing file, torn write, corruption, parse error) makes the
/// slot invalid — `None` — and recovery falls back to the other slot.
fn read_slot(path: &Path) -> Option<(u64, Checkpoint)> {
    let mut bytes = Vec::new();
    File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    let newline = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..newline]).ok()?;
    let fields: Vec<&str> = header.split_ascii_whitespace().collect();
    let [magic, version, seq, crc, len] = fields.as_slice() else {
        return None;
    };
    if *magic != SLOT_MAGIC || *version != format!("v{FORMAT_VERSION}") {
        return None;
    }
    let seq: u64 = seq.parse().ok()?;
    let crc: u32 = crc.parse().ok()?;
    let len: usize = len.parse().ok()?;
    let body = &bytes[newline + 1..];
    if body.len() != len || crc32(body) != crc {
        return None;
    }
    let checkpoint = Checkpoint::read(body).ok()?;
    Some((seq, checkpoint))
}

/// The journal segments of `dir`, sorted by slot sequence (append order).
fn journal_segments(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut segments: Vec<(u64, PathBuf)> = fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name();
            let name = name.to_str()?;
            let seq: u64 = name
                .strip_prefix(JOURNAL_PREFIX)?
                .strip_suffix(JOURNAL_SUFFIX)?
                .parse()
                .ok()?;
            Some((seq, entry.path()))
        })
        .collect();
    segments.sort_unstable_by_key(|(seq, _)| *seq);
    segments
}

/// Decodes one journal line, `None` on any structural or CRC mismatch.
fn parse_journal_line(line: &str) -> Option<StampedUpdate> {
    let (payload, crc) = line.rsplit_once(' ')?;
    let crc: u32 = crc.parse().ok()?;
    if crc32(payload.as_bytes()) != crc {
        return None;
    }
    let fields: Vec<&str> = payload.split_ascii_whitespace().collect();
    let [seq, ts, unit, x, y] = fields.as_slice() else {
        return None;
    };
    Some(StampedUpdate {
        seq: seq.parse().ok()?,
        ts: ts.parse().ok()?,
        update: LocationUpdate {
            unit: UnitId(unit.parse().ok()?),
            new: Point::new(x.parse().ok()?, y.parse().ok()?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CtupConfig;
    use crate::ingest::{GateState, GateUnitState};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_state_dir() -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ctup-durable-{}-{n}", std::process::id()))
    }

    fn sample_checkpoint(tag: u64) -> Checkpoint {
        Checkpoint {
            config: CtupConfig::with_k(3),
            layout: ctup_spatial::CellLayout::RowMajor,
            unit_positions: vec![Point::new(0.25, 0.5)],
            lower_bounds: vec![0, crate::types::LB_NONE],
            maintained: Vec::new(),
            dechash: Vec::new(),
            gate: Some(GateState {
                now: tag,
                units: vec![GateUnitState {
                    last_seq: Some(tag),
                    last_seen: tag,
                    alive: true,
                }],
            }),
        }
    }

    fn report(seq: u64, x: f64) -> StampedUpdate {
        StampedUpdate {
            seq,
            ts: seq,
            update: LocationUpdate {
                unit: UnitId(0),
                new: Point::new(x, 0.5),
            },
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // touches the real filesystem
    fn slot_and_journal_roundtrip() {
        let dir = temp_state_dir();
        let mut state = DurableState::open(&dir).expect("open");
        state.checkpoint(&sample_checkpoint(1)).expect("checkpoint");
        state.append(report(1, 0.125)).expect("append");
        state.append(report(2, 0.375)).expect("append");

        let (cp, tail) = DurableState::load(&dir).expect("load");
        assert_eq!(cp, sample_checkpoint(1));
        assert_eq!(tail, vec![report(1, 0.125), report(2, 0.375)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // touches the real filesystem
    fn torn_newest_slot_falls_back_to_older() {
        let dir = temp_state_dir();
        let mut state = DurableState::open(&dir).expect("open");
        state.checkpoint(&sample_checkpoint(1)).expect("checkpoint");
        state.append(report(2, 0.25)).expect("append");
        state.checkpoint(&sample_checkpoint(2)).expect("checkpoint");
        state.append(report(3, 0.75)).expect("append");
        state.tear_newest_slot().expect("tear");

        let (cp, tail) = DurableState::load(&dir).expect("load");
        assert_eq!(cp, sample_checkpoint(1), "older slot survives the tear");
        // Both segments survive: the tail re-covers the updates the torn
        // slot had absorbed, and gate replay dedups them.
        assert_eq!(tail, vec![report(2, 0.25), report(3, 0.75)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // touches the real filesystem
    fn torn_journal_tail_is_truncated_not_fatal() {
        let dir = temp_state_dir();
        let mut state = DurableState::open(&dir).expect("open");
        state.checkpoint(&sample_checkpoint(1)).expect("checkpoint");
        state.append(report(1, 0.125)).expect("append");
        state.append(report(2, 0.375)).expect("append");
        // Tear the last line mid-append.
        let segment = dir.join(format!("{JOURNAL_PREFIX}1{JOURNAL_SUFFIX}"));
        let text = fs::read_to_string(&segment).expect("read journal");
        fs::write(&segment, &text[..text.len() - 7]).expect("tear journal");

        let (_, tail) = DurableState::load(&dir).expect("load");
        assert_eq!(tail, vec![report(1, 0.125)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // touches the real filesystem
    fn bit_flip_in_slot_is_detected() {
        let dir = temp_state_dir();
        let mut state = DurableState::open(&dir).expect("open");
        state.checkpoint(&sample_checkpoint(1)).expect("checkpoint");
        let slot = dir.join(SLOT_FILES[0]);
        let mut bytes = fs::read(&slot).expect("read slot");
        let last = bytes.len() - 2;
        bytes[last] ^= 0x40;
        fs::write(&slot, bytes).expect("corrupt slot");

        assert!(
            DurableState::load(&dir).is_err(),
            "a flipped body byte must invalidate the only slot"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // touches the real filesystem
    fn reopen_continues_slot_sequence_and_prunes() {
        let dir = temp_state_dir();
        let mut state = DurableState::open(&dir).expect("open");
        for tag in 1..=3u64 {
            state
                .checkpoint(&sample_checkpoint(tag))
                .expect("checkpoint");
        }
        // Slots now hold seq 2 and 3; segment 1 is pruned.
        assert!(!dir
            .join(format!("{JOURNAL_PREFIX}1{JOURNAL_SUFFIX}"))
            .exists());
        let (cp, _) = DurableState::load(&dir).expect("load");
        assert_eq!(cp, sample_checkpoint(3));

        // A restarted process continues the sequence instead of recycling
        // numbers the old slots still carry.
        let mut reopened = DurableState::open(&dir).expect("reopen");
        reopened
            .checkpoint(&sample_checkpoint(4))
            .expect("checkpoint");
        let (cp, _) = DurableState::load(&dir).expect("load");
        assert_eq!(cp, sample_checkpoint(4));
        let _ = fs::remove_dir_all(&dir);
    }
}
