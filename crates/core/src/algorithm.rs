//! The common interface of all CTUP query processors.

use crate::config::CtupConfig;
use crate::metrics::Metrics;
use crate::types::{LocationUpdate, Safety, TopKEntry, UnitId};
use ctup_obs::LatencySnapshot;
use ctup_spatial::Point;
use ctup_storage::{StorageError, StorageStatsSnapshot};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Costs of the one-time initialization.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InitStats {
    /// Wall-clock time of initialization.
    pub wall: Duration,
    /// Lower-level storage activity during initialization.
    pub storage: StorageStatsSnapshot,
    /// Places whose safety was computed.
    pub safeties_computed: u64,
}

/// Costs of one location update.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Nanoseconds spent maintaining in-memory information (maintained
    /// place safeties and cell lower bounds).
    pub maintain_nanos: u64,
    /// Nanoseconds spent accessing cells at the lower level.
    pub access_nanos: u64,
    /// Cells accessed by this update.
    pub cells_accessed: u64,
    /// Whether the monitored result changed.
    pub result_changed: bool,
}

impl UpdateStats {
    /// Total nanoseconds attributed to this update.
    pub fn total_nanos(&self) -> u64 {
        self.maintain_nanos + self.access_nanos
    }
}

/// A continuous top-k unsafe-places query processor.
///
/// Implementations are constructed over a [`ctup_storage::PlaceStore`] and
/// the initial unit positions, then fed location updates one at a time; the
/// monitored result is available between any two updates.
pub trait CtupAlgorithm {
    /// Short identifier used in benchmark output ("naive", "basic", "opt").
    fn name(&self) -> &'static str;

    /// The configuration the processor runs with.
    fn config(&self) -> &CtupConfig;

    /// Processes one location update. Fails only when the lower storage
    /// level does: a cell read that exhausted its retry budget or hit
    /// detected corruption surfaces here. After an error the processor may
    /// be left mid-update (in-memory structures mutated, cell accesses
    /// incomplete); callers must discard it or restore from a checkpoint —
    /// the supervised pipeline does the latter.
    fn handle_update(&mut self, update: LocationUpdate) -> Result<UpdateStats, StorageError>;

    /// The current monitored result, sorted by `(safety, place id)`: the
    /// top-k unsafe places in top-k mode, every place below the threshold
    /// in threshold mode.
    fn result(&self) -> Vec<TopKEntry>;

    /// The safety of the k-th unsafe place (`SK`); `None` when fewer than
    /// `k` places exist or in threshold mode.
    fn sk(&self) -> Option<Safety>;

    /// Cumulative logical cost counters.
    fn metrics(&self) -> &Metrics;

    /// Initialization costs recorded at construction.
    fn init_stats(&self) -> &InitStats;

    /// The server's view of a unit's position.
    fn unit_position(&self, unit: UnitId) -> Point;

    /// Number of units.
    fn num_units(&self) -> usize;

    /// Latency histograms the algorithm records *internally* — e.g. the
    /// sharded engine's per-shard channels, where the run loop cannot see
    /// the per-shard phase timings. `None` (the default) means the run
    /// loop is responsible for recording per-update latency itself;
    /// `Some` means the caller should merge this into the unified
    /// snapshot instead of recording externally (doing both would count
    /// every update twice).
    fn internal_latency(&self) -> Option<LatencySnapshot> {
        None
    }

    /// Hands the algorithm a causal span sink to record its internal phase
    /// spans into (the sharded engine's per-shard illumination and merge
    /// phases — see [`ctup_obs::span`]). The default ignores it: most
    /// engines have no internal structure worth separate spans, and the
    /// supervisor records aggregate shard-phase/merge spans on their
    /// behalf (see [`CtupAlgorithm::records_spans`]).
    fn attach_span_recorder(&mut self, _spans: std::sync::Arc<ctup_obs::SpanSink>) {}

    /// Arms the trace id the *next* update (or batch) is applied under;
    /// consumed by that update, so stale ids never leak onto later
    /// untraced updates. A no-op unless a recorder is attached.
    fn set_trace_context(&mut self, _trace: u64) {}

    /// Whether this algorithm records its own shard-phase/merge spans via
    /// an attached recorder. When `true` the caller must not also record
    /// aggregate spans for those stages — the deterministic span ids would
    /// collide.
    fn records_spans(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_stats_total() {
        let s = UpdateStats {
            maintain_nanos: 10,
            access_nanos: 32,
            ..Default::default()
        };
        assert_eq!(s.total_nanos(), 42);
    }
}
