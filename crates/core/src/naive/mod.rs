//! The naïve baselines the paper compares against.
//!
//! * [`NaiveRecompute`] — §VI's "Naïve": recompute the safety of **all**
//!   places upon each update and reselect the result.
//! * [`NaiveIncremental`] — the variant §IV alludes to ("the naïve
//!   algorithm which maintains the safeties of all places"): keep a safety
//!   for every place and adjust only the places inside the old/new
//!   protecting regions.

mod incremental;
mod recompute;

pub use incremental::NaiveIncremental;
pub use recompute::NaiveRecompute;
