//! The recompute-everything baseline.

use crate::algorithm::{CtupAlgorithm, InitStats, UpdateStats};
use crate::config::{CtupConfig, QueryMode};
use crate::metrics::Metrics;
use crate::types::{LocationUpdate, Place, Safety, TopKEntry, UnitId};
use crate::units::UnitTable;
use ctup_obs::PhaseTimer;
use ctup_spatial::{convert, Point};
use ctup_storage::{PlaceStore, StorageError};
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// The paper's naïve scheme: upon every location update, recompute the
/// safety of every place and reselect the result.
///
/// Initialization is the cheapest of all schemes (one pass, no auxiliary
/// structures — Fig. 3), updates are by far the most expensive (Fig. 4).
/// Places are read from the lower level exactly once, at construction; the
/// per-update cost is the full recomputation.
pub struct NaiveRecompute {
    config: CtupConfig,
    places: Vec<Place>,
    units: UnitTable,
    result: Vec<TopKEntry>,
    metrics: Metrics,
    init_stats: InitStats,
}

impl std::fmt::Debug for NaiveRecompute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NaiveRecompute")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl NaiveRecompute {
    /// Builds the baseline over `store` with units at `initial_units`.
    /// Fails if the one-time bulk load hits a storage fault.
    pub fn new(
        config: CtupConfig,
        store: Arc<dyn PlaceStore>,
        initial_units: &[Point],
    ) -> Result<Self, StorageError> {
        config.validate();
        let start = Instant::now();
        let io_before = store.stats().snapshot();
        let grid = store.grid().clone();
        let mut places = Vec::with_capacity(store.num_places());
        for cell in grid.cells() {
            places.extend(store.read_cell(cell)?.iter().cloned());
        }
        let units = UnitTable::new(grid, initial_units, config.protection_radius);
        let mut this = NaiveRecompute {
            config,
            places,
            units,
            result: Vec::new(),
            metrics: Metrics::default(),
            init_stats: InitStats::default(),
        };
        this.recompute();
        this.init_stats = InitStats {
            wall: start.elapsed(),
            storage: store.stats().snapshot().since(&io_before),
            safeties_computed: convert::count64(this.places.len()),
        };
        Ok(this)
    }

    /// Recomputes every place's safety and the result set.
    fn recompute(&mut self) {
        self.result = match self.config.mode {
            QueryMode::TopK(k) => {
                // Bounded max-heap of the k smallest (safety, id) pairs.
                let mut heap: BinaryHeap<(Safety, crate::types::PlaceId)> =
                    BinaryHeap::with_capacity(k + 1);
                for place in &self.places {
                    let key = (self.units.safety(place), place.id);
                    if heap.len() < k {
                        heap.push(key);
                    } else if let Some(&worst) = heap.peek() {
                        if key < worst {
                            heap.pop();
                            heap.push(key);
                        }
                    }
                }
                let mut entries: Vec<TopKEntry> = heap
                    .into_iter()
                    .map(|(safety, place)| TopKEntry { place, safety })
                    .collect();
                entries.sort_by_key(|e| (e.safety, e.place));
                entries
            }
            QueryMode::Threshold(tau) => {
                let mut entries: Vec<TopKEntry> = self
                    .places
                    .iter()
                    .filter_map(|place| {
                        let safety = self.units.safety(place);
                        (safety < tau).then_some(TopKEntry {
                            place: place.id,
                            safety,
                        })
                    })
                    .collect();
                entries.sort_by_key(|e| (e.safety, e.place));
                entries
            }
        };
    }
}

impl CtupAlgorithm for NaiveRecompute {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn config(&self) -> &CtupConfig {
        &self.config
    }

    fn handle_update(&mut self, update: LocationUpdate) -> Result<UpdateStats, StorageError> {
        let mut timer = PhaseTimer::start();
        let before = std::mem::take(&mut self.result);
        self.units.apply(update);
        self.recompute();
        let changed = before != self.result;

        let nanos = timer.lap();
        self.metrics.updates_processed += 1;
        self.metrics.maintain_nanos += nanos;
        if changed {
            self.metrics.result_changes += 1;
        }
        Ok(UpdateStats {
            maintain_nanos: nanos,
            access_nanos: 0,
            cells_accessed: 0,
            result_changed: changed,
        })
    }

    fn result(&self) -> Vec<TopKEntry> {
        self.result.clone()
    }

    fn sk(&self) -> Option<Safety> {
        match self.config.mode {
            QueryMode::TopK(k) if self.result.len() == k => self.result.last().map(|e| e.safety),
            _ => None,
        }
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn init_stats(&self) -> &InitStats {
        &self.init_stats
    }

    fn unit_position(&self, unit: UnitId) -> Point {
        self.units.position(unit)
    }

    fn num_units(&self) -> usize {
        self.units.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use crate::types::PlaceId;
    use ctup_spatial::Grid;
    use ctup_storage::CellLocalStore;

    fn small_setup() -> (Arc<dyn PlaceStore>, Vec<Point>) {
        let places = vec![
            Place::point(PlaceId(0), Point::new(0.15, 0.15), 2),
            Place::point(PlaceId(1), Point::new(0.5, 0.5), 1),
            Place::point(PlaceId(2), Point::new(0.85, 0.85), 4),
            Place::point(PlaceId(3), Point::new(0.5, 0.52), 3),
        ];
        let store = CellLocalStore::build(Grid::unit_square(4), places);
        let units = vec![Point::new(0.5, 0.5), Point::new(0.2, 0.2)];
        (Arc::new(store), units)
    }

    #[test]
    fn initial_result_matches_oracle() {
        let (store, units) = small_setup();
        let alg = NaiveRecompute::new(CtupConfig::with_k(2), store.clone(), &units).expect("init");
        let oracle = Oracle::from_store(store.as_ref()).expect("oracle");
        oracle.assert_result_matches(&alg.result(), &units, 0.1, QueryMode::TopK(2));
        assert_eq!(alg.init_stats().storage.cell_reads, 16);
        assert_eq!(alg.init_stats().safeties_computed, 4);
    }

    #[test]
    fn updates_track_oracle() {
        let (store, mut units) = small_setup();
        let mut alg =
            NaiveRecompute::new(CtupConfig::with_k(2), store.clone(), &units).expect("init");
        let oracle = Oracle::from_store(store.as_ref()).expect("oracle");
        let moves = [
            (0u32, Point::new(0.85, 0.85)),
            (1u32, Point::new(0.5, 0.55)),
            (0u32, Point::new(0.1, 0.1)),
        ];
        for (unit, new) in moves {
            let stats = alg
                .handle_update(LocationUpdate {
                    unit: UnitId(unit),
                    new,
                })
                .expect("update");
            units[unit as usize] = new;
            oracle.assert_result_matches(&alg.result(), &units, 0.1, QueryMode::TopK(2));
            assert_eq!(stats.cells_accessed, 0);
        }
        assert_eq!(alg.metrics().updates_processed, 3);
    }

    #[test]
    fn threshold_mode_reports_all_below() {
        let (store, units) = small_setup();
        let config = CtupConfig {
            mode: QueryMode::Threshold(0),
            ..CtupConfig::paper_default()
        };
        let alg = NaiveRecompute::new(config, store.clone(), &units).expect("init");
        let oracle = Oracle::from_store(store.as_ref()).expect("oracle");
        oracle.assert_result_matches(&alg.result(), &units, 0.1, QueryMode::Threshold(0));
        assert!(alg.sk().is_none());
    }

    #[test]
    fn sk_is_kth_entry() {
        let (store, units) = small_setup();
        let alg = NaiveRecompute::new(CtupConfig::with_k(2), store, &units).expect("init");
        let result = alg.result();
        assert_eq!(alg.sk(), Some(result[1].safety));
    }
}
