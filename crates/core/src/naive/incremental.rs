//! The maintain-everything baseline.

use crate::algorithm::{CtupAlgorithm, InitStats, UpdateStats};
use crate::config::{CtupConfig, QueryMode};
use crate::metrics::Metrics;
use crate::topk::SafetyOrdered;
use crate::types::{protects, LocationUpdate, Place, Safety, TopKEntry, UnitId};
use crate::units::UnitTable;
use ctup_obs::PhaseTimer;
use ctup_spatial::{convert, Circle, Grid, Point};
use ctup_storage::{PlaceStore, StorageError};
use std::sync::Arc;
use std::time::Instant;

/// The "maintain the safeties of all places" baseline (§IV of the paper):
/// a materialized safety per place plus a global ordered view. An update
/// touches only the places inside the unit's old and new protecting
/// regions, found through a static per-cell place index.
///
/// This is what reducing CTUP to a materialized top-k view over a base
/// table (Yi et al.) would cost at best: no cell accesses, but `|P|`
/// materialized safeties and an ordered structure over all of them.
pub struct NaiveIncremental {
    config: CtupConfig,
    grid: Grid,
    places: Vec<Place>,
    safeties: Vec<Safety>,
    /// Indices into `places`, bucketed by grid cell of the place position.
    by_cell: Vec<Vec<u32>>,
    ordered: SafetyOrdered,
    units: UnitTable,
    last_result: Vec<TopKEntry>,
    metrics: Metrics,
    init_stats: InitStats,
}

impl std::fmt::Debug for NaiveIncremental {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NaiveIncremental")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl NaiveIncremental {
    /// Builds the baseline over `store` with units at `initial_units`.
    /// Fails if the one-time bulk load hits a storage fault.
    pub fn new(
        config: CtupConfig,
        store: Arc<dyn PlaceStore>,
        initial_units: &[Point],
    ) -> Result<Self, StorageError> {
        config.validate();
        let start = Instant::now();
        let io_before = store.stats().snapshot();
        let grid = store.grid().clone();
        let units = UnitTable::new(grid.clone(), initial_units, config.protection_radius);

        let mut places = Vec::with_capacity(store.num_places());
        let mut by_cell = vec![Vec::new(); grid.num_cells()];
        for cell in grid.cells() {
            for place in store.read_cell(cell)?.iter() {
                by_cell[cell.index()].push(convert::id32(places.len()));
                places.push(place.clone());
            }
        }
        let mut ordered = SafetyOrdered::new();
        let mut safeties = Vec::with_capacity(places.len());
        for place in &places {
            let s = units.safety(place);
            ordered.insert(place.id, s);
            safeties.push(s);
        }

        let mut this = NaiveIncremental {
            config,
            grid,
            places,
            safeties,
            by_cell,
            ordered,
            units,
            last_result: Vec::new(),
            metrics: Metrics::default(),
            init_stats: InitStats::default(),
        };
        this.last_result = this.current_result();
        this.metrics
            .set_maintained(convert::count64(this.places.len()));
        this.init_stats = InitStats {
            wall: start.elapsed(),
            storage: store.stats().snapshot().since(&io_before),
            safeties_computed: convert::count64(this.places.len()),
        };
        Ok(this)
    }

    fn current_result(&self) -> Vec<TopKEntry> {
        match self.config.mode {
            QueryMode::TopK(k) => self.ordered.top_k(k),
            QueryMode::Threshold(tau) => self.ordered.below(tau),
        }
    }

    /// Applies the ±1 safety adjustments caused by a unit moving
    /// `old -> new` to every place in the affected cells.
    fn adjust_affected(&mut self, old: Point, new: Point) {
        let radius = self.config.protection_radius;
        let old_region = Circle::new(old, radius);
        let new_region = Circle::new(new, radius);
        let mut cells: Vec<_> = self
            .grid
            .cells_overlapping_circle(&old_region)
            .chain(self.grid.cells_overlapping_circle(&new_region))
            .collect();
        cells.sort_unstable();
        cells.dedup();
        for cell in cells {
            for &idx in &self.by_cell[cell.index()] {
                let idx = convert::index(idx);
                let place = &self.places[idx];
                let was = protects(old, radius, place);
                let is = protects(new, radius, place);
                if was != is {
                    let delta: Safety = if is { 1 } else { -1 };
                    let fresh = self.safeties[idx] + delta;
                    self.ordered.update(place.id, self.safeties[idx], fresh);
                    self.safeties[idx] = fresh;
                }
            }
        }
    }
}

impl CtupAlgorithm for NaiveIncremental {
    fn name(&self) -> &'static str {
        "naive-inc"
    }

    fn config(&self) -> &CtupConfig {
        &self.config
    }

    fn handle_update(&mut self, update: LocationUpdate) -> Result<UpdateStats, StorageError> {
        let mut timer = PhaseTimer::start();
        let old = self.units.apply(update);
        self.adjust_affected(old, update.new);
        let result = self.current_result();
        let changed = result != self.last_result;
        self.last_result = result;

        let nanos = timer.lap();
        self.metrics.updates_processed += 1;
        self.metrics.maintain_nanos += nanos;
        if changed {
            self.metrics.result_changes += 1;
        }
        Ok(UpdateStats {
            maintain_nanos: nanos,
            access_nanos: 0,
            cells_accessed: 0,
            result_changed: changed,
        })
    }

    fn result(&self) -> Vec<TopKEntry> {
        self.last_result.clone()
    }

    fn sk(&self) -> Option<Safety> {
        match self.config.mode {
            QueryMode::TopK(k) => self.ordered.kth_safety(k),
            QueryMode::Threshold(_) => None,
        }
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn init_stats(&self) -> &InitStats {
        &self.init_stats
    }

    fn unit_position(&self, unit: UnitId) -> Point {
        self.units.position(unit)
    }

    fn num_units(&self) -> usize {
        self.units.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use crate::types::PlaceId;
    use ctup_storage::CellLocalStore;

    fn setup(k: usize) -> (NaiveIncremental, Arc<dyn PlaceStore>, Vec<Point>) {
        let places = vec![
            Place::point(PlaceId(0), Point::new(0.15, 0.15), 2),
            Place::point(PlaceId(1), Point::new(0.5, 0.5), 1),
            Place::point(PlaceId(2), Point::new(0.85, 0.85), 4),
            Place::point(PlaceId(3), Point::new(0.5, 0.52), 3),
            Place::point(PlaceId(4), Point::new(0.45, 0.5), 1),
        ];
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(4), places));
        let units = vec![Point::new(0.5, 0.5), Point::new(0.2, 0.2)];
        let alg =
            NaiveIncremental::new(CtupConfig::with_k(k), store.clone(), &units).expect("init");
        (alg, store, units)
    }

    #[test]
    fn matches_oracle_through_update_sequence() {
        let (mut alg, store, mut units) = setup(3);
        let oracle = Oracle::from_store(store.as_ref()).expect("oracle");
        oracle.assert_result_matches(&alg.result(), &units, 0.1, QueryMode::TopK(3));
        let moves = [
            (0u32, Point::new(0.84, 0.86)),
            (1u32, Point::new(0.52, 0.5)),
            (1u32, Point::new(0.14, 0.16)),
            (0u32, Point::new(0.5, 0.51)),
            (0u32, Point::new(0.51, 0.51)),
        ];
        for (unit, new) in moves {
            alg.handle_update(LocationUpdate {
                unit: UnitId(unit),
                new,
            })
            .expect("update");
            units[unit as usize] = new;
            oracle.assert_result_matches(&alg.result(), &units, 0.1, QueryMode::TopK(3));
        }
    }

    #[test]
    fn agrees_with_recompute_baseline() {
        let (mut inc, store, units) = setup(2);
        let mut rec = NaiveRecompute::new(CtupConfig::with_k(2), store, &units).expect("init");
        for i in 0..20u32 {
            let update = LocationUpdate {
                unit: UnitId(i % 2),
                new: Point::new(
                    0.05 + (i as f64 * 0.137) % 0.9,
                    0.05 + (i as f64 * 0.071) % 0.9,
                ),
            };
            inc.handle_update(update).expect("update");
            rec.handle_update(update).expect("update");
            let inc_safeties: Vec<Safety> = inc.result().iter().map(|e| e.safety).collect();
            let rec_safeties: Vec<Safety> = rec.result().iter().map(|e| e.safety).collect();
            assert_eq!(inc_safeties, rec_safeties, "diverged at update {i}");
        }
    }

    use crate::naive::NaiveRecompute;

    #[test]
    fn maintains_all_places() {
        let (alg, _, _) = setup(2);
        assert_eq!(alg.metrics().maintained_now, 5);
    }
}
