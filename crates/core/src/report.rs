//! The unified observability snapshot and its exposition renderers.
//!
//! Everything the pipeline measures — the algorithmic [`Metrics`], the
//! lower-level [`StorageStatsSnapshot`], and the latency histograms of a
//! [`LatencySnapshot`] — is folded into one [`Snapshot`] and rendered in
//! three formats:
//!
//! * [`Snapshot::render_text`] — the human-readable report printed by the
//!   CLI after every run;
//! * [`Snapshot::render_json`] — a machine-readable document for bench
//!   artifacts and scripted comparisons;
//! * [`Snapshot::render_prom`] — Prometheus text exposition (format 0.0.4)
//!   served by `ctup serve-metrics` and scraped from `/metrics`.
//!
//! Every counter and gauge is enumerated *explicitly* in
//! [`Snapshot::counters`] / [`Snapshot::gauges`]; the `cargo xtask lint`
//! metrics-coverage rule (L004) checks the field names of the source
//! structs against this file, so a counter added to [`Metrics`] or
//! [`StorageStatsSnapshot`] without a line here fails the lint instead of
//! silently vanishing from the exposition.

use crate::metrics::Metrics;
use crate::net::stats::NetStatsSnapshot;
use ctup_obs::json::ObjectWriter;
use ctup_obs::{summarize, LatencySnapshot, LogHistogram};
use ctup_storage::StorageStatsSnapshot;

/// Crate version baked into the binary at compile time.
pub const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Git commit the binary was built from. CI stamps it by exporting
/// `CTUP_GIT_SHA` at build time; local builds report `unknown`.
pub const BUILD_GIT_SHA: &str = match option_env!("CTUP_GIT_SHA") {
    Some(sha) => sha,
    None => "unknown",
};

/// `version+git_sha` build identifier, exposed as the `build` field of
/// `/healthz` and the `ctup_build_info` Prometheus gauge.
pub fn build_info() -> String {
    format!("{BUILD_VERSION}+{BUILD_GIT_SHA}")
}

/// One coherent view of everything measured during a run: identity,
/// counters, gauges and latency distributions.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Which algorithm produced the numbers (`naive`, `naive-inc`,
    /// `basic`, `opt`); becomes the `algorithm` label of every Prometheus
    /// series.
    pub algorithm: String,
    /// The algorithm's cumulative logical counters, including the
    /// resilience layer's.
    pub metrics: Metrics,
    /// Lower-level storage counters.
    pub storage: StorageStatsSnapshot,
    /// Latency histograms (update phases, checkpoint writes, disk reads).
    pub latency: LatencySnapshot,
    /// Networked-ingest front door counters (all zero for local runs that
    /// never opened the door).
    pub net: NetStatsSnapshot,
}

impl Snapshot {
    /// Assembles a snapshot from its parts.
    pub fn new(
        algorithm: impl Into<String>,
        metrics: Metrics,
        storage: StorageStatsSnapshot,
        latency: LatencySnapshot,
    ) -> Self {
        Snapshot {
            algorithm: algorithm.into(),
            metrics,
            storage,
            latency,
            net: NetStatsSnapshot::default(),
        }
    }

    /// Attaches the networked-ingest counters of a served run.
    #[must_use]
    pub fn with_net(mut self, net: NetStatsSnapshot) -> Self {
        self.net = net;
        self
    }

    /// Every monotonically increasing counter, as `(name, value)` pairs.
    /// Names are namespaced (`resilience_*`, `storage_*`) so the flat list
    /// is collision-free.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let m = &self.metrics;
        let r = &m.resilience;
        let s = &self.storage;
        let n = &self.net;
        vec![
            ("updates_processed", m.updates_processed),
            ("cells_accessed", m.cells_accessed),
            ("places_loaded", m.places_loaded),
            ("lb_increments", m.lb_increments),
            ("lb_decrements", m.lb_decrements),
            ("lb_decrements_suppressed", m.lb_decrements_suppressed),
            ("cells_darkened", m.cells_darkened),
            ("maintain_nanos", m.maintain_nanos),
            ("access_nanos", m.access_nanos),
            ("result_changes", m.result_changes),
            ("resilience_rejected_non_finite", r.rejected_non_finite),
            ("resilience_rejected_out_of_space", r.rejected_out_of_space),
            ("resilience_rejected_unknown_unit", r.rejected_unknown_unit),
            ("resilience_stale_dropped", r.stale_dropped),
            ("resilience_duplicates_dropped", r.duplicates_dropped),
            ("resilience_lease_expiries", r.lease_expiries),
            ("resilience_lease_reinstates", r.lease_reinstates),
            ("resilience_worker_panics", r.worker_panics),
            ("resilience_worker_restarts", r.worker_restarts),
            ("resilience_updates_replayed", r.updates_replayed),
            ("resilience_checkpoints_taken", r.checkpoints_taken),
            ("resilience_events_suppressed", r.events_suppressed),
            ("resilience_storage_errors", r.storage_errors),
            ("storage_cell_reads", s.cell_reads),
            ("storage_records_read", s.records_read),
            ("storage_pages_read", s.pages_read),
            ("storage_io_nanos", s.io_nanos),
            ("storage_read_retries", s.read_retries),
            ("storage_read_giveups", s.read_giveups),
            ("storage_corrupt_pages", s.corrupt_pages),
            ("storage_cache_hits", s.cache_hits),
            ("storage_cache_misses", s.cache_misses),
            ("storage_cache_evictions", s.cache_evictions),
            ("storage_cache_prefetch_hits", s.cache_prefetch_hits),
            ("net_connections_accepted", n.connections_accepted),
            ("net_connections_rejected", n.connections_rejected),
            ("net_sessions_opened", n.sessions_opened),
            ("net_sessions_resumed", n.sessions_resumed),
            ("net_sessions_evicted", n.sessions_evicted),
            ("net_frames_received", n.frames_received),
            ("net_frames_malformed", n.frames_malformed),
            ("net_partial_disconnects", n.partial_disconnects),
            ("net_reports_accepted", n.reports_accepted),
            ("net_replays_suppressed", n.replays_suppressed),
            ("net_shed_queue_full", n.shed_queue_full),
            ("net_shed_deadline_exceeded", n.shed_deadline_exceeded),
            ("net_shed_session_quota", n.shed_session_quota),
            ("net_shed_engine_degraded", n.shed_engine_degraded),
            ("net_shed_total", n.shed_total()),
            ("net_degraded_entries", n.degraded_entries),
            ("net_snapshots_pushed", n.snapshots_pushed),
            ("net_engine_restarts", n.engine_restarts),
            ("net_failovers", n.failovers),
            ("net_spans_dropped", n.spans_dropped),
            ("net_traces_sampled", n.traces_sampled),
        ]
    }

    /// Fraction of cell reads served by the cell-read cache, in `[0, 1]`
    /// (zero when no cache is configured). Derived from the cache counters,
    /// so it is exposed as a float alongside them in every format.
    pub fn cache_hit_ratio(&self) -> f64 {
        self.storage.cache_hit_ratio()
    }

    /// Every gauge (a value that can go down), as `(name, value)` pairs.
    pub fn gauges(&self) -> Vec<(&'static str, u64)> {
        let m = &self.metrics;
        let n = &self.net;
        vec![
            ("maintained_now", m.maintained_now),
            ("maintained_peak", m.maintained_peak),
            ("dechash_len", m.dechash_len),
            ("net_queue_depth", n.queue_depth),
            ("net_sessions_active", n.sessions_active),
            ("net_degraded", u64::from(n.degraded)),
            ("net_degraded_since_ms", n.degraded_since_ms),
            ("net_epoch", n.epoch),
            ("net_exemplars", n.exemplars),
        ]
    }

    /// The latency histograms plus the front door's ingest-wait
    /// distribution, as `(name, histogram)` pairs.
    pub fn histograms(&self) -> Vec<(&'static str, &LogHistogram)> {
        let mut named: Vec<(&'static str, &LogHistogram)> = self.latency.named().to_vec();
        named.push(("net_ingest_wait_nanos", &self.net.ingest_wait_nanos));
        named
    }

    /// Human-readable multi-line report: one `name: value` line per
    /// counter and gauge, then one quantile summary line per non-empty
    /// histogram.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("algorithm: ");
        out.push_str(&self.algorithm);
        out.push('\n');
        for (name, value) in self.counters() {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, value) in self.gauges() {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out.push_str("cache_hit_ratio: ");
        out.push_str(&format_ratio(self.cache_hit_ratio()));
        out.push('\n');
        for (name, hist) in self.histograms() {
            if hist.is_empty() {
                continue;
            }
            out.push_str(name);
            out.push_str(": ");
            out.push_str(&summarize(hist));
            out.push('\n');
        }
        out
    }

    /// JSON document with `algorithm`, a `counters` object, a `gauges`
    /// object, and a `histograms` object carrying both the headline
    /// quantiles and the exact compact encoding of each histogram.
    pub fn render_json(&self) -> String {
        let mut root = ObjectWriter::new();
        root.field_str("algorithm", &self.algorithm);

        let mut counters = ObjectWriter::new();
        for (name, value) in self.counters() {
            counters.field_u64(name, value);
        }
        root.field_raw("counters", &counters.finish());

        let mut gauges = ObjectWriter::new();
        for (name, value) in self.gauges() {
            gauges.field_u64(name, value);
        }
        gauges.field_raw("cache_hit_ratio", &format_ratio(self.cache_hit_ratio()));
        root.field_raw("gauges", &gauges.finish());

        let mut hists = ObjectWriter::new();
        for (name, hist) in self.histograms() {
            let mut h = ObjectWriter::new();
            h.field_u64("count", hist.count());
            h.field_u64("sum", hist.sum());
            h.field_u64("min", hist.min());
            h.field_u64("max", hist.max());
            h.field_u64("mean", hist.mean());
            h.field_u64("p50", hist.quantile(0.50));
            h.field_u64("p90", hist.quantile(0.90));
            h.field_u64("p99", hist.quantile(0.99));
            h.field_u64("p999", hist.quantile(0.999));
            h.field_str("encoded", &hist.encode());
            // Exemplar trace ids for the front door's wait histogram:
            // jump from a slow bucket straight to `ctup trace <id>`.
            if name == "net_ingest_wait_nanos" && !self.net.ingest_wait_exemplars.is_empty() {
                let mut items = String::from("[");
                for (i, e) in self.net.ingest_wait_exemplars.iter().enumerate() {
                    if i > 0 {
                        items.push(',');
                    }
                    let mut ex = ObjectWriter::new();
                    ex.field_u64("bucket", u64::from(e.bucket))
                        .field_u64("wait_nanos", e.wait_nanos)
                        .field_u64("trace", e.trace);
                    items.push_str(&ex.finish());
                }
                items.push(']');
                h.field_raw("exemplars", &items);
            }
            hists.field_raw(name, &h.finish());
        }
        root.field_raw("histograms", &hists.finish());
        root.finish()
    }

    /// Prometheus text exposition (format 0.0.4): one `ctup_<name>` series
    /// per counter/gauge labelled with the algorithm, and one classic
    /// cumulative histogram (`_bucket{le=...}` / `_sum` / `_count`) per
    /// latency distribution.
    pub fn render_prom(&self) -> String {
        let label = format!("{{algorithm=\"{}\"}}", escape_label(&self.algorithm));
        let mut out = String::with_capacity(8192);
        for (name, value) in self.counters() {
            render_prom_scalar(&mut out, name, "counter", &label, value);
        }
        for (name, value) in self.gauges() {
            render_prom_scalar(&mut out, name, "gauge", &label, value);
        }
        out.push_str("# TYPE ctup_cache_hit_ratio gauge\n");
        out.push_str("ctup_cache_hit_ratio");
        out.push_str(&label);
        out.push(' ');
        out.push_str(&format_ratio(self.cache_hit_ratio()));
        out.push('\n');
        // Build identity: constant 1 with the version/sha as labels, the
        // conventional Prometheus shape for build metadata.
        out.push_str("# TYPE ctup_build_info gauge\n");
        out.push_str("ctup_build_info{version=\"");
        out.push_str(&escape_label(BUILD_VERSION));
        out.push_str("\",git_sha=\"");
        out.push_str(&escape_label(BUILD_GIT_SHA));
        out.push_str("\"} 1\n");
        for (name, hist) in self.histograms() {
            render_prom_histogram(&mut out, name, &escape_label(&self.algorithm), hist);
        }
        out
    }
}

/// Renders a `[0, 1]` ratio with fixed precision, so the derived
/// `cache_hit_ratio` line is stable across platforms and a valid JSON
/// number (never `NaN`/`inf` — the ratio is 0 when nothing was consulted).
fn format_ratio(ratio: f64) -> String {
    format!("{ratio:.6}")
}

/// Escapes a Prometheus label value (backslash, double quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn render_prom_scalar(out: &mut String, name: &str, kind: &str, label: &str, value: u64) {
    out.push_str("# TYPE ctup_");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
    out.push_str("ctup_");
    out.push_str(name);
    out.push_str(label);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Renders one histogram in the classic Prometheus shape: cumulative
/// `_bucket` series over the non-empty buckets (upper bounds in nanoseconds
/// from [`ctup_obs::hist::bucket_high`]), a `+Inf` bucket equal to the
/// count, and `_sum` / `_count` series.
fn render_prom_histogram(out: &mut String, name: &str, algorithm: &str, hist: &LogHistogram) {
    out.push_str("# TYPE ctup_");
    out.push_str(name);
    out.push_str(" histogram\n");
    let mut cumulative = 0u64;
    let mut emitted_inf = false;
    for (idx, count) in hist.nonzero_buckets() {
        cumulative += count;
        let high = ctup_obs::hist::bucket_high(idx);
        out.push_str("ctup_");
        out.push_str(name);
        out.push_str("_bucket{algorithm=\"");
        out.push_str(algorithm);
        out.push_str("\",le=\"");
        // The last bucket's upper bound is unbounded; expose it as the
        // +Inf bucket rather than printing u64::MAX as a finite bound.
        if high == u64::MAX {
            out.push_str("+Inf");
            emitted_inf = true;
        } else {
            out.push_str(&high.to_string());
        }
        out.push_str("\"} ");
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    if !emitted_inf {
        // Always close with the mandatory +Inf bucket (== total count).
        out.push_str("ctup_");
        out.push_str(name);
        out.push_str("_bucket{algorithm=\"");
        out.push_str(algorithm);
        out.push_str("\",le=\"+Inf\"} ");
        out.push_str(&hist.count().to_string());
        out.push('\n');
    }
    out.push_str("ctup_");
    out.push_str(name);
    out.push_str("_sum{algorithm=\"");
    out.push_str(algorithm);
    out.push_str("\"} ");
    out.push_str(&hist.sum().to_string());
    out.push('\n');
    out.push_str("ctup_");
    out.push_str(name);
    out.push_str("_count{algorithm=\"");
    out.push_str(algorithm);
    out.push_str("\"} ");
    out.push_str(&hist.count().to_string());
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut latency = LatencySnapshot::default();
        for v in [100u64, 250, 900, 40_000] {
            latency.update_total_nanos.record(v);
        }
        latency.disk_read_nanos.record(5_000);
        Snapshot::new(
            "opt",
            Metrics {
                updates_processed: 42,
                maintained_now: 7,
                ..Metrics::default()
            },
            StorageStatsSnapshot {
                cell_reads: 9,
                cache_hits: 3,
                cache_misses: 9,
                ..StorageStatsSnapshot::default()
            },
            latency,
        )
    }

    #[test]
    fn counters_and_gauges_are_disjoint_and_complete() {
        let snap = sample();
        let mut names: Vec<&str> = snap
            .counters()
            .iter()
            .chain(snap.gauges().iter())
            .map(|(n, _)| *n)
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate series name");
        // 10 Metrics counters + 13 resilience + 11 storage + 21 net
        // + 3 algorithm gauges + 6 net gauges.
        assert_eq!(total, 64);
    }

    #[test]
    fn net_counters_reach_every_format() {
        let mut snap = sample();
        snap.net.reports_accepted = 11;
        snap.net.shed_queue_full = 2;
        snap.net.shed_engine_degraded = 1;
        snap.net.degraded = true;
        snap.net.engine_restarts = 4;
        snap.net.failovers = 1;
        snap.net.degraded_since_ms = 250;
        snap.net.epoch = 3;
        snap.net.ingest_wait_nanos.record(12_345);
        snap.net.spans_dropped = 5;
        snap.net.traces_sampled = 9;
        snap.net.exemplars = 1;
        snap.net.ingest_wait_exemplars = vec![crate::net::stats::WaitExemplar {
            bucket: 123,
            wait_nanos: 12_345,
            trace: 0xDEAD,
        }];
        let text = snap.render_text();
        assert!(text.contains("net_reports_accepted: 11\n"));
        assert!(text.contains("net_shed_queue_full: 2\n"));
        assert!(text.contains("net_shed_total: 3\n"));
        assert!(text.contains("net_degraded: 1\n"));
        assert!(text.contains("net_engine_restarts: 4\n"));
        assert!(text.contains("net_failovers: 1\n"));
        assert!(text.contains("net_degraded_since_ms: 250\n"));
        assert!(text.contains("net_epoch: 3\n"));
        assert!(text.contains("net_spans_dropped: 5\n"));
        assert!(text.contains("net_traces_sampled: 9\n"));
        assert!(text.contains("net_exemplars: 1\n"));
        assert!(text.contains("net_ingest_wait_nanos: n=1 "));
        let json = snap.render_json();
        assert!(json.contains("\"net_reports_accepted\":11"));
        assert!(json.contains("\"net_shed_deadline_exceeded\":0"));
        assert!(json.contains("\"net_shed_session_quota\":0"));
        assert!(json.contains("\"net_degraded\":1"));
        assert!(json.contains("\"net_engine_restarts\":4"));
        assert!(json.contains("\"net_failovers\":1"));
        assert!(json.contains("\"net_degraded_since_ms\":250"));
        assert!(json.contains("\"net_epoch\":3"));
        assert!(json.contains("\"net_spans_dropped\":5"));
        assert!(json.contains("\"net_traces_sampled\":9"));
        assert!(json.contains("\"net_exemplars\":1"));
        assert!(json.contains("\"net_ingest_wait_nanos\":{"));
        // The wait histogram carries its exemplar trace ids in JSON.
        assert!(
            json.contains("\"exemplars\":[{\"bucket\":123,\"wait_nanos\":12345,\"trace\":57005}]")
        );
        let prom = snap.render_prom();
        assert!(prom.contains("# TYPE ctup_net_shed_queue_full counter\n"));
        assert!(prom.contains("ctup_net_shed_queue_full{algorithm=\"opt\"} 2\n"));
        assert!(prom.contains("# TYPE ctup_net_degraded gauge\n"));
        assert!(prom.contains("# TYPE ctup_net_engine_restarts counter\n"));
        assert!(prom.contains("# TYPE ctup_net_failovers counter\n"));
        assert!(prom.contains("ctup_net_epoch{algorithm=\"opt\"} 3\n"));
        assert!(prom.contains("# TYPE ctup_net_spans_dropped counter\n"));
        assert!(prom.contains("ctup_net_traces_sampled{algorithm=\"opt\"} 9\n"));
        assert!(prom.contains("ctup_net_exemplars{algorithm=\"opt\"} 1\n"));
        assert!(prom.contains("ctup_net_ingest_wait_nanos_count{algorithm=\"opt\"} 1\n"));
    }

    #[test]
    fn text_report_carries_counters_and_quantiles() {
        let text = sample().render_text();
        assert!(text.contains("algorithm: opt\n"));
        assert!(text.contains("updates_processed: 42\n"));
        assert!(text.contains("storage_cell_reads: 9\n"));
        assert!(text.contains("storage_cache_hits: 3\n"));
        assert!(text.contains("storage_cache_misses: 9\n"));
        assert!(text.contains("storage_cache_evictions: 0\n"));
        assert!(text.contains("cache_hit_ratio: 0.250000\n"));
        assert!(text.contains("update_total_nanos: n=4 "));
        assert!(text.contains(" p50="));
        assert!(text.contains(" p99="));
        // Empty histograms are omitted rather than printed as all-zero.
        assert!(!text.contains("checkpoint_write_nanos:"));
    }

    #[test]
    fn json_report_is_structured() {
        let json = sample().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"algorithm\":\"opt\""));
        assert!(json.contains("\"counters\":{"));
        assert!(json.contains("\"updates_processed\":42"));
        assert!(json.contains("\"gauges\":{"));
        assert!(json.contains("\"maintained_now\":7"));
        assert!(json.contains("\"storage_cache_hits\":3"));
        assert!(json.contains("\"cache_hit_ratio\":0.250000"));
        assert!(json.contains("\"histograms\":{"));
        assert!(json.contains("\"p99\":"));
        assert!(json.contains("\"encoded\":\"v1 "));
    }

    #[test]
    fn prom_report_is_well_formed() {
        let prom = sample().render_prom();
        assert!(prom.contains("# TYPE ctup_updates_processed counter\n"));
        assert!(prom.contains("ctup_updates_processed{algorithm=\"opt\"} 42\n"));
        assert!(prom.contains("# TYPE ctup_maintained_now gauge\n"));
        assert!(prom.contains("# TYPE ctup_update_total_nanos histogram\n"));
        assert!(prom.contains("ctup_update_total_nanos_count{algorithm=\"opt\"} 4\n"));
        assert!(prom.contains("le=\"+Inf\"} 4\n"));
        assert!(prom.contains("# TYPE ctup_cache_hit_ratio gauge\n"));
        assert!(prom.contains("ctup_cache_hit_ratio{algorithm=\"opt\"} 0.250000\n"));
        assert!(prom.contains("# TYPE ctup_build_info gauge\n"));
        assert!(prom.contains(&format!(
            "ctup_build_info{{version=\"{BUILD_VERSION}\",git_sha=\"{BUILD_GIT_SHA}\"}} 1\n"
        )));
        // Every sample line must end in a number; the derived hit ratio is
        // the one float series, so parse as f64 (integers parse too).
        for line in prom.lines() {
            assert!(!line.is_empty());
            if !line.starts_with('#') {
                let (_, value) = line.rsplit_once(' ').expect("sample line");
                let value: f64 = value.parse().expect("numeric sample");
                assert!(value.is_finite());
            }
        }
    }

    #[test]
    fn prom_histogram_buckets_are_cumulative() {
        let snap = sample();
        let prom = snap.render_prom();
        let mut last = 0u64;
        for line in prom
            .lines()
            .filter(|l| l.starts_with("ctup_update_total_nanos_bucket"))
        {
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            let value: u64 = value.parse().expect("numeric");
            assert!(value >= last, "buckets must be cumulative");
            last = value;
        }
        assert_eq!(last, 4);
    }

    #[test]
    fn label_escaping_handles_quotes() {
        assert_eq!(escape_label("a\"b\\c"), "a\\\"b\\\\c");
    }
}
