//! Table I — lower-bound maintenance of BasicCTUP.

use crate::types::Safety;
use ctup_spatial::Relation;

/// The paper's Table I: how a dark cell's lower bound changes when a unit's
/// protecting region moves from relation `old` to relation `new` with the
/// cell.
///
/// ```text
/// old \ new |  N/P  |  F
/// ----------+-------+-----
///     N     |   0   |  +1
///     P     |  −1   |   0
///     F     |  −1   |   0
/// ```
///
/// * `N → F`: every place gains this protector, so the bound rises.
/// * `P → N/P`: a place may have lost this protector, so the bound must
///   drop (this is the rule DOO later throttles).
/// * `P → F`: a place may have been protected both before and after, so the
///   bound cannot rise.
/// * `F → N/P`: every place had this protector; some may lose it.
#[inline]
pub fn basic_lb_delta(old: Relation, new: Relation) -> Safety {
    use Relation::{Full, None, Partial};
    match (old, new) {
        (None, None | Partial) => 0,
        (None, Full) => 1,
        (Partial, None | Partial) => -1,
        (Partial, Full) => 0,
        (Full, None | Partial) => -1,
        (Full, Full) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Relation::{Full, None, Partial};

    #[test]
    fn matches_table_i() {
        assert_eq!(basic_lb_delta(None, None), 0);
        assert_eq!(basic_lb_delta(None, Partial), 0);
        assert_eq!(basic_lb_delta(None, Full), 1);
        assert_eq!(basic_lb_delta(Partial, None), -1);
        assert_eq!(basic_lb_delta(Partial, Partial), -1);
        assert_eq!(basic_lb_delta(Partial, Full), 0);
        assert_eq!(basic_lb_delta(Full, None), -1);
        assert_eq!(basic_lb_delta(Full, Partial), -1);
        assert_eq!(basic_lb_delta(Full, Full), 0);
    }

    /// Soundness of every entry. A place's contribution from one unit is
    /// 0 or 1, constrained by the relation: `N` forces 0, `F` forces 1,
    /// `P` allows either. Any place's safety change is therefore at least
    /// `min_after − max_before`, and a sound lower-bound delta must not
    /// exceed that guaranteed minimum change.
    #[test]
    fn deltas_are_conservative() {
        let min_contrib = |rel: Relation| if rel == Full { 1 } else { 0 };
        let max_contrib = |rel: Relation| if rel == None { 0 } else { 1 };
        for old in [None, Partial, Full] {
            for new in [None, Partial, Full] {
                let delta = basic_lb_delta(old, new);
                let guaranteed = min_contrib(new) - max_contrib(old);
                assert!(
                    delta <= guaranteed,
                    "({old:?},{new:?}): delta {delta} exceeds guaranteed change {guaranteed}"
                );
            }
        }
    }
}
