//! BasicCTUP — the paper's basic grid scheme (§III).
//!
//! Cells are *dark* (a lower bound on the safeties of their places is
//! maintained; the places themselves stay at the lower level) or
//! *illuminated* (all their places and exact safeties are in memory). The
//! scheme keeps every cell containing a top-k unsafe place illuminated, so
//! the result is available at all times.

pub mod lb;

use crate::algorithm::{CtupAlgorithm, InitStats, UpdateStats};
use crate::cells::{classify_with_margin, touched_cells};
use crate::config::CtupConfig;
use crate::lbdir::LbDirectory;
use crate::maintained::MaintainedSet;
use crate::metrics::Metrics;
use crate::types::{LocationUpdate, Safety, TopKEntry, UnitId, LB_NONE};
use crate::units::UnitTable;
use ctup_obs::PhaseTimer;
use ctup_spatial::{convert, CellId, Circle, Grid, Point};
use ctup_storage::{PlaceStore, StorageError};
use lb::basic_lb_delta;
use std::borrow::Cow;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// The BasicCTUP query processor.
pub struct BasicCtup {
    config: CtupConfig,
    store: Arc<dyn PlaceStore>,
    grid: Grid,
    units: UnitTable,
    /// Lower bounds of dark cells; illuminated cells are detached.
    lb: LbDirectory,
    /// Places of all illuminated cells with exact safeties.
    maintained: MaintainedSet,
    last_result: Vec<TopKEntry>,
    metrics: Metrics,
    init_stats: InitStats,
}

impl std::fmt::Debug for BasicCtup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BasicCtup")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl BasicCtup {
    /// Builds the scheme over `store` and runs the paper's initialization:
    /// compute every cell's exact lower bound, then illuminate cells in
    /// increasing lower-bound order until `SK` is at most every dark lower
    /// bound. Fails if a cell read hits a storage fault.
    pub fn new(
        config: CtupConfig,
        store: Arc<dyn PlaceStore>,
        initial_units: &[Point],
    ) -> Result<Self, StorageError> {
        config.validate();
        let start = Instant::now();
        let io_before = store.stats().snapshot();
        let grid = store.grid().clone();
        let units = UnitTable::new(grid.clone(), initial_units, config.protection_radius);

        let mut this = BasicCtup {
            lb: LbDirectory::new(grid.num_cells()),
            maintained: MaintainedSet::new(),
            last_result: Vec::new(),
            metrics: Metrics::default(),
            init_stats: InitStats::default(),
            config,
            store,
            grid,
            units,
        };

        // Step 1: exact lower bound per cell; places are discarded again.
        let mut safeties_computed = 0u64;
        for cell in this.grid.cells() {
            let records = this.store.read_cell(cell)?;
            let mut min = LB_NONE;
            for record in records.iter() {
                min = min.min(this.units.safety(record));
                safeties_computed += 1;
            }
            this.lb.set(cell, min);
        }

        // Step 2+3: illuminate in increasing lower-bound order until
        // SK <= every dark lower bound.
        this.illumination_loop()?;

        // Init costs are reported separately from steady-state metrics.
        this.metrics = Metrics::default();
        this.metrics
            .set_maintained(convert::count64(this.maintained.len()));
        this.last_result = this.maintained.result(this.config.mode);
        this.init_stats = InitStats {
            wall: start.elapsed(),
            storage: this.store.stats().snapshot().since(&io_before),
            safeties_computed,
        };
        Ok(this)
    }

    /// Loads every place of a dark cell into memory with exact safeties.
    /// Borrowed reads (memory-resident stores) are consumed in place — one
    /// clone per record into the maintained set, never a whole-cell copy.
    fn illuminate(&mut self, cell: CellId) -> Result<(), StorageError> {
        let records = self.store.read_cell(cell)?;
        self.metrics.cells_accessed += 1;
        self.metrics.places_loaded += convert::count64(records.len());
        match records {
            Cow::Borrowed(slice) => {
                for record in slice {
                    let safety = self.units.safety(record);
                    self.maintained.insert(record.clone(), safety, cell);
                }
            }
            Cow::Owned(vec) => {
                for record in vec {
                    let safety = self.units.safety(&record);
                    self.maintained.insert(record, safety, cell);
                }
            }
        }
        self.lb.detach(cell);
        Ok(())
    }

    /// Illuminates dark cells, cheapest lower bound first, until none is
    /// below the current `SK`. Returns the number of cells illuminated.
    fn illumination_loop(&mut self) -> Result<u64, StorageError> {
        let mut count = 0;
        loop {
            let sk = self.maintained.sk_eff(self.config.mode);
            match self.lb.first() {
                Some((lb0, cell)) if lb0 < sk => {
                    self.illuminate(cell)?;
                    count += 1;
                }
                _ => break,
            }
        }
        Ok(count)
    }

    /// Discards an illuminated cell's places from memory, re-attaching it
    /// dark with its exact minimum safety as the lower bound.
    fn darken(&mut self, cell: CellId) {
        let entries = self.maintained.remove_cell(cell);
        debug_assert!(!entries.is_empty(), "illuminated cells are never empty");
        let min = entries.iter().map(|e| e.safety).min().unwrap_or(LB_NONE);
        self.lb.attach(cell, min);
        self.metrics.cells_darkened += 1;
    }

    /// Read-only view of a dark cell's lower bound (testing/diagnostics);
    /// `None` when the cell is illuminated.
    pub fn cell_lower_bound(&self, cell: CellId) -> Option<Safety> {
        self.lb.is_attached(cell).then(|| self.lb.get(cell))
    }

    /// Whether `cell` is currently illuminated.
    pub fn is_illuminated(&self, cell: CellId) -> bool {
        !self.lb.is_attached(cell)
    }

    /// Number of places currently held in memory.
    pub fn maintained_places(&self) -> usize {
        self.maintained.len()
    }

    /// Asserts the scheme's soundness invariant: for every dark cell, the
    /// lower bound is at most the true minimum safety of the places in it.
    /// Reads the lower level without counting. Test/diagnostic use.
    pub fn check_lb_invariant(&self) {
        for cell in self.grid.cells() {
            if !self.lb.is_attached(cell) {
                continue;
            }
            let lb = self.lb.get(cell);
            let records = self
                .store
                .read_cell(cell)
                // ctup-lint: allow(L001, the invariant checker is an assertion harness — an unreadable cell must fail the calling test)
                .unwrap_or_else(|e| panic!("invariant check could not read {cell:?}: {e}"));
            for record in records.iter() {
                let truth = self.units.safety(record);
                assert!(
                    lb <= truth,
                    "dark cell {cell:?}: lb {lb} exceeds true safety {truth} of {:?}",
                    record.id
                );
            }
        }
    }
}

impl CtupAlgorithm for BasicCtup {
    fn name(&self) -> &'static str {
        "basic"
    }

    fn config(&self) -> &CtupConfig {
        &self.config
    }

    fn handle_update(&mut self, update: LocationUpdate) -> Result<UpdateStats, StorageError> {
        let radius = self.config.protection_radius;
        let mut timer = PhaseTimer::start();
        let old = self.units.apply(update);
        let old_region = Circle::new(old, radius);
        let new_region = Circle::new(update.new, radius);

        let touched = touched_cells(&self.grid, &old_region, &new_region);

        // Step 1: exact safeties of maintained (illuminated) places.
        self.maintained
            .apply_unit_move(old, update.new, radius, &touched);

        // Step 2: Table I lower-bound maintenance on affected dark cells.
        for cell in touched {
            if !self.lb.is_attached(cell) {
                continue; // illuminated: exact safeties already updated
            }
            let rect = self.grid.cell_rect(cell);
            let margin = self.store.cell_extent_margin(cell);
            let rel_old = classify_with_margin(&old_region, &rect, margin);
            let rel_new = classify_with_margin(&new_region, &rect, margin);
            let delta = basic_lb_delta(rel_old, rel_new);
            if delta != 0 {
                self.lb.add(cell, delta);
                if delta > 0 {
                    self.metrics.lb_increments += 1;
                } else {
                    self.metrics.lb_decrements += 1;
                }
            }
        }
        let maintain_nanos = timer.lap();

        // Step 3: illuminate every dark cell whose bound fell below SK.
        let cells_accessed = self.illumination_loop()?;

        // Step 4: darken illuminated cells that hold no result place.
        let result = self.maintained.result(self.config.mode);
        // Every result place is maintained by construction; filter_map keeps
        // the keep-set sound (a dropped cell only darkens conservatively)
        // instead of panicking mid-update if that invariant ever broke.
        let keep: HashSet<CellId> = result
            .iter()
            .filter_map(|e| self.maintained.get(e.place).map(|m| m.cell))
            .collect();
        let all_cells: Vec<CellId> = self.maintained.cells().collect();
        for cell in all_cells {
            if !keep.contains(&cell) {
                self.darken(cell);
            }
        }
        let access_nanos = timer.lap();

        let changed = result != self.last_result;
        self.last_result = result;

        self.metrics.updates_processed += 1;
        self.metrics.maintain_nanos += maintain_nanos;
        self.metrics.access_nanos += access_nanos;
        self.metrics
            .set_maintained(convert::count64(self.maintained.len()));
        if changed {
            self.metrics.result_changes += 1;
        }
        Ok(UpdateStats {
            maintain_nanos,
            access_nanos,
            cells_accessed,
            result_changed: changed,
        })
    }

    fn result(&self) -> Vec<TopKEntry> {
        self.last_result.clone()
    }

    fn sk(&self) -> Option<Safety> {
        match self.config.mode {
            crate::config::QueryMode::TopK(k) => self.maintained.ordered().kth_safety(k),
            crate::config::QueryMode::Threshold(_) => None,
        }
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn init_stats(&self) -> &InitStats {
        &self.init_stats
    }

    fn unit_position(&self, unit: UnitId) -> Point {
        self.units.position(unit)
    }

    fn num_units(&self) -> usize {
        self.units.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QueryMode;
    use crate::oracle::Oracle;
    use crate::types::{Place, PlaceId};
    use ctup_storage::CellLocalStore;

    fn grid_place_set() -> Vec<Place> {
        // 8x8 places, one per cell of an 8x8 grid, varied requirements.
        let mut places = Vec::new();
        for i in 0..8u32 {
            for j in 0..8u32 {
                let id = i * 8 + j;
                places.push(Place::point(
                    PlaceId(id),
                    Point::new(i as f64 / 8.0 + 0.06, j as f64 / 8.0 + 0.06),
                    1 + (id % 5),
                ));
            }
        }
        places
    }

    fn setup(k: usize) -> (BasicCtup, Oracle, Vec<Point>) {
        let places = grid_place_set();
        let oracle = Oracle::new(places.clone());
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(8), places));
        let units: Vec<Point> = (0..10)
            .map(|i| Point::new(0.05 + 0.09 * i as f64, 0.95 - 0.085 * i as f64))
            .collect();
        let alg = BasicCtup::new(CtupConfig::with_k(k), store, &units).expect("init");
        (alg, oracle, units)
    }

    #[test]
    fn initialization_matches_oracle() {
        let (alg, oracle, units) = setup(5);
        oracle.assert_result_matches(&alg.result(), &units, 0.1, QueryMode::TopK(5));
        alg.check_lb_invariant();
        // Result cells are illuminated.
        assert!(alg.maintained_places() >= 5);
    }

    #[test]
    fn tracks_oracle_through_many_updates() {
        let (mut alg, oracle, mut units) = setup(5);
        // Deterministic pseudo-random walk.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for step in 0..300 {
            let unit = (next() * 10.0) as usize % 10;
            let new = Point::new(next(), next());
            alg.handle_update(LocationUpdate {
                unit: UnitId(unit as u32),
                new,
            })
            .expect("update");
            units[unit] = new;
            oracle.assert_result_matches(&alg.result(), &units, 0.1, QueryMode::TopK(5));
            if step % 50 == 0 {
                alg.check_lb_invariant();
            }
        }
        alg.check_lb_invariant();
        assert_eq!(alg.metrics().updates_processed, 300);
    }

    #[test]
    fn jiggling_unit_exhibits_drawback_one() {
        // The paper's drawback one/three: a unit that keeps reporting tiny
        // moves while partially intersecting dark cells decrements their
        // lower bounds on every update (Table I P->N/P is unconditional),
        // eventually forcing illuminations even though nothing changed.
        let (mut alg, _, units) = setup(5);
        let base = units[0];
        let mut total_accesses = 0;
        let mut decrements = 0;
        for i in 0..20 {
            let stats = alg
                .handle_update(LocationUpdate {
                    unit: UnitId(0),
                    new: Point::new(base.x + 1e-6 * i as f64, base.y),
                })
                .expect("update");
            total_accesses += stats.cells_accessed;
            decrements = alg.metrics().lb_decrements;
        }
        assert!(
            decrements >= 20,
            "P->P must decrement every update, got {decrements}"
        );
        assert!(
            total_accesses > 0,
            "unnecessary decrements must eventually cause illuminations"
        );
        // The result is still correct throughout (soundness is preserved,
        // only efficiency suffers — that is what OptCTUP fixes).
        alg.check_lb_invariant();
    }

    #[test]
    fn opt_doo_suppresses_jiggle_flashing_that_basic_suffers() {
        use crate::opt::OptCtup;
        let places = grid_place_set();
        let units: Vec<Point> = (0..10)
            .map(|i| Point::new(0.05 + 0.09 * i as f64, 0.95 - 0.085 * i as f64))
            .collect();
        let store_b: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(8), places.clone()));
        let store_o: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(8), places));
        let mut basic = BasicCtup::new(CtupConfig::with_k(5), store_b, &units).expect("init");
        let mut opt = OptCtup::new(CtupConfig::with_k(5), store_o, &units).expect("init");
        let base = units[0];
        let (mut basic_accesses, mut opt_accesses) = (0, 0);
        for i in 0..40 {
            let update = LocationUpdate {
                unit: UnitId(0),
                new: Point::new(base.x + 1e-6 * i as f64, base.y),
            };
            basic_accesses += basic.handle_update(update).expect("update").cells_accessed;
            opt_accesses += opt.handle_update(update).expect("update").cells_accessed;
        }
        assert!(
            opt_accesses < basic_accesses,
            "DOO should beat Basic under jiggling: opt {opt_accesses} vs basic {basic_accesses}"
        );
        // After the first decrement per (unit, cell) pair is recorded, DOO
        // blocks the rest: a handful of accesses at most.
        assert!(
            opt_accesses <= 12,
            "opt accessed {opt_accesses} cells under pure jiggling"
        );
    }

    #[test]
    fn threshold_mode_matches_oracle() {
        let places = grid_place_set();
        let oracle = Oracle::new(places.clone());
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(8), places));
        let units = vec![Point::new(0.5, 0.5), Point::new(0.2, 0.8)];
        let config = CtupConfig {
            mode: QueryMode::Threshold(-2),
            ..CtupConfig::paper_default()
        };
        let mut alg = BasicCtup::new(config, store, &units).expect("init");
        oracle.assert_result_matches(&alg.result(), &units, 0.1, QueryMode::Threshold(-2));
        alg.handle_update(LocationUpdate {
            unit: UnitId(0),
            new: Point::new(0.21, 0.79),
        })
        .expect("update");
        let moved = vec![Point::new(0.21, 0.79), Point::new(0.2, 0.8)];
        oracle.assert_result_matches(&alg.result(), &moved, 0.1, QueryMode::Threshold(-2));
    }

    #[test]
    fn illumination_loads_each_record_from_storage_exactly_once() {
        // Regression guard for the `into_owned()` copy bug: every record an
        // illumination charges to `places_loaded` must correspond to exactly
        // one record delivered by the lower level — a re-read (or a counted
        // duplicate load) would make the storage delta outrun the metric.
        let (mut alg, _, _) = setup(5);
        let before = alg.store.stats().snapshot();
        let mut state = 0xBEEF_CAFE_1234_5678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..100 {
            let unit = (next() * 10.0) as usize % 10;
            alg.handle_update(LocationUpdate {
                unit: UnitId(unit as u32),
                new: Point::new(next(), next()),
            })
            .expect("update");
        }
        let delta = alg.store.stats().snapshot().since(&before);
        assert_eq!(
            delta.records_read,
            alg.metrics().places_loaded,
            "storage delivered {} records but illumination accounted {}",
            delta.records_read,
            alg.metrics().places_loaded
        );
        assert_eq!(delta.cell_reads, alg.metrics().cells_accessed);
    }

    #[test]
    fn darkening_keeps_memory_bounded() {
        let (mut alg, _, _) = setup(3);
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..200 {
            let unit = (next() * 10.0) as usize % 10;
            alg.handle_update(LocationUpdate {
                unit: UnitId(unit as u32),
                new: Point::new(next(), next()),
            })
            .expect("update");
            // At most k cells stay illuminated after darkening, and each
            // cell holds one place in this data set.
            assert!(alg.maintained_places() <= 64);
        }
        // Darkening must actually have happened under this much movement.
        assert!(alg.metrics().cells_darkened > 0);
    }
}
