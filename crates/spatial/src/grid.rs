//! Uniform grid partitioning of the monitored space.
//!
//! Both CTUP schemes partition the 2-D space into `gx × gy` disjoint cells
//! (the paper's "partition granularity" is `gx = gy = G`). Cells are
//! identified by a dense [`CellId`] so per-cell state can live in flat
//! vectors.

use crate::circle::Circle;
use crate::convert;
use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// Dense identifier of a grid cell: `row * gx + col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl CellId {
    /// The cell id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        convert::index(self.0)
    }
}

/// A uniform `gx × gy` partitioning of a rectangular space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    space: Rect,
    gx: u32,
    gy: u32,
    cell_w: f64,
    cell_h: f64,
}

impl Grid {
    /// Creates a grid over `space` with `gx × gy` cells.
    ///
    /// # Panics
    /// Panics if either dimension is zero or the space is degenerate.
    pub fn new(space: Rect, gx: u32, gy: u32) -> Self {
        assert!(gx > 0 && gy > 0, "grid must have at least one cell");
        assert!(
            space.width() > 0.0 && space.height() > 0.0,
            "grid space must have positive area"
        );
        Grid {
            space,
            gx,
            gy,
            cell_w: space.width() / gx as f64,
            cell_h: space.height() / gy as f64,
        }
    }

    /// Square grid over the unit square — the paper's experimental setting
    /// with `granularity = g`.
    pub fn unit_square(g: u32) -> Self {
        Grid::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), g, g)
    }

    /// The partitioned space.
    #[inline]
    pub fn space(&self) -> &Rect {
        &self.space
    }

    /// Number of columns.
    #[inline]
    pub fn gx(&self) -> u32 {
        self.gx
    }

    /// Number of rows.
    #[inline]
    pub fn gy(&self) -> u32 {
        self.gy
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        convert::index(self.gx) * convert::index(self.gy)
    }

    /// Cell width.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.cell_w
    }

    /// Cell height.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.cell_h
    }

    #[inline]
    fn col_of(&self, x: f64) -> u32 {
        let c = ((x - self.space.lo.x) / self.cell_w).floor();
        convert::grid_coord(c, self.gx - 1)
    }

    #[inline]
    fn row_of(&self, y: f64) -> u32 {
        let r = ((y - self.space.lo.y) / self.cell_h).floor();
        convert::grid_coord(r, self.gy - 1)
    }

    /// Cell containing `p`. Points outside the space are clamped to the
    /// nearest boundary cell so every location maps to exactly one cell.
    #[inline]
    pub fn cell_of(&self, p: Point) -> CellId {
        CellId(self.row_of(p.y) * self.gx + self.col_of(p.x))
    }

    /// Id of the cell at `(col, row)`.
    #[inline]
    pub fn cell_at(&self, col: u32, row: u32) -> CellId {
        debug_assert!(col < self.gx && row < self.gy);
        CellId(row * self.gx + col)
    }

    /// `(col, row)` of a cell.
    #[inline]
    pub fn col_row(&self, id: CellId) -> (u32, u32) {
        (id.0 % self.gx, id.0 / self.gx)
    }

    /// The rectangle covered by a cell.
    #[inline]
    pub fn cell_rect(&self, id: CellId) -> Rect {
        let (col, row) = self.col_row(id);
        let x0 = self.space.lo.x + col as f64 * self.cell_w;
        let y0 = self.space.lo.y + row as f64 * self.cell_h;
        Rect::from_coords(x0, y0, x0 + self.cell_w, y0 + self.cell_h)
    }

    /// Iterator over all cell ids in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        (0..convert::id32(self.num_cells())).map(CellId)
    }

    /// Iterator over the ids of cells whose rectangle intersects `rect`.
    pub fn cells_overlapping_rect(&self, rect: &Rect) -> impl Iterator<Item = CellId> + '_ {
        let clipped_lo_x = rect.lo.x.max(self.space.lo.x);
        let clipped_lo_y = rect.lo.y.max(self.space.lo.y);
        let clipped_hi_x = rect.hi.x.min(self.space.hi.x);
        let clipped_hi_y = rect.hi.y.min(self.space.hi.y);
        let empty = clipped_lo_x > clipped_hi_x || clipped_lo_y > clipped_hi_y;
        let (c0, c1, r0, r1) = if empty {
            (1, 0, 1, 0) // empty ranges
        } else {
            (
                self.col_of(clipped_lo_x),
                self.col_of(clipped_hi_x),
                self.row_of(clipped_lo_y),
                self.row_of(clipped_hi_y),
            )
        };
        (r0..=r1).flat_map(move |row| (c0..=c1).map(move |col| CellId(row * self.gx + col)))
    }

    /// Iterator over the ids of cells actually intersected by the circle
    /// (bounding-box candidates filtered by exact circle–rect intersection).
    pub fn cells_overlapping_circle<'a>(
        &'a self,
        circle: &'a Circle,
    ) -> impl Iterator<Item = CellId> + 'a {
        self.cells_overlapping_rect(&circle.bbox())
            .filter(move |&id| circle.intersects_rect(&self.cell_rect(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_of_is_total_and_clamped() {
        let g = Grid::unit_square(10);
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), CellId(0));
        assert_eq!(g.cell_of(Point::new(0.999, 0.999)), CellId(99));
        // Boundary point belongs to the last cell after clamping.
        assert_eq!(g.cell_of(Point::new(1.0, 1.0)), CellId(99));
        // Points outside the space clamp to boundary cells.
        assert_eq!(g.cell_of(Point::new(-5.0, -5.0)), CellId(0));
        assert_eq!(g.cell_of(Point::new(5.0, 5.0)), CellId(99));
    }

    #[test]
    fn cell_rect_roundtrip() {
        let g = Grid::unit_square(4);
        for id in g.cells() {
            let r = g.cell_rect(id);
            assert_eq!(g.cell_of(r.center()), id);
        }
    }

    #[test]
    fn col_row_roundtrip() {
        let g = Grid::new(Rect::from_coords(-1.0, -2.0, 3.0, 2.0), 8, 5);
        for id in g.cells() {
            let (c, r) = g.col_row(id);
            assert_eq!(g.cell_at(c, r), id);
        }
        assert_eq!(g.num_cells(), 40);
    }

    #[test]
    fn cells_overlapping_rect_exact() {
        let g = Grid::unit_square(10);
        let r = Rect::from_coords(0.05, 0.05, 0.25, 0.15);
        let ids: Vec<_> = g.cells_overlapping_rect(&r).collect();
        // Columns 0..=2, rows 0..=1 -> 6 cells.
        assert_eq!(ids.len(), 6);
        for id in g.cells() {
            let hit = ids.contains(&id);
            assert_eq!(hit, g.cell_rect(id).intersects(&r), "cell {id:?}");
        }
    }

    #[test]
    fn cells_overlapping_rect_outside_space() {
        let g = Grid::unit_square(10);
        let r = Rect::from_coords(2.0, 2.0, 3.0, 3.0);
        assert_eq!(g.cells_overlapping_rect(&r).count(), 0);
        // Rect partially outside clips correctly.
        let r = Rect::from_coords(0.95, 0.95, 3.0, 3.0);
        let ids: Vec<_> = g.cells_overlapping_rect(&r).collect();
        assert_eq!(ids, vec![CellId(99)]);
    }

    #[test]
    fn cells_overlapping_circle_filters_corners() {
        let g = Grid::unit_square(10);
        // Circle centered in the middle of cell (5,5): its bbox covers a 3x3
        // block but with radius 0.06 the 4 diagonal cells of the block are
        // not intersected (their nearest corner is at dist ~0.0707 > 0.06).
        let c = Circle::new(Point::new(0.55, 0.55), 0.06);
        let ids: Vec<_> = g.cells_overlapping_circle(&c).collect();
        assert_eq!(ids.len(), 5);
        for id in g.cells() {
            let hit = ids.contains(&id);
            assert_eq!(hit, c.intersects_rect(&g.cell_rect(id)), "cell {id:?}");
        }
    }

    #[test]
    fn non_square_grid_geometry() {
        let g = Grid::new(Rect::from_coords(0.0, 0.0, 2.0, 1.0), 4, 2);
        assert_eq!(g.cell_width(), 0.5);
        assert_eq!(g.cell_height(), 0.5);
        assert_eq!(
            g.cell_rect(CellId(5)),
            Rect::from_coords(0.5, 0.5, 1.0, 1.0)
        );
    }
}
