//! The N/P/F relationship between a protecting region and a grid cell.
//!
//! Tables I and II of the paper drive lower-bound maintenance off the
//! relationship between a unit's circular protecting region and a cell:
//! **N**ot intersecting, **P**artially intersecting, or **F**ully containing
//! the cell. The classification must be consistent with point-level
//! protection ([`Circle::contains_point`]): if the relation is `F` every
//! place in the cell is protected, and if it is `N` none is. Both follow
//! from using the same closed-disk predicate on the cell's nearest and
//! farthest points.

use crate::circle::Circle;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// Relationship of a protecting region with a cell (paper §III.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// The region does not intersect the cell: no place in the cell is
    /// protected by the unit.
    None,
    /// The region partially intersects the cell: places may or may not be
    /// protected.
    Partial,
    /// The region fully contains the cell: every place in the cell is
    /// protected by the unit.
    Full,
}

impl Relation {
    /// Classifies `region` against `cell`.
    #[inline]
    pub fn classify(region: &Circle, cell: &Rect) -> Relation {
        let r2 = region.radius * region.radius;
        if cell.min_dist2(region.center) > r2 {
            Relation::None
        } else if cell.max_dist2(region.center) <= r2 {
            Relation::Full
        } else {
            Relation::Partial
        }
    }

    /// True unless the relation is [`Relation::None`].
    #[inline]
    pub fn intersects(self) -> bool {
        self != Relation::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn cell() -> Rect {
        Rect::from_coords(0.0, 0.0, 0.1, 0.1)
    }

    #[test]
    fn classify_none_partial_full() {
        let far = Circle::new(Point::new(1.0, 1.0), 0.1);
        let overlapping = Circle::new(Point::new(0.12, 0.05), 0.05);
        let covering = Circle::new(Point::new(0.05, 0.05), 0.2);
        assert_eq!(Relation::classify(&far, &cell()), Relation::None);
        assert_eq!(Relation::classify(&overlapping, &cell()), Relation::Partial);
        assert_eq!(Relation::classify(&covering, &cell()), Relation::Full);
    }

    #[test]
    fn full_requires_far_corner() {
        // Center of cell, radius just below the half-diagonal: partial.
        let half_diag = (2.0_f64).sqrt() * 0.05;
        let c = Circle::new(Point::new(0.05, 0.05), half_diag - 1e-9);
        assert_eq!(Relation::classify(&c, &cell()), Relation::Partial);
        let c = Circle::new(Point::new(0.05, 0.05), half_diag + 1e-9);
        assert_eq!(Relation::classify(&c, &cell()), Relation::Full);
    }

    #[test]
    fn boundary_touch_counts_as_partial() {
        // Disk touching the cell at exactly one boundary point.
        let c = Circle::new(Point::new(0.2, 0.05), 0.1);
        assert_eq!(Relation::classify(&c, &cell()), Relation::Partial);
    }

    #[test]
    fn consistency_with_point_protection() {
        // Sample points of the cell; F must protect all, N must protect none.
        let cases = [
            Circle::new(Point::new(0.05, 0.05), 0.5),
            Circle::new(Point::new(0.3, 0.3), 0.1),
            Circle::new(Point::new(0.08, 0.02), 0.04),
        ];
        for region in cases {
            let rel = Relation::classify(&region, &cell());
            for i in 0..=10 {
                for j in 0..=10 {
                    let p = Point::new(0.01 * i as f64, 0.01 * j as f64);
                    match rel {
                        Relation::Full => assert!(region.contains_point(p)),
                        Relation::None => assert!(!region.contains_point(p)),
                        Relation::Partial => {}
                    }
                }
            }
        }
    }

    #[test]
    fn intersects_helper() {
        assert!(!Relation::None.intersects());
        assert!(Relation::Partial.intersects());
        assert!(Relation::Full.intersects());
    }
}
