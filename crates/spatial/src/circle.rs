//! Circles — the protecting regions of units.

use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A closed disk: the protecting region of a unit. A place `p` is protected
/// iff `dist(center, p) <= radius` (the paper's Definition 1, with closed
/// boundary so that protection and the N/P/F cell classification agree).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center of the disk (the unit's location).
    pub center: Point,
    /// Radius of the disk (the protection range).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle; the radius must be non-negative.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "negative radius {radius}");
        Circle { center, radius }
    }

    /// Whether `p` is inside the closed disk.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        self.center.dist2(p) <= self.radius * self.radius
    }

    /// Whether the whole rectangle lies inside the closed disk
    /// (true iff its farthest corner does).
    #[inline]
    pub fn contains_rect(&self, r: &Rect) -> bool {
        r.max_dist2(self.center) <= self.radius * self.radius
    }

    /// Whether the disk and the closed rectangle share at least one point.
    #[inline]
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        r.min_dist2(self.center) <= self.radius * self.radius
    }

    /// The bounding box of the disk.
    #[inline]
    pub fn bbox(&self) -> Rect {
        Rect::point(self.center).inflate(self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_containment_is_closed() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert!(c.contains_point(Point::new(1.0, 0.0)));
        assert!(c.contains_point(Point::new(0.6, 0.8)));
        assert!(!c.contains_point(Point::new(1.0 + 1e-9, 0.0)));
    }

    #[test]
    fn rect_containment_uses_far_corner() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let inside = Rect::from_coords(-0.5, -0.5, 0.5, 0.5); // far corner at dist ~0.707
        let sticking_out = Rect::from_coords(-0.8, -0.8, 0.8, 0.8); // far corner at ~1.13
        assert!(c.contains_rect(&inside));
        assert!(!c.contains_rect(&sticking_out));
        assert!(c.intersects_rect(&sticking_out));
    }

    #[test]
    fn disjoint_rect() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let far = Rect::from_coords(2.0, 2.0, 3.0, 3.0);
        assert!(!c.intersects_rect(&far));
        // Corner-adjacent rect whose nearest point is exactly at distance 1.
        let touching = Rect::from_coords(1.0, 0.0, 2.0, 1.0);
        assert!(c.intersects_rect(&touching));
    }

    #[test]
    fn bbox_covers_disk() {
        let c = Circle::new(Point::new(0.5, -0.5), 0.25);
        assert_eq!(c.bbox(), Rect::from_coords(0.25, -0.75, 0.75, -0.25));
    }

    #[test]
    fn zero_radius_circle() {
        let c = Circle::new(Point::new(0.5, 0.5), 0.0);
        assert!(c.contains_point(Point::new(0.5, 0.5)));
        assert!(!c.contains_point(Point::new(0.5, 0.500001)));
        assert!(c.intersects_rect(&Rect::from_coords(0.0, 0.0, 1.0, 1.0)));
    }
}
