//! 2-D points in the longitude/latitude plane.

use serde::{Deserialize, Serialize};

/// A point in the 2-D space the server partitions (the paper's
/// longitude × latitude plane, normalized to arbitrary coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (longitude).
    pub x: f64,
    /// Vertical coordinate (latitude).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Predicates in this crate compare squared distances against squared
    /// radii so that no square root is taken on the hot path.
    #[inline]
    pub fn dist2(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Linear interpolation from `self` towards `to`; `t = 0` yields `self`,
    /// `t = 1` yields `to`.
    #[inline]
    pub fn lerp(&self, to: Point, t: f64) -> Point {
        Point::new(self.x + (to.x - self.x) * t, self.y + (to.y - self.y) * t)
    }

    /// Component-wise midpoint.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_dist2() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist2(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(0.25, -7.0);
        assert_eq!(a.dist2(b), b.dist2(a));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(2.0, 4.0));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (0.5, 0.75).into();
        assert_eq!(p, Point::new(0.5, 0.75));
    }
}
