//! A from-scratch R-tree over axis-aligned rectangles.
//!
//! Used by the place store for spatial lookups over the (static) place set,
//! by the naïve baselines, and by the "most influential sites" style
//! extensions. Supports STR bulk loading, incremental insertion with
//! quadratic splits, deletion with subtree reinsertion, rectangle range
//! queries, and best-first k-nearest-neighbour search.

use crate::circle::Circle;
use crate::point::Point;
use crate::rect::Rect;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Maximum number of entries per node.
const MAX_ENTRIES: usize = 16;
/// Minimum fill of a node after a split or deletion (40% of max).
const MIN_ENTRIES: usize = 6;

/// An R-tree mapping rectangles to payloads of type `T`.
///
/// Point data is stored as degenerate rectangles via [`Rect::point`].
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Option<Node<T>>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<T> {
    bbox: Rect,
    kind: Kind<T>,
}

#[derive(Debug, Clone)]
enum Kind<T> {
    Leaf(Vec<(Rect, T)>),
    Inner(Vec<Node<T>>),
}

trait HasBBox {
    fn bbox(&self) -> Rect;
}

impl<T> HasBBox for (Rect, T) {
    #[inline]
    fn bbox(&self) -> Rect {
        self.0
    }
}

impl<T> HasBBox for Node<T> {
    #[inline]
    fn bbox(&self) -> Rect {
        self.bbox
    }
}

fn bbox_of<E: HasBBox>(items: &[E]) -> Rect {
    items
        .iter()
        .fold(Rect::empty(), |acc, e| acc.union(&e.bbox()))
}

/// Size of the next chunk when packing `remaining` items into nodes, chosen
/// so that no chunk (in particular the last one) falls below the minimum
/// fill: if taking a full node would strand fewer than `MIN_ENTRIES` items,
/// leave exactly `MIN_ENTRIES` behind instead.
fn packing_chunk(remaining: usize) -> usize {
    if remaining <= MAX_ENTRIES {
        remaining
    } else if remaining - MAX_ENTRIES >= MIN_ENTRIES {
        MAX_ENTRIES
    } else {
        remaining - MIN_ENTRIES
    }
}

/// Quadratic split (Guttman): pick the pair of seeds wasting the most area,
/// then greedily assign remaining items by area-enlargement preference while
/// honouring the minimum fill.
fn quadratic_split<E: HasBBox>(mut items: Vec<E>) -> (Vec<E>, Vec<E>) {
    debug_assert!(items.len() > MAX_ENTRIES);
    // Seed selection.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let a = items[i].bbox();
            let b = items[j].bbox();
            let waste = a.union(&b).area() - a.area() - b.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Remove seeds (higher index first so the lower stays valid).
    let seed2 = items.swap_remove(s2);
    let seed1 = items.swap_remove(s1);
    let mut g1 = vec![seed1];
    let mut g2 = vec![seed2];
    let mut b1 = g1[0].bbox();
    let mut b2 = g2[0].bbox();

    while let Some(item) = items.pop() {
        let remaining = items.len();
        // Force assignment when a group needs every remaining item to reach
        // the minimum fill.
        if g1.len() + remaining < MIN_ENTRIES {
            b1 = b1.union(&item.bbox());
            g1.push(item);
            continue;
        }
        if g2.len() + remaining < MIN_ENTRIES {
            b2 = b2.union(&item.bbox());
            g2.push(item);
            continue;
        }
        let e1 = b1.union(&item.bbox()).area() - b1.area();
        let e2 = b2.union(&item.bbox()).area() - b2.area();
        let to_first = match e1.partial_cmp(&e2).unwrap_or(Ordering::Equal) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => b1.area() <= b2.area(),
        };
        if to_first {
            b1 = b1.union(&item.bbox());
            g1.push(item);
        } else {
            b2 = b2.union(&item.bbox());
            g2.push(item);
        }
    }
    (g1, g2)
}

impl<T> Node<T> {
    fn leaf(entries: Vec<(Rect, T)>) -> Self {
        Node {
            bbox: bbox_of(&entries),
            kind: Kind::Leaf(entries),
        }
    }

    fn inner(children: Vec<Node<T>>) -> Self {
        Node {
            bbox: bbox_of(&children),
            kind: Kind::Inner(children),
        }
    }

    fn recompute_bbox(&mut self) {
        self.bbox = match &self.kind {
            Kind::Leaf(entries) => bbox_of(entries),
            Kind::Inner(children) => bbox_of(children),
        };
    }

    /// Index of the child whose bbox needs the least enlargement to admit
    /// `rect` (ties broken by smaller area).
    fn choose_child(children: &[Node<T>], rect: &Rect) -> usize {
        let mut best = 0;
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, c) in children.iter().enumerate() {
            let area = c.bbox.area();
            let enl = c.bbox.union(rect).area() - area;
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = i;
                best_enl = enl;
                best_area = area;
            }
        }
        best
    }

    /// Inserts and returns a split-off sibling if this node overflowed.
    fn insert(&mut self, rect: Rect, item: T) -> Option<Node<T>> {
        self.bbox = if self.len_entries() == 0 {
            rect
        } else {
            self.bbox.union(&rect)
        };
        match &mut self.kind {
            Kind::Leaf(entries) => {
                entries.push((rect, item));
                if entries.len() > MAX_ENTRIES {
                    let (g1, g2) = quadratic_split(std::mem::take(entries));
                    *entries = g1;
                    self.recompute_bbox();
                    return Some(Node::leaf(g2));
                }
                None
            }
            Kind::Inner(children) => {
                let idx = Self::choose_child(children, &rect);
                if let Some(sibling) = children[idx].insert(rect, item) {
                    children.push(sibling);
                    if children.len() > MAX_ENTRIES {
                        let (g1, g2) = quadratic_split(std::mem::take(children));
                        *children = g1;
                        self.recompute_bbox();
                        return Some(Node::inner(g2));
                    }
                }
                None
            }
        }
    }

    fn len_entries(&self) -> usize {
        match &self.kind {
            Kind::Leaf(e) => e.len(),
            Kind::Inner(c) => c.len(),
        }
    }
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree { root: None, len: 0 }
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding box of everything stored, if any.
    pub fn bbox(&self) -> Option<Rect> {
        self.root.as_ref().map(|r| r.bbox)
    }

    /// Inserts an item keyed by `rect`.
    pub fn insert(&mut self, rect: Rect, item: T) {
        self.len += 1;
        match self.root.take() {
            None => self.root = Some(Node::leaf(vec![(rect, item)])),
            Some(mut root) => {
                self.root = Some(match root.insert(rect, item) {
                    Some(sibling) => Node::inner(vec![root, sibling]),
                    None => root,
                });
            }
        }
    }

    /// Inserts a point item.
    pub fn insert_point(&mut self, p: Point, item: T) {
        self.insert(Rect::point(p), item);
    }

    /// Bulk-loads the tree with Sort-Tile-Recursive packing, replacing any
    /// existing contents. Produces near-perfectly packed nodes and is much
    /// faster than repeated insertion.
    pub fn bulk_load(items: Vec<(Rect, T)>) -> Self {
        let len = items.len();
        if len == 0 {
            return RTree::new();
        }
        let mut entries = items;
        // Tile into vertical slabs of ~sqrt(n / MAX) columns.
        let leaf_count = len.div_ceil(MAX_ENTRIES);
        // Ceiling integer square root: the float round-trip would be a
        // truncating cast (lint L003) and is inexact above 2^53 anyway.
        let mut slabs = leaf_count.isqrt();
        if slabs * slabs < leaf_count {
            slabs += 1;
        }
        let per_slab = len.div_ceil(slabs);
        entries.sort_by(|a, b| {
            a.0.center()
                .x
                .partial_cmp(&b.0.center().x)
                .unwrap_or(Ordering::Equal)
        });
        let mut leaves: Vec<Node<T>> = Vec::with_capacity(leaf_count);
        let mut rest = entries;
        while !rest.is_empty() {
            let mut take = per_slab.min(rest.len());
            // Fold a tiny remainder into the last slab so no slab (and hence
            // no leaf) can end up below the minimum fill.
            if rest.len() - take < MIN_ENTRIES {
                take = rest.len();
            }
            let mut slab: Vec<(Rect, T)> = rest.drain(..take).collect();
            slab.sort_by(|a, b| {
                a.0.center()
                    .y
                    .partial_cmp(&b.0.center().y)
                    .unwrap_or(Ordering::Equal)
            });
            while !slab.is_empty() {
                let take = packing_chunk(slab.len());
                leaves.push(Node::leaf(slab.drain(..take).collect()));
            }
        }
        // Pack upper levels until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next: Vec<Node<T>> = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            let mut nodes = level;
            nodes.sort_by(|a, b| {
                a.bbox
                    .center()
                    .x
                    .partial_cmp(&b.bbox.center().x)
                    .unwrap_or(Ordering::Equal)
            });
            while !nodes.is_empty() {
                let take = packing_chunk(nodes.len());
                next.push(Node::inner(nodes.drain(..take).collect()));
            }
            level = next;
        }
        RTree {
            root: level.pop(),
            len,
        }
    }

    /// Calls `f` for every item whose rectangle intersects `rect`.
    pub fn for_each_in_rect<'t, F: FnMut(&'t Rect, &'t T)>(&'t self, rect: &Rect, mut f: F) {
        fn walk<'t, T, F: FnMut(&'t Rect, &'t T)>(node: &'t Node<T>, rect: &Rect, f: &mut F) {
            match &node.kind {
                Kind::Leaf(entries) => {
                    for (r, item) in entries {
                        if r.intersects(rect) {
                            f(r, item);
                        }
                    }
                }
                Kind::Inner(children) => {
                    for c in children {
                        if c.bbox.intersects(rect) {
                            walk(c, rect, f);
                        }
                    }
                }
            }
        }
        if let Some(root) = &self.root {
            if root.bbox.intersects(rect) {
                walk(root, rect, &mut f);
            }
        }
    }

    /// Collects references to all items whose rectangle intersects `rect`.
    pub fn query_rect(&self, rect: &Rect) -> Vec<&T> {
        let mut out = Vec::new();
        self.for_each_in_rect(rect, |_, item| out.push(item));
        out
    }

    /// Calls `f` for every **point-keyed** item inside the closed disk.
    /// (For extended keys, the predicate is "key center inside the disk".)
    pub fn for_each_in_circle<'t, F: FnMut(Point, &'t T)>(&'t self, circle: &Circle, mut f: F) {
        self.for_each_in_rect(&circle.bbox(), |r, item| {
            let p = r.center();
            if circle.contains_point(p) {
                f(p, item);
            }
        });
    }

    /// Number of point-keyed items inside the closed disk.
    pub fn count_in_circle(&self, circle: &Circle) -> usize {
        let mut n = 0;
        self.for_each_in_circle(circle, |_, _| n += 1);
        n
    }

    /// The `k` items nearest to `q` (by min distance of their rectangle),
    /// closest first, using best-first search over the tree.
    pub fn k_nearest(&self, q: Point, k: usize) -> Vec<(f64, &T)> {
        enum Cand<'t, T> {
            Node(&'t Node<T>),
            Item(&'t T),
        }
        struct Q<'t, T>(f64, Cand<'t, T>);
        impl<T> PartialEq for Q<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.0 == other.0
            }
        }
        impl<T> Eq for Q<'_, T> {}
        impl<T> PartialOrd for Q<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for Q<'_, T> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on distance.
                other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
            }
        }

        let mut out = Vec::with_capacity(k.min(self.len));
        let Some(root) = &self.root else { return out };
        if k == 0 {
            return out;
        }
        let mut heap = BinaryHeap::new();
        heap.push(Q(root.bbox.min_dist2(q), Cand::Node(root)));
        while let Some(Q(d2, cand)) = heap.pop() {
            match cand {
                Cand::Item(item) => {
                    out.push((d2.sqrt(), item));
                    if out.len() == k {
                        break;
                    }
                }
                Cand::Node(node) => match &node.kind {
                    Kind::Leaf(entries) => {
                        for (r, item) in entries {
                            heap.push(Q(r.min_dist2(q), Cand::Item(item)));
                        }
                    }
                    Kind::Inner(children) => {
                        for c in children {
                            heap.push(Q(c.bbox.min_dist2(q), Cand::Node(c)));
                        }
                    }
                },
            }
        }
        out
    }

    /// The nearest item to `q`, if any, with its distance.
    pub fn nearest(&self, q: Point) -> Option<(f64, &T)> {
        self.k_nearest(q, 1).into_iter().next()
    }

    /// Removes one item whose key equals `rect` and satisfies `pred`,
    /// returning it. Underfull nodes along the path are dissolved and their
    /// remaining entries reinserted (Guttman's condense-tree).
    pub fn remove<F: Fn(&T) -> bool>(&mut self, rect: &Rect, pred: F) -> Option<T> {
        let root = self.root.as_mut()?;
        let mut orphans: Vec<(Rect, T)> = Vec::new();
        let removed = Self::remove_rec(root, rect, &pred, &mut orphans)?;
        self.len -= 1;
        // Collapse a root with a single inner child.
        loop {
            let shrink = match &mut self.root {
                Some(r) => match &mut r.kind {
                    Kind::Inner(children) if children.len() == 1 => children.pop(),
                    Kind::Inner(children) if children.is_empty() => {
                        self.root = None;
                        None
                    }
                    Kind::Leaf(entries) if entries.is_empty() => {
                        self.root = None;
                        None
                    }
                    _ => None,
                },
                None => None,
            };
            match shrink {
                Some(child) => self.root = Some(child),
                None => break,
            }
        }
        for (r, item) in orphans {
            self.len -= 1; // re-balance: insert will add it back
            self.insert(r, item);
        }
        Some(removed)
    }

    fn remove_rec<F: Fn(&T) -> bool>(
        node: &mut Node<T>,
        rect: &Rect,
        pred: &F,
        orphans: &mut Vec<(Rect, T)>,
    ) -> Option<T> {
        match &mut node.kind {
            Kind::Leaf(entries) => {
                let pos = entries.iter().position(|(r, t)| r == rect && pred(t))?;
                let (_, item) = entries.swap_remove(pos);
                node.recompute_bbox();
                Some(item)
            }
            Kind::Inner(children) => {
                let mut found = None;
                for i in 0..children.len() {
                    if !children[i].bbox.intersects(rect) {
                        continue;
                    }
                    if let Some(item) = Self::remove_rec(&mut children[i], rect, pred, orphans) {
                        // Dissolve underfull children, reinserting their
                        // contents at the top.
                        if children[i].len_entries() < MIN_ENTRIES {
                            let dead = children.swap_remove(i);
                            Self::collect_entries(dead, orphans);
                        }
                        found = Some(item);
                        break;
                    }
                }
                if found.is_some() {
                    node.recompute_bbox();
                }
                found
            }
        }
    }

    fn collect_entries(node: Node<T>, out: &mut Vec<(Rect, T)>) {
        match node.kind {
            Kind::Leaf(entries) => out.extend(entries),
            Kind::Inner(children) => {
                for c in children {
                    Self::collect_entries(c, out);
                }
            }
        }
    }

    /// Iterates over every `(rect, item)` pair (arbitrary order).
    pub fn for_each<F: FnMut(&Rect, &T)>(&self, mut f: F) {
        fn walk<'t, T, F: FnMut(&Rect, &'t T)>(node: &'t Node<T>, f: &mut F) {
            match &node.kind {
                Kind::Leaf(entries) => {
                    for (r, item) in entries {
                        f(r, item);
                    }
                }
                Kind::Inner(children) => {
                    for c in children {
                        walk(c, f);
                    }
                }
            }
        }
        if let Some(root) = &self.root {
            walk(root, &mut f);
        }
    }

    /// Depth of the tree (0 for empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 0;
        let mut cur = self.root.as_ref();
        while let Some(node) = cur {
            h += 1;
            cur = match &node.kind {
                Kind::Leaf(_) => None,
                Kind::Inner(children) => children.first(),
            };
        }
        h
    }

    /// Validates structural invariants (bbox containment, fill factors,
    /// uniform leaf depth); used by tests.
    pub fn check_invariants(&self) {
        fn walk<T>(node: &Node<T>, is_root: bool, depth: usize, leaf_depth: &mut Option<usize>) {
            match &node.kind {
                Kind::Leaf(entries) => {
                    assert!(is_root || entries.len() >= MIN_ENTRIES, "underfull leaf");
                    assert!(entries.len() <= MAX_ENTRIES, "overfull leaf");
                    for (r, _) in entries {
                        assert!(node.bbox.contains_rect(r), "leaf bbox does not cover entry");
                    }
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(*d, depth, "leaves at different depths"),
                    }
                }
                Kind::Inner(children) => {
                    assert!(
                        is_root || children.len() >= MIN_ENTRIES,
                        "underfull inner node"
                    );
                    assert!(children.len() <= MAX_ENTRIES, "overfull inner node");
                    assert!(!children.is_empty(), "empty inner node");
                    for c in children {
                        assert!(
                            node.bbox.contains_rect(&c.bbox),
                            "inner bbox does not cover child"
                        );
                        walk(c, false, depth + 1, leaf_depth);
                    }
                }
            }
        }
        if let Some(root) = &self.root {
            let mut leaf_depth = None;
            walk(root, true, 0, &mut leaf_depth);
        } else {
            assert_eq!(self.len, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(Rect, usize)> {
        // n x n integer lattice scaled into the unit square.
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let p = Point::new(i as f64 / n as f64, j as f64 / n as f64);
                out.push((Rect::point(p), i * n + j));
            }
        }
        out
    }

    #[test]
    fn insert_and_query() {
        let mut t = RTree::new();
        for (r, v) in grid_points(20) {
            t.insert(r, v);
        }
        t.check_invariants();
        assert_eq!(t.len(), 400);
        let q = Rect::from_coords(0.0, 0.0, 0.25, 0.25);
        let hits = t.query_rect(&q);
        // 6x6 lattice points fall in [0, 0.25] (i/20 <= 0.25 -> i in 0..=5).
        assert_eq!(hits.len(), 36);
    }

    #[test]
    fn bulk_load_matches_incremental_queries() {
        let pts = grid_points(25);
        let bulk = RTree::bulk_load(pts.clone());
        bulk.check_invariants();
        let mut inc = RTree::new();
        for (r, v) in pts {
            inc.insert(r, v);
        }
        inc.check_invariants();
        assert_eq!(bulk.len(), inc.len());
        let q = Rect::from_coords(0.3, 0.1, 0.62, 0.44);
        let mut a: Vec<usize> = bulk.query_rect(&q).into_iter().copied().collect();
        let mut b: Vec<usize> = inc.query_rect(&q).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn bulk_load_small_and_empty() {
        let t: RTree<u32> = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.nearest(Point::new(0.0, 0.0)).is_none());

        let t = RTree::bulk_load(vec![(Rect::point(Point::new(0.5, 0.5)), 7u32)]);
        t.check_invariants();
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.nearest(Point::new(0.0, 0.0)).map(|(_, v)| *v), Some(7));
    }

    #[test]
    fn count_in_circle_matches_brute_force() {
        let pts = grid_points(30);
        let t = RTree::bulk_load(pts.clone());
        let c = Circle::new(Point::new(0.41, 0.57), 0.23);
        let expect = pts
            .iter()
            .filter(|(r, _)| c.contains_point(r.center()))
            .count();
        assert_eq!(t.count_in_circle(&c), expect);
        assert!(expect > 0);
    }

    #[test]
    fn k_nearest_is_sorted_and_correct() {
        let pts = grid_points(15);
        let t = RTree::bulk_load(pts.clone());
        let q = Point::new(0.333, 0.777);
        let got = t.k_nearest(q, 10);
        assert_eq!(got.len(), 10);
        // Sorted ascending by distance.
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Matches brute force distances.
        let mut brute: Vec<f64> = pts.iter().map(|(r, _)| r.center().dist(q)).collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, (d, _)) in got.iter().enumerate() {
            assert!(
                (d - brute[i]).abs() < 1e-12,
                "rank {i}: {d} vs {}",
                brute[i]
            );
        }
    }

    #[test]
    fn k_nearest_with_k_larger_than_len() {
        let t = RTree::bulk_load(grid_points(3));
        assert_eq!(t.k_nearest(Point::new(0.0, 0.0), 100).len(), 9);
        assert_eq!(t.k_nearest(Point::new(0.0, 0.0), 0).len(), 0);
    }

    #[test]
    fn remove_keeps_invariants() {
        let pts = grid_points(12);
        let mut t = RTree::bulk_load(pts.clone());
        let total = pts.len();
        for (i, (r, v)) in pts.iter().enumerate() {
            let removed = t.remove(r, |x| x == v);
            assert_eq!(removed, Some(*v), "removing item {i}");
            assert_eq!(t.len(), total - i - 1);
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert!(t.bbox().is_none());
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = RTree::bulk_load(grid_points(5));
        let r = Rect::point(Point::new(10.0, 10.0));
        assert_eq!(t.remove(&r, |_| true), None);
        let existing = Rect::point(Point::new(0.0, 0.0));
        assert_eq!(t.remove(&existing, |_| false), None);
        assert_eq!(t.len(), 25);
    }

    #[test]
    fn for_each_visits_everything() {
        let t = RTree::bulk_load(grid_points(9));
        let mut seen = [false; 81];
        t.for_each(|_, &v| seen[v] = true);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn query_empty_region() {
        let t = RTree::bulk_load(grid_points(10));
        let q = Rect::from_coords(5.0, 5.0, 6.0, 6.0);
        assert!(t.query_rect(&q).is_empty());
    }

    #[test]
    fn duplicate_keys_supported() {
        let mut t = RTree::new();
        let p = Point::new(0.5, 0.5);
        for v in 0..50 {
            t.insert_point(p, v);
        }
        t.check_invariants();
        assert_eq!(t.len(), 50);
        assert_eq!(t.query_rect(&Rect::point(p)).len(), 50);
        let got = t.remove(&Rect::point(p), |&v| v == 17);
        assert_eq!(got, Some(17));
        assert_eq!(t.len(), 49);
    }
}
