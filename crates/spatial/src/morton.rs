//! Morton (Z-order) encoding and a linear BVH bulk-built over it.
//!
//! A Morton code interleaves the bits of a `(col, row)` pair so that sorting
//! by the code walks the plane along a Z-shaped space-filling curve: points
//! that are close in 2-D land close together in the 1-D order. The CTUP
//! substrate uses this in three places — contiguous Z-range shard
//! partitioning, Morton-ordered disk pages, and the [`Lbvh`] bulk-build
//! alternative to the R-tree STR load.
//!
//! Everything here is zero-dependency bit manipulation; the magic-mask
//! spread/compact pair is the standard O(log bits) construction.

use crate::circle::Circle;
use crate::convert;
use crate::point::Point;
use crate::rect::Rect;

/// A 2-D Morton (Z-order) code: the bits of a `(col, row)` pair interleaved
/// with the column in the even bit positions and the row in the odd ones.
///
/// Codes compare like positions along the Z-curve, so sorting by
/// `MortonCode` is sorting by spatial locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MortonCode(pub u64);

/// Spreads the 32 bits of `x` into the even bit positions of a `u64`
/// (`abc` → `0a0b0c`).
#[inline]
#[must_use]
pub fn spread(x: u32) -> u64 {
    let mut x = u64::from(x);
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    (x | (x << 1)) & 0x5555_5555_5555_5555
}

/// Inverse of [`spread`]: collects the even bit positions of `x` back into
/// a contiguous `u32`. Odd bits are ignored.
#[inline]
#[must_use]
pub fn compact(x: u64) -> u32 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    // Masked into u32 range above, so the narrowing is loss-free.
    u32::try_from(x).unwrap_or(u32::MAX)
}

/// Morton code of an integer `(col, row)` pair.
#[inline]
#[must_use]
pub fn encode(col: u32, row: u32) -> MortonCode {
    MortonCode(spread(col) | (spread(row) << 1))
}

/// Inverse of [`encode`]: the `(col, row)` pair of a code.
#[inline]
#[must_use]
pub fn decode(code: MortonCode) -> (u32, u32) {
    (compact(code.0), compact(code.0 >> 1))
}

/// Per-axis quantization resolution for [`quantize`]: points are snapped to
/// a `2^16 × 2^16` lattice over the bounding rect, which is far finer than
/// any grid granularity the monitor uses while keeping codes well inside
/// the 64-bit interleaved space.
pub const QUANT_BITS: u32 = 16;

/// Morton code of a continuous point within `bound`, quantized to a
/// `2^QUANT_BITS` lattice per axis. Points outside the bound clamp to the
/// boundary, mirroring [`crate::Grid::cell_of`].
#[must_use]
pub fn quantize(p: Point, bound: &Rect) -> MortonCode {
    let max = (1u32 << QUANT_BITS) - 1;
    let scale = f64::from(max);
    let w = bound.width();
    let h = bound.height();
    let cx = if w > 0.0 {
        ((p.x - bound.lo.x) / w * scale).floor()
    } else {
        0.0
    };
    let cy = if h > 0.0 {
        ((p.y - bound.lo.y) / h * scale).floor()
    } else {
        0.0
    };
    encode(convert::grid_coord(cx, max), convert::grid_coord(cy, max))
}

/// Index of the last element of the left half when splitting the sorted
/// code range `codes[first..=last]` at its highest differing bit — the
/// classic top-down LBVH split (Karras). Equal-code ranges split in the
/// middle so degenerate inputs still produce a balanced tree.
#[must_use]
pub fn find_split(codes: &[MortonCode], first: usize, last: usize) -> usize {
    debug_assert!(first < last && last < codes.len());
    let first_code = codes[first].0;
    let last_code = codes[last].0;
    if first_code == last_code {
        return usize::midpoint(first, last);
    }
    let common_prefix = (first_code ^ last_code).leading_zeros();
    // Binary search for the furthest element sharing `common_prefix` bits
    // with the first one.
    let mut split = first;
    let mut step = last - first;
    loop {
        step = step.div_ceil(2);
        let probe = split + step;
        if probe < last && (first_code ^ codes[probe].0).leading_zeros() > common_prefix {
            split = probe;
        }
        if step <= 1 {
            break;
        }
    }
    split
}

/// Leaves hold at most this many items; small enough that the per-leaf
/// linear scan stays cheap, large enough to keep the node count down.
const LEAF_SIZE: usize = 8;

#[derive(Debug, Clone)]
enum LbvhKind {
    /// `items[lo..hi]` range of the sorted item vector.
    Leaf { lo: usize, hi: usize },
    /// Indices of the two children in the node vector.
    Inner { left: usize, right: usize },
}

#[derive(Debug, Clone)]
struct LbvhNode {
    bbox: Rect,
    kind: LbvhKind,
}

/// A linear bounding volume hierarchy over axis-aligned rectangles.
///
/// Built in one pass: items are sorted by the Morton code of their center
/// point, then the hierarchy is carved top-down with [`find_split`] — no
/// incremental insertion, no rebalancing. For the static place set this is
/// a faster bulk-build path than the R-tree STR load, and queries mirror
/// the [`crate::RTree`] API so the two stay differentially testable.
#[derive(Debug, Clone)]
pub struct Lbvh<T> {
    nodes: Vec<LbvhNode>,
    items: Vec<(Rect, T)>,
    root: Option<usize>,
}

impl<T> Default for Lbvh<T> {
    fn default() -> Self {
        Lbvh {
            nodes: Vec::new(),
            items: Vec::new(),
            root: None,
        }
    }
}

impl<T> Lbvh<T> {
    /// Bulk-builds the hierarchy over `items`, consuming them.
    #[must_use]
    pub fn bulk_load(mut items: Vec<(Rect, T)>) -> Self {
        if items.is_empty() {
            return Lbvh::default();
        }
        let bound = items.iter().fold(Rect::empty(), |acc, (r, _)| acc.union(r));
        let mut keyed: Vec<(MortonCode, usize)> = items
            .iter()
            .enumerate()
            .map(|(i, (r, _))| (quantize(r.center(), &bound), i))
            .collect();
        keyed.sort_unstable_by_key(|&(code, i)| (code, i));
        // Reorder the items into Morton order without cloning payloads.
        let mut slots: Vec<Option<(Rect, T)>> = items.drain(..).map(Some).collect();
        let sorted: Vec<(Rect, T)> = keyed.iter().filter_map(|&(_, i)| slots[i].take()).collect();
        let codes: Vec<MortonCode> = keyed.iter().map(|&(code, _)| code).collect();

        let mut tree = Lbvh {
            nodes: Vec::with_capacity(2 * sorted.len() / LEAF_SIZE + 2),
            items: sorted,
            root: None,
        };
        let last = tree.items.len() - 1;
        let root = tree.build_range(&codes, 0, last);
        tree.root = Some(root);
        tree
    }

    /// Builds the node covering `codes[first..=last]`, returning its index.
    fn build_range(&mut self, codes: &[MortonCode], first: usize, last: usize) -> usize {
        if last - first < LEAF_SIZE {
            let bbox = self.items[first..=last]
                .iter()
                .fold(Rect::empty(), |acc, (r, _)| acc.union(r));
            self.nodes.push(LbvhNode {
                bbox,
                kind: LbvhKind::Leaf {
                    lo: first,
                    hi: last + 1,
                },
            });
            return self.nodes.len() - 1;
        }
        let split = find_split(codes, first, last);
        let left = self.build_range(codes, first, split);
        let right = self.build_range(codes, split + 1, last);
        let bbox = self.nodes[left].bbox.union(&self.nodes[right].bbox);
        self.nodes.push(LbvhNode {
            bbox,
            kind: LbvhKind::Inner { left, right },
        });
        self.nodes.len() - 1
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the hierarchy is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Bounding box of everything stored, if any.
    pub fn bbox(&self) -> Option<Rect> {
        self.root.map(|r| self.nodes[r].bbox)
    }

    /// Calls `f` for every item whose rectangle intersects `rect`.
    pub fn for_each_in_rect<'t, F: FnMut(&'t Rect, &'t T)>(&'t self, rect: &Rect, mut f: F) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            if !node.bbox.intersects(rect) {
                continue;
            }
            match node.kind {
                LbvhKind::Leaf { lo, hi } => {
                    for (r, item) in &self.items[lo..hi] {
                        if r.intersects(rect) {
                            f(r, item);
                        }
                    }
                }
                LbvhKind::Inner { left, right } => {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
    }

    /// Collects references to all items whose rectangle intersects `rect`.
    pub fn query_rect(&self, rect: &Rect) -> Vec<&T> {
        let mut out = Vec::new();
        self.for_each_in_rect(rect, |_, item| out.push(item));
        out
    }

    /// Calls `f` for every **point-keyed** item inside the closed disk
    /// (for extended keys: "key center inside the disk"), mirroring
    /// [`crate::RTree::for_each_in_circle`].
    pub fn for_each_in_circle<'t, F: FnMut(Point, &'t T)>(&'t self, circle: &Circle, mut f: F) {
        self.for_each_in_rect(&circle.bbox(), |r, item| {
            let p = r.center();
            if circle.contains_point(p) {
                f(p, item);
            }
        });
    }

    /// Number of point-keyed items inside the closed disk.
    pub fn count_in_circle(&self, circle: &Circle) -> usize {
        let mut n = 0;
        self.for_each_in_circle(circle, |_, _| n += 1);
        n
    }

    /// Validates structural invariants (bbox containment, full coverage);
    /// used by tests.
    pub fn check_invariants(&self) {
        let Some(root) = self.root else {
            assert!(self.items.is_empty() && self.nodes.is_empty());
            return;
        };
        let mut covered = vec![false; self.items.len()];
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            match node.kind {
                LbvhKind::Leaf { lo, hi } => {
                    assert!(lo < hi && hi <= self.items.len(), "bad leaf range");
                    for (i, (r, _)) in self.items[lo..hi].iter().enumerate() {
                        assert!(node.bbox.contains_rect(r), "leaf bbox does not cover item");
                        assert!(!covered[lo + i], "item covered twice");
                        covered[lo + i] = true;
                    }
                }
                LbvhKind::Inner { left, right } => {
                    for child in [left, right] {
                        assert!(
                            node.bbox.contains_rect(&self.nodes[child].bbox),
                            "inner bbox does not cover child"
                        );
                    }
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "leaf ranges do not cover items");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtree::RTree;

    #[test]
    fn spread_compact_roundtrip() {
        for x in [0u32, 1, 2, 0xFFFF, 0x1234_5678, u32::MAX] {
            assert_eq!(compact(spread(x)), x);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for &(c, r) in &[(0, 0), (1, 0), (0, 1), (65_535, 1), (123, 4_567)] {
            assert_eq!(decode(encode(c, r)), (c, r));
        }
    }

    #[test]
    fn encode_is_bit_interleave() {
        // (col=0b11, row=0b01) -> 0b0111: row bits odd, col bits even.
        assert_eq!(encode(0b11, 0b01).0, 0b0111);
        assert_eq!(encode(0b00, 0b10).0, 0b1000);
    }

    #[test]
    fn z_order_walks_quadrants() {
        // The first four codes of a 2x2 grid walk the Z: (0,0) (1,0) (0,1) (1,1).
        let mut cells = [(0u32, 0u32), (1, 0), (0, 1), (1, 1)];
        cells.sort_by_key(|&(c, r)| encode(c, r));
        assert_eq!(cells, [(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn find_split_splits_at_top_bit() {
        let codes: Vec<MortonCode> = [0u64, 1, 2, 3, 8, 9, 10]
            .iter()
            .map(|&c| MortonCode(c))
            .collect();
        // Highest differing bit between 0 and 10 is bit 3: 0..=3 vs 8..=10.
        assert_eq!(find_split(&codes, 0, codes.len() - 1), 3);
    }

    #[test]
    fn find_split_equal_codes_bisect() {
        let codes = vec![MortonCode(7); 9];
        assert_eq!(find_split(&codes, 0, 8), 4);
    }

    #[test]
    fn quantize_clamps_and_orders() {
        let bound = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let inside = quantize(Point::new(0.5, 0.5), &bound);
        let outside = quantize(Point::new(2.0, 2.0), &bound);
        let corner = quantize(Point::new(1.0, 1.0), &bound);
        assert_eq!(outside, corner);
        assert!(inside < corner);
    }

    fn lattice(n: usize) -> Vec<(Rect, usize)> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let p = Point::new(i as f64 / n as f64, j as f64 / n as f64);
                out.push((Rect::point(p), i * n + j));
            }
        }
        out
    }

    #[test]
    fn lbvh_empty_and_single() {
        let t: Lbvh<u32> = Lbvh::bulk_load(vec![]);
        assert!(t.is_empty());
        assert!(t.bbox().is_none());
        t.check_invariants();

        let t = Lbvh::bulk_load(vec![(Rect::point(Point::new(0.5, 0.5)), 7u32)]);
        t.check_invariants();
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.query_rect(&Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
            vec![&7]
        );
    }

    #[test]
    fn lbvh_matches_rtree_rect_queries() {
        let pts = lattice(25);
        let lbvh = Lbvh::bulk_load(pts.clone());
        lbvh.check_invariants();
        let rtree = RTree::bulk_load(pts);
        for rect in [
            Rect::from_coords(0.0, 0.0, 0.25, 0.25),
            Rect::from_coords(0.3, 0.1, 0.62, 0.44),
            Rect::from_coords(0.9, 0.9, 2.0, 2.0),
            Rect::from_coords(5.0, 5.0, 6.0, 6.0),
        ] {
            let mut a: Vec<usize> = lbvh.query_rect(&rect).into_iter().copied().collect();
            let mut b: Vec<usize> = rtree.query_rect(&rect).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "rect {rect:?}");
        }
    }

    #[test]
    fn lbvh_matches_rtree_circle_counts() {
        let pts = lattice(30);
        let lbvh = Lbvh::bulk_load(pts.clone());
        let rtree = RTree::bulk_load(pts);
        for &(x, y, r) in &[(0.41, 0.57, 0.23), (0.0, 0.0, 0.5), (0.9, 0.1, 0.05)] {
            let c = Circle::new(Point::new(x, y), r);
            assert_eq!(lbvh.count_in_circle(&c), rtree.count_in_circle(&c));
        }
    }

    #[test]
    fn lbvh_handles_duplicate_positions() {
        let p = Point::new(0.5, 0.5);
        let items: Vec<(Rect, u32)> = (0..50).map(|v| (Rect::point(p), v)).collect();
        let t = Lbvh::bulk_load(items);
        t.check_invariants();
        assert_eq!(t.query_rect(&Rect::point(p)).len(), 50);
    }
}
