//! Checked conversions between the workspace's id/index/counter spaces.
//!
//! Cell, place and unit ids are dense `u32`s that index flat vectors, and
//! metrics counters are `u64`s fed from `usize` lengths. A bare `as` cast
//! between those spaces wraps silently on overflow and corrupts an id into
//! a *different valid id* — the worst possible failure mode for a spatial
//! index. Every narrowing or widening conversion therefore goes through
//! one of these helpers (enforced by `cargo xtask lint` rule L003): they
//! are loss-free in every reachable configuration, saturate instead of
//! wrapping if an unreachable one is ever reached, and flag it loudly in
//! debug builds.

/// Widens a `u32` id into a `usize` vector index.
///
/// Loss-free on every supported platform (`usize` is at least 32 bits);
/// compiles to a no-op on 64-bit targets.
#[inline]
#[must_use]
pub fn index(id: u32) -> usize {
    usize::try_from(id).unwrap_or(usize::MAX)
}

/// Narrows a `usize` count or index into the dense `u32` id space.
///
/// Id spaces are dense in `0..n` where `n` is a cell/place/unit count far
/// below `u32::MAX`; an overflow here means the caller built an impossibly
/// large universe, so debug builds assert and release builds saturate
/// (yielding an out-of-range id that fails fast) rather than wrapping into
/// a *valid* foreign id.
#[inline]
#[must_use]
pub fn id32(n: usize) -> u32 {
    debug_assert!(u32::try_from(n).is_ok(), "id space overflow: {n}");
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Widens a `usize` length into a `u64` metrics counter. Loss-free on every
/// supported platform.
#[inline]
#[must_use]
pub fn count64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Narrows a `u128` nanosecond total (`Duration::as_nanos`) into a `u64`
/// counter, saturating after ~584 years of accumulated runtime.
#[inline]
#[must_use]
pub fn nanos64(nanos: u128) -> u64 {
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

/// Truncates an already-floored grid coordinate into the `u32` axis space,
/// clamping to `0..=max_index`. NaN and negative inputs clamp to 0 so every
/// point maps to a boundary cell.
#[inline]
#[must_use]
pub fn grid_coord(coord: f64, max_index: u32) -> u32 {
    if !matches!(coord.partial_cmp(&0.0), Some(std::cmp::Ordering::Greater)) {
        return 0; // NaN or non-positive
    }
    if coord >= f64::from(max_index) {
        return max_index;
    }
    // In (0, max_index) by the guards above, so the truncation is exact for
    // floored inputs and in-range for all others.
    coord as u32 // ctup-lint: allow(L003, the single blessed float→id truncation site, range-guarded above)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_is_lossless() {
        assert_eq!(index(0), 0);
        assert_eq!(index(u32::MAX), u32::MAX as usize);
        assert_eq!(count64(0), 0);
        assert_eq!(count64(usize::MAX), usize::MAX as u64);
    }

    #[test]
    fn id32_roundtrips_dense_ids() {
        for n in [0usize, 1, 1 << 20, u32::MAX as usize] {
            assert_eq!(id32(n) as usize, n);
        }
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn id32_saturates_in_release() {
        assert_eq!(id32(usize::MAX), u32::MAX);
    }

    #[test]
    fn nanos64_saturates() {
        assert_eq!(nanos64(42), 42);
        assert_eq!(nanos64(u128::MAX), u64::MAX);
    }

    #[test]
    fn grid_coord_clamps() {
        assert_eq!(grid_coord(f64::NAN, 9), 0);
        assert_eq!(grid_coord(-3.0, 9), 0);
        assert_eq!(grid_coord(0.0, 9), 0);
        assert_eq!(grid_coord(4.0, 9), 4);
        assert_eq!(grid_coord(9.0, 9), 9);
        assert_eq!(grid_coord(1e12, 9), 9);
    }
}
