//! Cell layout: the 1-D order in which grid cells are ranked.
//!
//! Shard partitioning, disk page packing, and prefetch batching all need a
//! total order over cells. [`CellLayout::RowMajor`] is the historical flat
//! order (`row * gx + col` — the [`crate::CellId`] value itself) and serves
//! as the differential oracle; [`CellLayout::ZOrder`] ranks cells by the
//! Morton code of their `(col, row)` so spatially adjacent cells are
//! adjacent in rank, which keeps a protecting circle's illuminated cell set
//! inside ~1 contiguous rank range.

use crate::grid::{CellId, Grid};
use crate::morton;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A total order over grid cells, selecting how cells map to shards and
/// disk pages. The enum is carried in checkpoints (as its [`fmt::Display`]
/// name) so recovery re-binds to the same physical layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CellLayout {
    /// Flat `row * gx + col` order — the layout every store used before
    /// Z-ordering landed, kept as the differential oracle.
    #[default]
    RowMajor,
    /// Morton (Z-order) rank of `(col, row)`: spatially adjacent cells get
    /// adjacent ranks.
    ZOrder,
}

impl CellLayout {
    /// All layouts, for sweeps and CLI error messages.
    pub const ALL: [CellLayout; 2] = [CellLayout::RowMajor, CellLayout::ZOrder];

    /// Rank of `cell` in this layout's total order. Ranks are unique per
    /// cell but not dense for [`CellLayout::ZOrder`] on non-square or
    /// non-power-of-two grids — use [`CellLayout::order`] for a dense
    /// enumeration.
    #[inline]
    #[must_use]
    pub fn rank(self, grid: &Grid, cell: CellId) -> u64 {
        match self {
            CellLayout::RowMajor => u64::from(cell.0),
            CellLayout::ZOrder => {
                let (col, row) = grid.col_row(cell);
                morton::encode(col, row).0
            }
        }
    }

    /// Every cell of `grid`, sorted by this layout's rank: the order pages
    /// are packed on disk and shard ranges are carved in.
    #[must_use]
    pub fn order(self, grid: &Grid) -> Vec<CellId> {
        let mut cells: Vec<CellId> = grid.cells().collect();
        if self != CellLayout::RowMajor {
            cells.sort_by_key(|&c| self.rank(grid, c));
        }
        cells
    }

    /// Stable lower-case name, used by the CLI flag and the checkpoint tag.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CellLayout::RowMajor => "rowmajor",
            CellLayout::ZOrder => "zorder",
        }
    }
}

impl fmt::Display for CellLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CellLayout {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rowmajor" => Ok(CellLayout::RowMajor),
            "zorder" => Ok(CellLayout::ZOrder),
            other => Err(format!(
                "unknown cell layout {other:?} (expected rowmajor or zorder)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowmajor_rank_is_identity() {
        let g = Grid::unit_square(7);
        for cell in g.cells() {
            assert_eq!(CellLayout::RowMajor.rank(&g, cell), u64::from(cell.0));
        }
        assert_eq!(
            CellLayout::RowMajor.order(&g),
            g.cells().collect::<Vec<_>>()
        );
    }

    #[test]
    fn zorder_order_is_a_permutation() {
        for g in [Grid::unit_square(8), Grid::unit_square(10)] {
            let order = CellLayout::ZOrder.order(&g);
            assert_eq!(order.len(), g.num_cells());
            let mut seen = vec![false; g.num_cells()];
            for cell in order {
                assert!(!seen[cell.index()], "cell {cell:?} ranked twice");
                seen[cell.index()] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn zorder_ranks_are_unique_and_sorted() {
        let g = Grid::unit_square(10);
        let order = CellLayout::ZOrder.order(&g);
        let ranks: Vec<u64> = order
            .iter()
            .map(|&c| CellLayout::ZOrder.rank(&g, c))
            .collect();
        for w in ranks.windows(2) {
            assert!(w[0] < w[1], "ranks not strictly increasing");
        }
    }

    #[test]
    fn zorder_first_cells_walk_the_z() {
        let g = Grid::unit_square(4);
        let order = CellLayout::ZOrder.order(&g);
        let coords: Vec<(u32, u32)> = order.iter().map(|&c| g.col_row(c)).collect();
        assert_eq!(&coords[..4], &[(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn names_roundtrip() {
        for layout in CellLayout::ALL {
            assert_eq!(layout.name().parse::<CellLayout>(), Ok(layout));
            assert_eq!(format!("{layout}").parse::<CellLayout>(), Ok(layout));
        }
        assert!("hilbert".parse::<CellLayout>().is_err());
    }
}
