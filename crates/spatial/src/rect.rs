//! Axis-aligned rectangles (grid cells, R-tree bounding boxes, place extents).

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A closed axis-aligned rectangle `[lo.x, hi.x] × [lo.y, hi.y]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    /// Panics in debug builds if the corners are not ordered.
    #[inline]
    pub fn new(lo: Point, hi: Point) -> Self {
        debug_assert!(
            lo.x <= hi.x && lo.y <= hi.y,
            "malformed rect {lo:?}..{hi:?}"
        );
        Rect { lo, hi }
    }

    /// Creates a rectangle from the coordinates of its corners.
    #[inline]
    pub fn from_coords(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// The degenerate rectangle covering a single point.
    #[inline]
    pub fn point(p: Point) -> Self {
        Rect { lo: p, hi: p }
    }

    /// A rectangle that behaves as the identity under [`Rect::union`]:
    /// its bounds are inverted so any union replaces them.
    #[inline]
    pub fn empty() -> Self {
        Rect {
            lo: Point::new(f64::INFINITY, f64::INFINITY),
            hi: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Area; zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        let w = self.width();
        let h = self.height();
        if w <= 0.0 || h <= 0.0 {
            0.0
        } else {
            w * h
        }
    }

    /// Half-perimeter, the classic R-tree "margin" measure.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width().max(0.0) + self.height().max(0.0)
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.lo.midpoint(self.hi)
    }

    /// Whether `p` lies inside the closed rectangle.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Whether `other` lies entirely inside `self` (closed containment).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// Whether the two closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Smallest rectangle covering both inputs.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Grows the rectangle by `r` on every side.
    #[inline]
    pub fn inflate(&self, r: f64) -> Rect {
        Rect {
            lo: Point::new(self.lo.x - r, self.lo.y - r),
            hi: Point::new(self.hi.x + r, self.hi.y + r),
        }
    }

    /// Squared distance from `p` to the closest point of the rectangle;
    /// zero when `p` is inside.
    #[inline]
    pub fn min_dist2(&self, p: Point) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        dx * dx + dy * dy
    }

    /// Squared distance from `p` to the farthest point of the rectangle
    /// (always one of the four corners).
    #[inline]
    pub fn max_dist2(&self, p: Point) -> f64 {
        let dx = (p.x - self.lo.x).abs().max((p.x - self.hi.x).abs());
        let dy = (p.y - self.lo.y).abs().max((p.y - self.hi.y).abs());
        dx * dx + dy * dy
    }

    /// The four corners, counter-clockwise from `lo`.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            self.lo,
            Point::new(self.hi.x, self.lo.y),
            self.hi,
            Point::new(self.lo.x, self.hi.y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::from_coords(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn containment_is_closed() {
        let r = unit();
        assert!(r.contains_point(Point::new(0.0, 0.0)));
        assert!(r.contains_point(Point::new(1.0, 1.0)));
        assert!(r.contains_point(Point::new(0.5, 0.5)));
        assert!(!r.contains_point(Point::new(1.0 + 1e-12, 0.5)));
    }

    #[test]
    fn intersects_touching_edges() {
        let a = unit();
        let b = Rect::from_coords(1.0, 0.0, 2.0, 1.0);
        let c = Rect::from_coords(1.5, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn union_covers_both() {
        let a = unit();
        let b = Rect::from_coords(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::from_coords(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn empty_is_union_identity() {
        let a = Rect::from_coords(0.25, 0.5, 0.75, 0.9);
        assert_eq!(Rect::empty().union(&a), a);
        assert_eq!(a.union(&Rect::empty()), a);
        assert_eq!(Rect::empty().area(), 0.0);
    }

    #[test]
    fn min_max_dist() {
        let r = unit();
        // Inside: min 0, max to farthest corner.
        assert_eq!(r.min_dist2(Point::new(0.5, 0.5)), 0.0);
        assert_eq!(r.max_dist2(Point::new(0.0, 0.0)), 2.0);
        // Outside along x.
        assert_eq!(r.min_dist2(Point::new(2.0, 0.5)), 1.0);
        // Outside diagonally.
        assert_eq!(r.min_dist2(Point::new(2.0, 2.0)), 2.0);
    }

    #[test]
    fn area_and_margin() {
        let r = Rect::from_coords(0.0, 0.0, 2.0, 3.0);
        assert_eq!(r.area(), 6.0);
        assert_eq!(r.margin(), 5.0);
        assert_eq!(Rect::point(Point::new(1.0, 1.0)).area(), 0.0);
    }

    #[test]
    fn corners_lie_on_boundary() {
        let r = Rect::from_coords(-1.0, -2.0, 3.0, 4.0);
        for c in r.corners() {
            assert!(r.contains_point(c));
        }
    }

    #[test]
    fn inflate_grows_every_side() {
        let r = unit().inflate(0.5);
        assert_eq!(r, Rect::from_coords(-0.5, -0.5, 1.5, 1.5));
    }
}
