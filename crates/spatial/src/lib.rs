//! Spatial substrate for the CTUP reproduction: geometry primitives, the
//! N/P/F circle–cell classifier that drives lower-bound maintenance, uniform
//! grid partitioning, a from-scratch R-tree, and a moving-object grid index.
//!
//! Everything here is independent of the CTUP algorithms and reusable for
//! other continuous spatial queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circle;
pub mod convert;
pub mod grid;
pub mod layout;
pub mod morton;
pub mod point;
pub mod rect;
pub mod relation;
pub mod rtree;
pub mod unit_index;

pub use circle::Circle;
pub use grid::{CellId, Grid};
pub use layout::CellLayout;
pub use morton::{Lbvh, MortonCode};
pub use point::Point;
pub use rect::Rect;
pub use relation::Relation;
pub use rtree::RTree;
pub use unit_index::UnitGridIndex;
