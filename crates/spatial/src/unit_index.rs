//! A bucketed grid index over moving objects (the protecting units).
//!
//! Computing a place's actual protection `AP(p)` requires counting the units
//! within distance `R` of `p`. Units move on every update, so instead of a
//! balanced tree we keep the classic moving-object grid: one bucket of unit
//! ids per cell, updated in O(1) per location change.

use crate::circle::Circle;
use crate::grid::{CellId, Grid};
use crate::point::Point;

/// A grid-bucket index mapping each cell to the ids of the units inside it.
///
/// `U` is the unit-id type (any copyable id, typically `u32`).
#[derive(Debug, Clone)]
pub struct UnitGridIndex<U: Copy + PartialEq> {
    grid: Grid,
    buckets: Vec<Vec<(U, Point)>>,
    len: usize,
}

impl<U: Copy + PartialEq> UnitGridIndex<U> {
    /// Creates an empty index over `grid`.
    pub fn new(grid: Grid) -> Self {
        let buckets = vec![Vec::new(); grid.num_cells()];
        UnitGridIndex {
            grid,
            buckets,
            len: 0,
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of indexed units.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a unit at `pos`. The caller must not insert the same id twice
    /// (use [`UnitGridIndex::relocate`] for moves).
    pub fn insert(&mut self, id: U, pos: Point) {
        let cell = self.grid.cell_of(pos);
        self.buckets[cell.index()].push((id, pos));
        self.len += 1;
    }

    /// Removes a unit previously inserted at `pos`; returns whether it was
    /// found.
    pub fn remove(&mut self, id: U, pos: Point) -> bool {
        let cell = self.grid.cell_of(pos);
        let bucket = &mut self.buckets[cell.index()];
        if let Some(i) = bucket.iter().position(|&(u, _)| u == id) {
            bucket.swap_remove(i);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Moves a unit from `old` to `new` in O(1) bucket operations.
    ///
    /// # Panics
    /// Panics if the unit is not indexed at `old`.
    pub fn relocate(&mut self, id: U, old: Point, new: Point) {
        let from = self.grid.cell_of(old);
        let to = self.grid.cell_of(new);
        if from == to {
            let bucket = &mut self.buckets[from.index()];
            #[allow(clippy::expect_used)]
            let slot = bucket
                .iter_mut()
                .find(|(u, _)| *u == id)
                // ctup-lint: allow(L001, documented `# Panics` contract — the caller promises the unit is indexed at `old`, same as the assert! on the cross-cell path below)
                .expect("relocate: unit not found in old cell");
            slot.1 = new;
        } else {
            assert!(self.remove(id, old), "relocate: unit not found in old cell");
            self.insert(id, new);
        }
    }

    /// Calls `f` for each unit within the closed disk.
    pub fn for_each_within<F: FnMut(U, Point)>(&self, circle: &Circle, mut f: F) {
        let r2 = circle.radius * circle.radius;
        for cell in self.grid.cells_overlapping_circle(circle) {
            for &(id, pos) in &self.buckets[cell.index()] {
                if circle.center.dist2(pos) <= r2 {
                    f(id, pos);
                }
            }
        }
    }

    /// Number of units within the closed disk — this is `AP(p)` for a place
    /// at the disk's center when the disk radius is the protection range.
    pub fn count_within(&self, circle: &Circle) -> u32 {
        let mut n = 0;
        self.for_each_within(circle, |_, _| n += 1);
        n
    }

    /// Calls `f` for each unit in a cell's bucket.
    pub fn for_each_in_cell<F: FnMut(U, Point)>(&self, cell: CellId, mut f: F) {
        for &(id, pos) in &self.buckets[cell.index()] {
            f(id, pos);
        }
    }

    /// Iterates over all `(id, position)` pairs in bucket order.
    pub fn for_each<F: FnMut(U, Point)>(&self, mut f: F) {
        for bucket in &self.buckets {
            for &(id, pos) in bucket {
                f(id, pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_with(units: &[(u32, Point)]) -> UnitGridIndex<u32> {
        let mut idx = UnitGridIndex::new(Grid::unit_square(10));
        for &(id, p) in units {
            idx.insert(id, p);
        }
        idx
    }

    #[test]
    fn insert_count_remove() {
        let units = [
            (0, Point::new(0.1, 0.1)),
            (1, Point::new(0.15, 0.12)),
            (2, Point::new(0.9, 0.9)),
        ];
        let mut idx = index_with(&units);
        assert_eq!(idx.len(), 3);
        let probe = Circle::new(Point::new(0.12, 0.11), 0.1);
        assert_eq!(idx.count_within(&probe), 2);
        assert!(idx.remove(1, units[1].1));
        assert_eq!(idx.count_within(&probe), 1);
        assert!(!idx.remove(1, units[1].1));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn relocate_within_and_across_cells() {
        let mut idx = index_with(&[(7, Point::new(0.05, 0.05))]);
        // Same-cell move.
        idx.relocate(7, Point::new(0.05, 0.05), Point::new(0.06, 0.07));
        assert_eq!(
            idx.count_within(&Circle::new(Point::new(0.06, 0.07), 0.001)),
            1
        );
        // Cross-cell move.
        idx.relocate(7, Point::new(0.06, 0.07), Point::new(0.95, 0.95));
        assert_eq!(
            idx.count_within(&Circle::new(Point::new(0.06, 0.07), 0.02)),
            0
        );
        assert_eq!(
            idx.count_within(&Circle::new(Point::new(0.95, 0.95), 0.02)),
            1
        );
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn count_matches_brute_force_on_random_config() {
        // Deterministic pseudo-random placement without external crates.
        let mut state = 0x243F6A8885A308D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let units: Vec<(u32, Point)> = (0..500).map(|i| (i, Point::new(next(), next()))).collect();
        let idx = index_with(&units);
        for _ in 0..50 {
            let c = Circle::new(Point::new(next(), next()), 0.05 + next() * 0.2);
            let brute = units.iter().filter(|(_, p)| c.contains_point(*p)).count() as u32;
            assert_eq!(idx.count_within(&c), brute);
        }
    }

    #[test]
    fn circle_straddling_space_boundary() {
        let idx = index_with(&[(0, Point::new(0.01, 0.01)), (1, Point::new(0.99, 0.99))]);
        // Circle centered outside the space still finds boundary units.
        let c = Circle::new(Point::new(-0.05, -0.05), 0.12);
        assert_eq!(idx.count_within(&c), 1);
    }

    #[test]
    fn for_each_visits_all() {
        let units: Vec<(u32, Point)> = (0..20)
            .map(|i| (i, Point::new(i as f64 / 20.0, 0.5)))
            .collect();
        let idx = index_with(&units);
        let mut seen = [false; 20];
        idx.for_each(|id, _| seen[id as usize] = true);
        assert!(seen.iter().all(|&b| b));
    }
}
