//! Property-based tests of the spatial substrate: the R-tree must agree
//! with brute force under arbitrary data and queries, the grid covering
//! iterators must be exact, and the N/P/F classification must be
//! consistent with point membership.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup_spatial::{Circle, Grid, Point, RTree, Rect, Relation};
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (point(), point()).prop_map(|(a, b)| {
        Rect::from_coords(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    })
}

proptest! {
    // Miri runs the same properties with a token case count: enough to
    // exercise every code path under the interpreter without taking hours.
    #![proptest_config(ProptestConfig {
        cases: if cfg!(miri) { 4 } else { 128 },
        ..ProptestConfig::default()
    })]

    #[test]
    fn rtree_range_query_matches_brute_force(
        pts in prop::collection::vec(point(), 0..300),
        q in rect(),
    ) {
        let items: Vec<(Rect, usize)> =
            pts.iter().enumerate().map(|(i, &p)| (Rect::point(p), i)).collect();
        let tree = RTree::bulk_load(items);
        tree.check_invariants();
        let mut got: Vec<usize> = tree.query_rect(&q).into_iter().copied().collect();
        got.sort_unstable();
        let expect: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_point(**p))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn rtree_incremental_equals_bulk(
        pts in prop::collection::vec(point(), 1..150),
        q in rect(),
    ) {
        let items: Vec<(Rect, usize)> =
            pts.iter().enumerate().map(|(i, &p)| (Rect::point(p), i)).collect();
        let bulk = RTree::bulk_load(items.clone());
        let mut inc = RTree::new();
        for (r, v) in items {
            inc.insert(r, v);
        }
        inc.check_invariants();
        let mut a: Vec<usize> = bulk.query_rect(&q).into_iter().copied().collect();
        let mut b: Vec<usize> = inc.query_rect(&q).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rtree_k_nearest_matches_brute_force(
        pts in prop::collection::vec(point(), 1..200),
        q in point(),
        k in 1usize..20,
    ) {
        let items: Vec<(Rect, usize)> =
            pts.iter().enumerate().map(|(i, &p)| (Rect::point(p), i)).collect();
        let tree = RTree::bulk_load(items);
        let got = tree.k_nearest(q, k);
        let mut brute: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        brute.truncate(k);
        prop_assert_eq!(got.len(), brute.len());
        for ((d, _), expect) in got.iter().zip(&brute) {
            prop_assert!((d - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn rtree_remove_keeps_queries_exact(
        pts in prop::collection::vec(point(), 2..120),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 1..40),
        q in rect(),
    ) {
        let mut alive: Vec<bool> = vec![true; pts.len()];
        let mut tree = RTree::bulk_load(
            pts.iter().enumerate().map(|(i, &p)| (Rect::point(p), i)).collect(),
        );
        for idx in removals {
            let i = idx.index(pts.len());
            let removed = tree.remove(&Rect::point(pts[i]), |&v| v == i);
            prop_assert_eq!(removed.is_some(), alive[i]);
            alive[i] = false;
            tree.check_invariants();
        }
        let mut got: Vec<usize> = tree.query_rect(&q).into_iter().copied().collect();
        got.sort_unstable();
        let expect: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(i, p)| alive[*i] && q.contains_point(**p))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn grid_cells_overlapping_circle_is_exact(
        center in point(),
        radius in 0.001f64..0.5,
        g in 1u32..16,
    ) {
        let grid = Grid::unit_square(g);
        let circle = Circle::new(center, radius);
        let covered: Vec<_> = grid.cells_overlapping_circle(&circle).collect();
        for cell in grid.cells() {
            let expect = circle.intersects_rect(&grid.cell_rect(cell));
            prop_assert_eq!(covered.contains(&cell), expect, "cell {:?}", cell);
        }
    }

    #[test]
    fn grid_cell_of_lands_in_cell_rect(p in point(), g in 1u32..32) {
        let grid = Grid::unit_square(g);
        let cell = grid.cell_of(p);
        prop_assert!(grid.cell_rect(cell).contains_point(p));
    }

    #[test]
    fn relation_classification_is_consistent_with_membership(
        center in point(),
        radius in 0.001f64..0.6,
        cell in rect(),
        samples in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10),
    ) {
        prop_assume!(cell.width() > 0.0 && cell.height() > 0.0);
        let circle = Circle::new(center, radius);
        let relation = Relation::classify(&circle, &cell);
        for (fx, fy) in samples {
            let p = Point::new(
                cell.lo.x + fx * cell.width(),
                cell.lo.y + fy * cell.height(),
            );
            match relation {
                Relation::Full => prop_assert!(circle.contains_point(p)),
                Relation::None => prop_assert!(!circle.contains_point(p)),
                Relation::Partial => {}
            }
        }
    }
}
