//! Property-based tests of the spatial substrate: the R-tree must agree
//! with brute force under arbitrary data and queries, the grid covering
//! iterators must be exact, and the N/P/F classification must be
//! consistent with point membership.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup_spatial::{morton, CellLayout, Circle, Grid, Lbvh, Point, RTree, Rect, Relation};
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (point(), point()).prop_map(|(a, b)| {
        Rect::from_coords(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    })
}

proptest! {
    // Miri runs the same properties with a token case count: enough to
    // exercise every code path under the interpreter without taking hours.
    #![proptest_config(ProptestConfig {
        cases: if cfg!(miri) { 4 } else { 128 },
        ..ProptestConfig::default()
    })]

    #[test]
    fn rtree_range_query_matches_brute_force(
        pts in prop::collection::vec(point(), 0..300),
        q in rect(),
    ) {
        let items: Vec<(Rect, usize)> =
            pts.iter().enumerate().map(|(i, &p)| (Rect::point(p), i)).collect();
        let tree = RTree::bulk_load(items);
        tree.check_invariants();
        let mut got: Vec<usize> = tree.query_rect(&q).into_iter().copied().collect();
        got.sort_unstable();
        let expect: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_point(**p))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn rtree_incremental_equals_bulk(
        pts in prop::collection::vec(point(), 1..150),
        q in rect(),
    ) {
        let items: Vec<(Rect, usize)> =
            pts.iter().enumerate().map(|(i, &p)| (Rect::point(p), i)).collect();
        let bulk = RTree::bulk_load(items.clone());
        let mut inc = RTree::new();
        for (r, v) in items {
            inc.insert(r, v);
        }
        inc.check_invariants();
        let mut a: Vec<usize> = bulk.query_rect(&q).into_iter().copied().collect();
        let mut b: Vec<usize> = inc.query_rect(&q).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rtree_k_nearest_matches_brute_force(
        pts in prop::collection::vec(point(), 1..200),
        q in point(),
        k in 1usize..20,
    ) {
        let items: Vec<(Rect, usize)> =
            pts.iter().enumerate().map(|(i, &p)| (Rect::point(p), i)).collect();
        let tree = RTree::bulk_load(items);
        let got = tree.k_nearest(q, k);
        let mut brute: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        brute.truncate(k);
        prop_assert_eq!(got.len(), brute.len());
        for ((d, _), expect) in got.iter().zip(&brute) {
            prop_assert!((d - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn rtree_remove_keeps_queries_exact(
        pts in prop::collection::vec(point(), 2..120),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 1..40),
        q in rect(),
    ) {
        let mut alive: Vec<bool> = vec![true; pts.len()];
        let mut tree = RTree::bulk_load(
            pts.iter().enumerate().map(|(i, &p)| (Rect::point(p), i)).collect(),
        );
        for idx in removals {
            let i = idx.index(pts.len());
            let removed = tree.remove(&Rect::point(pts[i]), |&v| v == i);
            prop_assert_eq!(removed.is_some(), alive[i]);
            alive[i] = false;
            tree.check_invariants();
        }
        let mut got: Vec<usize> = tree.query_rect(&q).into_iter().copied().collect();
        got.sort_unstable();
        let expect: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(i, p)| alive[*i] && q.contains_point(**p))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn grid_cells_overlapping_circle_is_exact(
        center in point(),
        radius in 0.001f64..0.5,
        g in 1u32..16,
    ) {
        let grid = Grid::unit_square(g);
        let circle = Circle::new(center, radius);
        let covered: Vec<_> = grid.cells_overlapping_circle(&circle).collect();
        for cell in grid.cells() {
            let expect = circle.intersects_rect(&grid.cell_rect(cell));
            prop_assert_eq!(covered.contains(&cell), expect, "cell {:?}", cell);
        }
    }

    #[test]
    fn grid_cell_of_lands_in_cell_rect(p in point(), g in 1u32..32) {
        let grid = Grid::unit_square(g);
        let cell = grid.cell_of(p);
        prop_assert!(grid.cell_rect(cell).contains_point(p));
    }

    #[test]
    fn relation_classification_is_consistent_with_membership(
        center in point(),
        radius in 0.001f64..0.6,
        cell in rect(),
        samples in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10),
    ) {
        prop_assume!(cell.width() > 0.0 && cell.height() > 0.0);
        let circle = Circle::new(center, radius);
        let relation = Relation::classify(&circle, &cell);
        for (fx, fy) in samples {
            let p = Point::new(
                cell.lo.x + fx * cell.width(),
                cell.lo.y + fy * cell.height(),
            );
            match relation {
                Relation::Full => prop_assert!(circle.contains_point(p)),
                Relation::None => prop_assert!(!circle.contains_point(p)),
                Relation::Partial => {}
            }
        }
    }

    #[test]
    fn morton_encode_decode_roundtrip(col in 0u32..=u16::MAX as u32, row in 0u32..=u16::MAX as u32) {
        let code = morton::encode(col, row);
        prop_assert_eq!(morton::decode(code), (col, row));
        prop_assert_eq!(morton::compact(morton::spread(col)), col);
    }

    #[test]
    fn morton_codes_are_monotone_along_each_axis(
        a in 0u32..=u16::MAX as u32,
        b in 0u32..=u16::MAX as u32,
        fixed in 0u32..=u16::MAX as u32,
    ) {
        // With one coordinate fixed, the interleaved code compares exactly
        // like the free coordinate: the Z-curve never reverses an axis.
        prop_assume!(a != b);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(morton::encode(lo, fixed) < morton::encode(hi, fixed));
        prop_assert!(morton::encode(fixed, lo) < morton::encode(fixed, hi));
    }

    #[test]
    fn layout_order_is_a_rank_sorted_permutation(g in 1u32..32) {
        let grid = Grid::unit_square(g);
        for layout in CellLayout::ALL {
            let order = layout.order(&grid);
            prop_assert_eq!(order.len(), grid.num_cells());
            let mut seen: Vec<bool> = vec![false; grid.num_cells()];
            let mut prev_rank = None;
            for cell in order {
                prop_assert!(!seen[cell.index()], "{layout}: duplicate {cell:?}");
                seen[cell.index()] = true;
                let rank = layout.rank(&grid, cell);
                if let Some(prev) = prev_rank {
                    prop_assert!(prev < rank, "{layout}: rank not strictly increasing");
                }
                prev_rank = Some(rank);
            }
        }
    }

    #[test]
    fn zorder_neighbor_ranks_are_closer_than_rowmajor_worst_case(
        g in 2u32..32,
        col in 0u32..31,
        row in 0u32..31,
    ) {
        // The whole point of the Z-order layout: the four-cell square at
        // an even-aligned corner occupies four *consecutive* Morton ranks,
        // while row-major spreads it across two rows (rank gap = g).
        let col = (col % (g / 2)) * 2;
        let row = (row % (g / 2)) * 2;
        let grid = Grid::unit_square(g);
        let z = CellLayout::ZOrder;
        let base = z.rank(&grid, grid.cell_at(col, row));
        prop_assert_eq!(z.rank(&grid, grid.cell_at(col + 1, row)), base + 1);
        prop_assert_eq!(z.rank(&grid, grid.cell_at(col, row + 1)), base + 2);
        prop_assert_eq!(z.rank(&grid, grid.cell_at(col + 1, row + 1)), base + 3);
    }

    #[test]
    fn lbvh_rect_query_matches_brute_force(
        pts in prop::collection::vec(point(), 0..300),
        q in rect(),
    ) {
        let items: Vec<(Rect, usize)> =
            pts.iter().enumerate().map(|(i, &p)| (Rect::point(p), i)).collect();
        let bvh = Lbvh::bulk_load(items);
        bvh.check_invariants();
        let mut got: Vec<usize> = bvh.query_rect(&q).into_iter().copied().collect();
        got.sort_unstable();
        let expect: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_point(**p))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn lbvh_circle_count_matches_brute_force(
        pts in prop::collection::vec(point(), 0..300),
        center in point(),
        radius in 0.001f64..0.6,
    ) {
        let items: Vec<(Rect, usize)> =
            pts.iter().enumerate().map(|(i, &p)| (Rect::point(p), i)).collect();
        let bvh = Lbvh::bulk_load(items);
        let circle = Circle::new(center, radius);
        let expect = pts.iter().filter(|&&p| circle.contains_point(p)).count();
        prop_assert_eq!(bvh.count_in_circle(&circle), expect);
    }
}
