//! # ctup — Continuous Top-k Unsafe Places
//!
//! Facade crate re-exporting the whole CTUP reproduction:
//!
//! * [`spatial`] — geometry, grid partitioning, R-tree, unit index;
//! * [`storage`] — the paper's two-level (memory/disk) place store;
//! * [`mogen`] — Brinkhoff-style network-based moving-object workloads;
//! * [`core`] — the CTUP algorithms (Naive, BasicCTUP, OptCTUP) and the
//!   monitoring server, plus the paper's future-work extensions;
//! * [`obs`] — zero-dependency observability: metrics, latency
//!   histograms, and the causal span layer (DESIGN.md §17).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]

pub use ctup_core as core;
pub use ctup_mogen as mogen;
pub use ctup_obs as obs;
pub use ctup_spatial as spatial;
pub use ctup_storage as storage;

/// Commonly used items, importable with `use ctup::prelude::*`.
pub mod prelude {
    pub use ctup_core::{
        algorithm::{CtupAlgorithm, InitStats, UpdateStats},
        basic::BasicCtup,
        config::CtupConfig,
        metrics::Metrics,
        naive::{NaiveIncremental, NaiveRecompute},
        opt::OptCtup,
        oracle::Oracle,
        parallel::ShardedCtup,
        server::{MonitorEvent, Server},
        types::{LocationUpdate, Place, PlaceId, Safety, TopKEntry, Unit, UnitId},
    };
    pub use ctup_mogen::{
        network::RoadNetwork, objects::MovingObjectSim, places::PlaceGenerator, workload::Workload,
    };
    pub use ctup_spatial::{CellId, Circle, Grid, Point, Rect, Relation};
    pub use ctup_storage::{CachedStore, CellLocalStore, PlaceStore, StorageStats};
}
